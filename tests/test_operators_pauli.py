"""Tests for the Pauli operator algebra."""

import numpy as np
import pytest

from repro.operators.pauli import I, PauliOperator, PauliTerm, X, Y, Z
from repro.simulator.statevector import StateVector
from repro.ir.builder import CircuitBuilder


class TestPauliTerm:
    def test_factories_produce_single_factor_terms(self):
        term = X(3)
        assert term.paulis == {3: "X"}
        assert term.coefficient == 1.0

    def test_identity_term(self):
        assert I().is_identity
        assert I(5).is_identity

    def test_scalar_multiplication(self):
        term = 2.5 * X(0)
        assert term.coefficient == pytest.approx(2.5)
        assert (X(0) * 2.5).coefficient == pytest.approx(2.5)

    def test_product_of_disjoint_factors(self):
        term = X(0) * Y(1)
        assert term.paulis == {0: "X", 1: "Y"}

    def test_same_qubit_product_uses_pauli_algebra(self):
        assert (X(0) * X(0)).is_identity
        xy = X(0) * Y(0)
        assert xy.paulis == {0: "Z"}
        assert xy.coefficient == pytest.approx(1j)
        yx = Y(0) * X(0)
        assert yx.coefficient == pytest.approx(-1j)

    def test_negation(self):
        assert (-X(0)).coefficient == pytest.approx(-1.0)

    def test_matrix_of_z(self):
        assert np.allclose(Z(0).to_matrix(1), np.diag([1, -1]))

    def test_matrix_ordering_little_endian(self):
        # Z on qubit 0 of a 2-qubit system: diag over |q1 q0> = 00,01,10,11.
        assert np.allclose(Z(0).to_matrix(2), np.diag([1, -1, 1, -1]))
        assert np.allclose(Z(1).to_matrix(2), np.diag([1, 1, -1, -1]))

    def test_commutation(self):
        assert X(0).commutes_with(X(0))
        assert not X(0).commutes_with(Z(0))
        assert (X(0) * X(1)).commutes_with(Z(0) * Z(1))

    def test_qubit_wise_commutation(self):
        assert X(0).qubit_wise_commutes_with(X(0) * Z(1))
        assert not (X(0) * X(1)).qubit_wise_commutes_with(Z(0) * Z(1))

    def test_pauli_string(self):
        assert (X(0) * Z(2)).pauli_string == "X0 Z2"
        assert I().pauli_string == "I"

    def test_invalid_label_rejected(self):
        from repro.exceptions import IRError

        with pytest.raises(IRError):
            PauliTerm({0: "Q"})

    def test_basis_rotation_diagonalises_term(self):
        # After the rotation, the term's expectation equals the Z-parity.
        for term in (X(0), Y(0), Z(0), X(0) * Y(1)):
            state = StateVector(2)
            state.apply_circuit(CircuitBuilder(2).h(0).cx(0, 1).s(1).build())
            direct = state.expectation(PauliOperator([term]))
            rotated = state.copy()
            rotated.apply_circuit(term.basis_rotation_circuit(2))
            assert direct == pytest.approx(rotated.expectation_z(term.qubits), abs=1e-9)


class TestPauliOperator:
    def test_sum_collects_like_terms(self):
        op = PauliOperator([X(0), X(0)])
        assert op.n_terms == 1
        assert op.terms[0].coefficient == pytest.approx(2.0)

    def test_zero_terms_pruned(self):
        op = X(0) - X(0)
        assert isinstance(op, PauliOperator)
        assert op.n_terms == 0

    def test_scalar_plus_term_builds_operator(self):
        op = 5.907 - 2.1433 * X(0) * X(1)
        assert isinstance(op, PauliOperator)
        assert op.constant == pytest.approx(5.907)
        assert op.n_terms == 2

    def test_deuteron_hamiltonian_matches_matrix_eigenvalue(self):
        H = (
            5.907
            - 2.1433 * X(0) * X(1)
            - 2.1433 * Y(0) * Y(1)
            + 0.21829 * Z(0)
            - 6.125 * Z(1)
        )
        assert H.ground_state_energy(2) == pytest.approx(-1.74886, abs=1e-4)

    def test_operator_products_expand(self):
        op = (X(0) + Y(0)) * (X(0) - Y(0))
        # (X+Y)(X-Y) = X^2 - XY + YX - Y^2 = -XY + YX = -iZ - iZ = -2iZ
        assert op.n_terms == 1
        assert op.terms[0].paulis == {0: "Z"}
        assert op.terms[0].coefficient == pytest.approx(-2j)

    def test_operator_matrix_is_hermitian_for_real_coefficients(self):
        H = 1.5 * X(0) * Z(1) + 0.25 * Y(1) - 2.0
        matrix = H.to_matrix(2)
        assert np.allclose(matrix, matrix.conj().T)

    def test_scalar_multiplication_and_negation(self):
        op = 2.0 * (X(0) + Z(1))
        assert all(np.isclose(t.coefficient, 2.0) for t in op.terms)
        negated = -op
        assert all(np.isclose(t.coefficient, -2.0) for t in negated.terms)

    def test_rsub_scalar(self):
        op = 1.0 - Z(0)
        matrix = op.to_matrix(1)
        assert np.allclose(matrix, np.diag([0.0, 2.0]))

    def test_equality(self):
        a = 2 * X(0) + Z(1)
        b = Z(1) + X(0) + X(0)
        assert a == b
        assert a != (2 * X(0) + Z(0))

    def test_n_qubits(self):
        assert (X(0) * Z(4)).paulis == {0: "X", 4: "Z"}
        assert PauliOperator([X(0) * Z(4)]).n_qubits == 5

    def test_expectation_against_statevector(self):
        # |+> state: <X> = 1, <Z> = 0.
        state = StateVector(1)
        state.apply_circuit(CircuitBuilder(1).h(0).build())
        assert state.expectation(PauliOperator([X(0)])) == pytest.approx(1.0)
        assert state.expectation(PauliOperator([Z(0)])) == pytest.approx(0.0, abs=1e-12)
        assert state.expectation(2.0 + 3.0 * X(0)) == pytest.approx(5.0)
