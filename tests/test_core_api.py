"""Tests for the user-facing core API (initialize / qalloc / execute_circuit)."""

import pytest

import repro
from repro.algorithms.bell import bell_circuit
from repro.config import set_config
from repro.core import api
from repro.core.qpu_manager import QPUManager
from repro.core.race_detector import get_race_detector
from repro.exceptions import ExecutionError, NotInitializedError
from repro.ir.builder import CircuitBuilder
from repro.ir.parameter import Parameter
from repro.operators.pauli import X as PX
from repro.operators.pauli import Z as PZ
from repro.runtime.qpp_accelerator import QppAccelerator


class TestInitialize:
    def test_initialize_registers_current_thread(self):
        qpu = repro.initialize()
        assert repro.is_initialized()
        assert QPUManager.get_instance().get_qpu() is qpu

    def test_initialize_with_backend_name_and_shots(self):
        qpu = repro.initialize("qpp", shots=99, options={"threads": 2})
        assert isinstance(qpu, QppAccelerator)
        assert repro.get_shots() == 99
        assert qpu.num_threads == 2

    def test_initialize_with_accelerator_instance(self):
        mine = QppAccelerator({"threads": 4})
        assert repro.initialize(mine) is mine
        assert repro.get_qpu() is mine

    def test_finalize_clears_registration(self):
        repro.initialize()
        repro.finalize()
        assert not repro.is_initialized()

    def test_get_qpu_auto_initializes_when_not_strict(self):
        assert not repro.is_initialized()
        qpu = repro.get_qpu()
        assert isinstance(qpu, QppAccelerator)
        assert repro.is_initialized()

    def test_strict_initialization_requires_explicit_call(self):
        set_config(strict_initialization=True)
        with pytest.raises(NotInitializedError):
            repro.get_qpu()
        repro.initialize()
        assert repro.get_qpu() is not None

    def test_legacy_mode_uses_shared_global(self):
        set_config(thread_safe=False)
        first = repro.get_qpu()
        second = repro.get_qpu()
        assert first is second
        assert get_race_detector().unsafe_entries.get("global_qpu", 0) >= 1


class TestShotsAndAllocation:
    def test_set_and_get_shots(self):
        repro.set_shots(321)
        assert repro.get_shots() == 321

    def test_qalloc_reexport(self):
        q = repro.qalloc(4)
        assert q.size() == 4


class TestExecuteCircuit:
    def test_execute_into_qreg(self):
        q = repro.qalloc(2)
        counts = repro.execute_circuit(bell_circuit(2), q, shots=128)
        assert sum(counts.values()) == 128
        assert q.counts() == counts

    def test_execute_returns_delta_not_cumulative(self):
        q = repro.qalloc(2)
        first = repro.execute_circuit(bell_circuit(2), q, shots=64)
        second = repro.execute_circuit(bell_circuit(2), q, shots=64)
        assert sum(first.values()) == 64
        assert sum(second.values()) == 64
        assert q.buffer.total_shots() == 128

    def test_execute_with_explicit_accelerator(self):
        q = repro.qalloc(2)
        accelerator = QppAccelerator({"threads": 1})
        counts = repro.execute_circuit(bell_circuit(2), q, shots=16, accelerator=accelerator)
        assert sum(counts.values()) == 16

    def test_execute_into_raw_buffer(self):
        from repro.runtime.buffer import AcceleratorBuffer

        buffer = AcceleratorBuffer(2)
        counts = repro.execute_circuit(bell_circuit(2), buffer, shots=8)
        assert sum(counts.values()) == 8


class TestObserveExpectation:
    def test_exact_expectation_of_plus_state(self):
        ansatz = CircuitBuilder(1).h(0).build()
        assert repro.observe_expectation(ansatz, PX(0), exact=True) == pytest.approx(1.0)
        assert repro.observe_expectation(ansatz, PZ(0), exact=True) == pytest.approx(0.0, abs=1e-12)

    def test_sampled_expectation_close_to_exact(self):
        ansatz = CircuitBuilder(2).x(0).build()
        observable = 0.5 * PZ(0) - 0.25 * PZ(1)
        sampled = repro.observe_expectation(ansatz, observable, shots=2048, exact=False)
        exact = repro.observe_expectation(ansatz, observable, exact=True)
        assert sampled == pytest.approx(exact, abs=0.1)

    def test_constant_term_included(self):
        ansatz = CircuitBuilder(1).build()
        assert repro.observe_expectation(ansatz, 2.5 + PZ(0), exact=True) == pytest.approx(3.5)

    def test_parameterized_ansatz_requires_values(self):
        ansatz = CircuitBuilder(1).ry(0, Parameter("t")).build()
        with pytest.raises(ExecutionError):
            repro.observe_expectation(ansatz, PZ(0), exact=True)
        value = repro.observe_expectation(ansatz, PZ(0), parameters=[3.14159265], exact=True)
        assert value == pytest.approx(-1.0, abs=1e-6)

    def test_module_alias_consistency(self):
        # The package-level re-exports must be the same objects as core.api's.
        assert repro.initialize is api.initialize
        assert repro.qalloc is api.qalloc
