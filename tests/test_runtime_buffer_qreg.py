"""Tests for AcceleratorBuffer and the qreg handle."""

import json
import threading

import pytest

from repro.exceptions import AllocationError, ExecutionError
from repro.runtime.allocation import (
    allocated_buffer_count,
    clear_allocated_buffers,
    get_allocated_buffer,
    qalloc,
)
from repro.runtime.buffer import AcceleratorBuffer
from repro.runtime.qreg import QubitRef, qreg


class TestAcceleratorBuffer:
    def test_unique_names_generated(self):
        a, b = AcceleratorBuffer(2), AcceleratorBuffer(2)
        assert a.name != b.name
        assert a.name.startswith("qrg_")

    def test_explicit_name(self):
        assert AcceleratorBuffer(2, name="mybuf").name == "mybuf"

    def test_size_validation(self):
        with pytest.raises(ExecutionError):
            AcceleratorBuffer(0)

    def test_add_and_get_measurements(self):
        buffer = AcceleratorBuffer(2)
        buffer.add_measurement("00", 5)
        buffer.add_measurement("11", 3)
        buffer.add_measurement("00", 2)
        assert buffer.get_measurement_counts() == {"00": 7, "11": 3}
        assert buffer.total_shots() == 10

    def test_counts_alias(self):
        buffer = AcceleratorBuffer(1)
        buffer.add_measurement("0")
        assert buffer.counts() == {"0": 1}

    def test_set_measurements_replaces(self):
        buffer = AcceleratorBuffer(2)
        buffer.add_measurement("00", 5)
        buffer.set_measurements({"11": 2})
        assert buffer.get_measurement_counts() == {"11": 2}

    def test_invalid_bitstring_rejected(self):
        buffer = AcceleratorBuffer(2)
        with pytest.raises(ExecutionError):
            buffer.add_measurement("0x")
        with pytest.raises(ExecutionError):
            buffer.add_measurement("")

    def test_probability(self):
        buffer = AcceleratorBuffer(2)
        buffer.set_measurements({"00": 75, "11": 25})
        assert buffer.probability("00") == pytest.approx(0.75)
        assert buffer.probability("01") == pytest.approx(0.0)

    def test_probability_requires_measurements(self):
        with pytest.raises(ExecutionError):
            AcceleratorBuffer(1).probability("0")

    def test_expectation_value_z(self):
        buffer = AcceleratorBuffer(2)
        buffer.set_measurements({"00": 50, "11": 50})
        assert buffer.expectation_value_z() == pytest.approx(1.0)
        assert buffer.expectation_value_z([0]) == pytest.approx(0.0)

    def test_to_dict_matches_listing2_structure(self):
        buffer = AcceleratorBuffer(2, name="qrg_test")
        buffer.set_measurements({"00": 513, "11": 511})
        payload = buffer.to_dict()["AcceleratorBuffer"]
        assert payload["name"] == "qrg_test"
        assert payload["size"] == 2
        assert payload["Measurements"] == {"00": 513, "11": 511}
        # JSON form must be parseable.
        assert json.loads(buffer.to_json())

    def test_print_outputs_json(self, capsys):
        buffer = AcceleratorBuffer(1)
        buffer.add_measurement("0", 3)
        buffer.print()
        assert '"Measurements"' in capsys.readouterr().out

    def test_reset_clears_everything(self):
        buffer = AcceleratorBuffer(1)
        buffer.add_measurement("0")
        buffer.information["backend"] = "qpp"
        buffer.reset()
        assert buffer.get_measurement_counts() == {}
        assert buffer.information == {}

    def test_concurrent_accumulation_is_consistent(self):
        buffer = AcceleratorBuffer(1)

        def add():
            for _ in range(1000):
                buffer.add_measurement("1")

        threads = [threading.Thread(target=add) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert buffer.get_measurement_counts()["1"] == 8000


class TestQreg:
    def test_qalloc_returns_qreg_and_tracks_buffer(self):
        clear_allocated_buffers()
        q = qalloc(3)
        assert isinstance(q, qreg)
        assert q.size() == 3
        assert len(q) == 3
        assert allocated_buffer_count() == 1
        assert get_allocated_buffer(q.name()) is q.buffer

    def test_qalloc_validates_size(self):
        with pytest.raises(AllocationError):
            qalloc(0)

    def test_indexing_returns_qubit_refs(self):
        q = qalloc(2)
        ref = q[1]
        assert isinstance(ref, QubitRef)
        assert int(ref) == 1
        assert ref.__index__() == 1

    def test_out_of_range_index_rejected(self):
        q = qalloc(2)
        with pytest.raises(AllocationError):
            q[2]

    def test_iteration(self):
        q = qalloc(3)
        assert [int(ref) for ref in q] == [0, 1, 2]

    def test_counts_and_print_reflect_buffer(self, capsys):
        q = qalloc(2)
        q.buffer.add_measurement("00", 4)
        assert q.counts() == {"00": 4}
        q.print()
        assert "00" in capsys.readouterr().out

    def test_exp_val_z(self):
        q = qalloc(1)
        q.buffer.set_measurements({"1": 10})
        assert q.exp_val_z() == pytest.approx(-1.0)

    def test_reset(self):
        q = qalloc(1)
        q.buffer.add_measurement("1")
        q.reset()
        assert q.counts() == {}

    def test_unknown_buffer_lookup_raises(self):
        with pytest.raises(AllocationError):
            get_allocated_buffer("does-not-exist")
