"""Chunk-parallel plan replay and diagonal-batch fusion.

The two contracts under test:

* **Chunked == serial, bitwise** — ``ExecutionPlan.execute(pool=...)`` must
  produce bit-for-bit the amplitudes of the serial replay for every kernel
  class, every worker count, and targets whose stride spans chunk edges
  (high-qubit targets force the column/assignment split paths).
* **Diagonal batching is distribution-equivalent** — collapsing adjacent
  diagonal runs reassociates products (ulp-level amplitude shifts are
  allowed) but must stay within 1e-12 of the unbatched plan and preserve
  fixed-seed counts across the in-process and sharded backends.
"""

import numpy as np
import pytest

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.algorithms.vqe import deuteron_ansatz_circuit
from repro.exec import LocalBackend, ShardedExecutor
from repro.ir import gates as G
from repro.ir.builder import CircuitBuilder
from repro.ir.composite import CompositeInstruction
from repro.simulator.execution_plan import (
    DEFAULT_CHUNK_THRESHOLD,
    DEFAULT_DIAGONAL_BATCH_MAX_QUBITS,
    compile_parametric_plan,
    compile_plan,
)
from repro.simulator.parallel_engine import ParallelSimulationEngine
from repro.simulator.statevector import StateVector


def random_unitary(rng, k):
    dim = 1 << k
    matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, _ = np.linalg.qr(matrix)
    return q


def random_circuit(rng, n_qubits, length):
    """Random mix hitting every kernel class (mirrors the execution-plan
    tests), biased to also target the *highest* qubit so chunk splits must
    handle strides spanning chunk edges."""
    circuit = CompositeInstruction("random", n_qubits)
    fixed_1q = [G.H, G.X, G.Y, G.Z, G.S, G.T, G.Identity]
    top = n_qubits - 1
    for i in range(length):
        choice = rng.integers(0, 10)
        qs = [int(q) for q in rng.permutation(n_qubits)]
        if i % 4 == 0 and qs[0] != top:
            # Force regular coverage of the top qubit (stride = half state).
            qs.remove(top)
            qs.insert(0, top)
        if choice < 3:
            circuit.add(fixed_1q[rng.integers(0, len(fixed_1q))]([qs[0]]))
        elif choice < 5:
            cls = [G.RX, G.RY, G.RZ, G.U3][rng.integers(0, 4)]
            params = [float(v) for v in rng.uniform(-3, 3, cls.num_parameters)]
            circuit.add(cls([qs[0]], params))
        elif choice < 7:
            cls = [G.CX, G.CY, G.CZ, G.CH, G.Swap, G.ISwap][rng.integers(0, 6)]
            circuit.add(cls([qs[0], qs[1]]))
        elif choice == 7:
            cls = [G.CRZ, G.CPhase][rng.integers(0, 2)]
            circuit.add(cls([qs[0], qs[1]], [float(rng.uniform(-3, 3))]))
        elif choice == 8:
            cls = [G.CCX, G.CSwap][rng.integers(0, 2)]
            circuit.add(cls(qs[:3]))
        else:
            k = int(rng.integers(2, 4))
            if rng.random() < 0.5:
                perm = [int(p) for p in rng.permutation(1 << k)]
                circuit.add(G.PermutationGate(perm, qs[:k]))
            else:
                circuit.add(G.UnitaryGate(random_unitary(rng, k), qs[:k]))
    return circuit


@pytest.fixture
def engine():
    with ParallelSimulationEngine(num_threads=3) as eng:
        yield eng


# ---------------------------------------------------------------------------
# Chunked replay == serial replay, bitwise
# ---------------------------------------------------------------------------


class TestChunkedBitwiseIdentity:
    @pytest.mark.parametrize("workers", [2, 3, 4, 5])
    def test_randomized_circuits_all_kernels(self, workers):
        rng = np.random.default_rng(20260728 + workers)
        with ParallelSimulationEngine(num_threads=workers) as eng:
            for _ in range(6):
                n_qubits = int(rng.integers(4, 8))
                circuit = random_circuit(rng, n_qubits, int(rng.integers(8, 30)))
                plan = compile_plan(circuit, n_qubits, chunk_threshold=2)
                serial = plan.execute(plan.new_state())
                chunked = plan.execute(plan.new_state(), pool=eng)
                assert np.array_equal(serial, chunked)

    def test_stride_spans_chunk_edge(self, engine):
        """Targets on the top qubit: rows collapse to 1, so the single-qubit
        kernel must column-split and the dense/controlled kernels must pick
        free axes below the target."""
        n = 6
        circuit = CompositeInstruction("edge", n)
        circuit.add(G.H([n - 1]))
        circuit.add(G.RZ([n - 1], [0.7]))
        circuit.add(G.CX([n - 1, 0]))
        circuit.add(G.CH([n - 1, n - 2]))
        circuit.add(G.ISwap([0, n - 1]))
        circuit.add(G.CPhase([n - 2, n - 1], [0.3]))
        circuit.add(G.PermutationGate([1, 0, 3, 2], [n - 2, n - 1]))
        plan = compile_plan(circuit, n, optimize=False, chunk_threshold=2)
        serial = plan.execute(plan.new_state())
        chunked = plan.execute(plan.new_state(), pool=engine)
        assert np.array_equal(serial, chunked)

    def test_chunked_from_random_input_state(self, engine):
        rng = np.random.default_rng(11)
        n = 7
        circuit = random_circuit(rng, n, 25)
        plan = compile_plan(circuit, n, chunk_threshold=2)
        state = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        state /= np.linalg.norm(state)
        serial = plan.execute(state.copy())
        chunked = plan.execute(state.copy(), pool=engine)
        assert np.array_equal(serial, chunked)

    def test_below_threshold_states_stay_serial(self, engine):
        plan = compile_plan(bell_circuit(2), 2)  # default threshold = 2^16
        assert plan.chunk_threshold == DEFAULT_CHUNK_THRESHOLD
        # No chunk program is ever built for sub-threshold states.
        plan.execute(plan.new_state(), pool=engine)
        assert plan._chunk_programs == {}

    def test_parametric_plans_chunk_after_rebinding(self, engine):
        ansatz = deuteron_ansatz_circuit().without_measurements()
        parametric = compile_parametric_plan(ansatz, 2, chunk_threshold=2)
        for theta in (0.1, 0.59, -1.3):
            plan = parametric.bind([theta])
            serial = plan.execute(plan.new_state())
            plan = parametric.bind([theta])
            chunked = plan.execute(plan.new_state(), pool=engine)
            assert np.array_equal(serial, chunked)

    def test_trajectories_with_reset_fixed_seed_identity(self):
        builder = CircuitBuilder(4, name="reset_chunked")
        builder.h(0)
        builder.cx(0, 1)
        builder.reset(1)
        builder.cphase(1, 2, 0.5)
        builder.cphase(2, 3, 0.25)
        builder.h(3)
        for q in range(4):
            builder.measure(q)
        circuit = builder.build()
        with ParallelSimulationEngine(num_threads=1) as eng:
            serial = eng.run_trajectories(4, circuit, 64, seed=9)
        # chunk_threshold is compiled into the plan, so exercise the chunked
        # trajectory path through a low-threshold plan + single-chunk engine.
        plan = compile_plan(circuit, 4, optimize=False, chunk_threshold=2)
        with ParallelSimulationEngine(num_threads=3) as eng:
            from repro.simulator.parallel_engine import replay_trajectory_chunk

            rng = np.random.default_rng(np.random.SeedSequence(9).spawn(1)[0])
            measured = circuit.measured_qubits()
            chunked = replay_trajectory_chunk(plan, 64, rng, measured, 4, pool=eng)
        assert serial == chunked


# ---------------------------------------------------------------------------
# Diagonal batching
# ---------------------------------------------------------------------------


class TestDiagonalBatching:
    def test_qft_step_count_shrinks(self):
        unbatched = compile_plan(qft_circuit(8), 8, batch_diagonals=False)
        batched = compile_plan(qft_circuit(8), 8)
        assert batched.n_steps < unbatched.n_steps
        assert batched.batched_diagonals > 0
        assert unbatched.batched_diagonals == 0

    @pytest.mark.parametrize(
        "name,circuit,width",
        [
            ("qft", qft_circuit(6), 6),
            ("shor", period_finding_circuit(15, 2), None),
            ("vqe", deuteron_ansatz_circuit(0.59), 2),
        ],
    )
    def test_algorithm_equivalence(self, name, circuit, width):
        n = width if width is not None else circuit.n_qubits
        unbatched = compile_plan(circuit, n, batch_diagonals=False)
        batched = compile_plan(circuit, n)
        a = unbatched.execute(unbatched.new_state())
        b = batched.execute(batched.new_state())
        assert np.allclose(a, b, atol=1e-12)

    def test_randomized_equivalence_on_generic_states(self):
        rng = np.random.default_rng(77)
        for _ in range(8):
            n = int(rng.integers(3, 7))
            circuit = random_circuit(rng, n, 30)
            unbatched = compile_plan(circuit, n, batch_diagonals=False)
            batched = compile_plan(circuit, n)
            state = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
            state /= np.linalg.norm(state)
            a = unbatched.execute(state.copy())
            b = batched.execute(state.copy())
            assert np.allclose(a, b, atol=1e-12)

    def test_union_capped_at_max_qubits(self):
        n = 10
        circuit = CompositeInstruction("ladder", n)
        for q in range(n - 1):
            circuit.add(G.CPhase([q, q + 1], [0.1 * (q + 1)]))
        plan = compile_plan(circuit, n, optimize=False)
        for step in plan.steps:
            assert len(step.targets) <= DEFAULT_DIAGONAL_BATCH_MAX_QUBITS
        assert plan.n_steps < n - 1  # runs did merge
        unbatched = compile_plan(circuit, n, optimize=False, batch_diagonals=False)
        assert np.allclose(
            plan.execute(plan.new_state()),
            unbatched.execute(unbatched.new_state()),
            atol=1e-12,
        )

    def test_parametric_diagonals_not_merged(self):
        """Symbolic RZ/CPHASE steps must keep their own rebindable steps."""
        from repro.ir.parameter import Parameter

        theta = Parameter("theta")
        n = 3
        circuit = CompositeInstruction("sym", n)
        circuit.add(G.S([0]))
        circuit.add(G.RZ([0], [theta]))
        circuit.add(G.T([0]))
        parametric = compile_parametric_plan(circuit, n, optimize=False)
        plan = parametric.bind({"theta": 0.9})
        bound = circuit.bind({"theta": 0.9})
        expected = StateVector(n).apply_circuit(bound).data
        got = plan.execute(plan.new_state())
        assert np.allclose(got, expected, atol=1e-12)
        # Rebinding again still works (the parametric step was untouched).
        plan = parametric.bind({"theta": -0.4})
        bound = circuit.bind({"theta": -0.4})
        assert np.allclose(
            plan.execute(plan.new_state()),
            StateVector(n).apply_circuit(bound).data,
            atol=1e-12,
        )

    def test_single_diagonals_unbatched_stay_bitwise_exact(self):
        """A lone diagonal step (no adjacent run) is never rewritten, so the
        plan stays bit-identical to the gate-by-gate path."""
        circuit = CircuitBuilder(3).h(0).cphase(0, 1, 0.4).h(1).build()
        plan = compile_plan(circuit, 3, optimize=False)
        naive = StateVector(3)
        for inst in circuit:
            if not inst.is_measurement:
                naive.apply(inst)
        assert np.array_equal(plan.execute(plan.new_state()), naive.data)


# ---------------------------------------------------------------------------
# Fixed-seed counts identity: chunked + sharded + batched
# ---------------------------------------------------------------------------


def algorithm_suite():
    shor = period_finding_circuit(15, 2)
    vqe = deuteron_ansatz_circuit(0.59)
    return {
        "bell": (bell_circuit(2), 2),
        "ghz": (ghz_circuit(5), 5),
        "qft": (qft_circuit(6), 6),
        "shor": (shor, shor.n_qubits),
        "vqe": (vqe, max(vqe.n_qubits, 2)),
    }


class TestShardedChunkedCountsIdentity:
    def test_fixed_seed_counts_identical_local_vs_sharded_chunked(self):
        """Chunk-parallel replay inside shard workers must not move a single
        count: low thresholds force chunking wherever the worker has more
        than one thread, and chunked == serial bitwise keeps the histograms
        frozen."""
        local = LocalBackend(engine=ParallelSimulationEngine(num_threads=2))
        with ShardedExecutor(2, name="chunk-identity") as sharded:
            for name, (circuit, width) in algorithm_suite().items():
                reference = local.execute(
                    circuit, 256, n_qubits=width, seed=4242, chunk_threshold=2
                )
                result = sharded.execute(
                    circuit, 256, n_qubits=width, seed=4242, chunk_threshold=2
                )
                assert dict(result.counts) == dict(reference.counts), name
        local.close()

    def test_local_chunked_counts_match_unchunked(self):
        """Same engine threads (sampling streams are per-thread-count), so
        the only difference is whether the replay chunks — which must not
        move a single count."""
        backend = LocalBackend(engine=ParallelSimulationEngine(num_threads=3))
        for name, (circuit, width) in algorithm_suite().items():
            unchunked = backend.execute(
                circuit, 512, n_qubits=width, seed=7, chunk_threshold=1 << 30
            )
            chunked = backend.execute(
                circuit, 512, n_qubits=width, seed=7, chunk_threshold=2
            )
            assert dict(unchunked.counts) == dict(chunked.counts), name
        backend.close()
