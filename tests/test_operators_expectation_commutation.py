"""Tests for expectation estimation from counts and QWC grouping."""

import pytest

from repro.exceptions import ExecutionError
from repro.ir.builder import CircuitBuilder
from repro.operators.commutation import qubit_wise_commuting_groups
from repro.operators.expectation import (
    estimate_expectation,
    expectation_from_counts,
    measurement_circuits,
)
from repro.operators.pauli import PauliOperator, X, Y, Z


class TestExpectationFromCounts:
    def test_all_zeros_gives_plus_one(self):
        assert expectation_from_counts({"00": 100}, [0, 1]) == pytest.approx(1.0)

    def test_odd_parity_gives_minus_one(self):
        assert expectation_from_counts({"10": 50}, [0, 1]) == pytest.approx(-1.0)

    def test_balanced_histogram_gives_zero(self):
        counts = {"00": 25, "01": 25, "10": 25, "11": 25}
        assert expectation_from_counts(counts, [0]) == pytest.approx(0.0)

    def test_subset_of_positions(self):
        counts = {"10": 60, "11": 40}
        # Position 0 is always 1 -> parity -1; position 1 averages.
        assert expectation_from_counts(counts, [0]) == pytest.approx(-1.0)
        assert expectation_from_counts(counts, [1]) == pytest.approx(0.2)

    def test_empty_histogram_rejected(self):
        with pytest.raises(ExecutionError):
            expectation_from_counts({}, [0])

    def test_position_out_of_range_rejected(self):
        with pytest.raises(ExecutionError):
            expectation_from_counts({"0": 10}, [3])


class TestMeasurementCircuits:
    def test_one_circuit_per_non_identity_term(self):
        ansatz = CircuitBuilder(2).h(0).build()
        observable = 1.0 + 0.5 * X(0) + 0.25 * Z(0) * Z(1)
        circuits = measurement_circuits(ansatz, observable)
        assert len(circuits) == 2
        labels = {term.pauli_string for term, _ in circuits}
        assert labels == {"X0", "Z0 Z1"}

    def test_rotation_and_measurements_appended(self):
        ansatz = CircuitBuilder(1).h(0).build()
        ((term, circuit),) = measurement_circuits(ansatz, PauliOperator([Y(0)]))
        names = [i.name for i in circuit]
        assert names[0] == "H"          # ansatz
        assert "RX" in names             # Y-basis rotation
        assert names[-1] == "MEASURE"


class TestEstimateExpectation:
    def test_constant_plus_measured_terms(self):
        observable = 2.0 + 1.0 * Z(0) - 0.5 * Z(1)
        counts = {"Z0": {"0": 100}, "Z1": {"1": 100}}
        value = estimate_expectation(observable, counts)
        assert value == pytest.approx(2.0 + 1.0 + 0.5)

    def test_missing_term_rejected(self):
        observable = 1.0 * Z(0) + 1.0 * X(0)
        with pytest.raises(ExecutionError):
            estimate_expectation(observable, {"Z0": {"0": 10}})


class TestCommutingGroups:
    def test_groups_cover_all_terms(self):
        observable = 1.0 * X(0) * X(1) + 1.0 * Y(0) * Y(1) + 1.0 * Z(0) + 1.0 * Z(1)
        groups = qubit_wise_commuting_groups(observable)
        flattened = [t.pauli_string for group in groups for t in group]
        assert sorted(flattened) == ["X0 X1", "Y0 Y1", "Z0", "Z1"]

    def test_group_members_pairwise_commute_qubit_wise(self):
        observable = (
            1.0 * X(0) * X(1) + 1.0 * Y(0) * Y(1) + 1.0 * Z(0) + 1.0 * Z(1) + 1.0 * Z(0) * Z(1)
        )
        for group in qubit_wise_commuting_groups(observable):
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    assert a.qubit_wise_commutes_with(b)

    def test_grouping_reduces_circuit_count_for_deuteron(self):
        H = 5.907 - 2.1433 * X(0) * X(1) - 2.1433 * Y(0) * Y(1) + 0.21829 * Z(0) - 6.125 * Z(1)
        groups = qubit_wise_commuting_groups(H)
        assert len(groups) < len(H.non_identity_terms())
        assert len(groups) == 3

    def test_empty_operator_gives_no_groups(self):
        assert qubit_wise_commuting_groups(PauliOperator([])) == []

    def test_single_term(self):
        groups = qubit_wise_commuting_groups(PauliOperator([X(0)]))
        assert len(groups) == 1 and len(groups[0]) == 1
