"""Tests for the one-by-one/parallel executors and shot-level parallelism."""

import pytest

from repro.algorithms.bell import bell_circuit
from repro.core.executor import KernelTask, run_one_by_one, run_parallel
from repro.core.shot_parallelism import execute_shots_parallel
from repro.exceptions import ConfigurationError


def bell_tasks(n: int = 2, shots: int = 64) -> list[KernelTask]:
    return [
        KernelTask(
            name=f"bell_{i}",
            circuit_factory=lambda: bell_circuit(2),
            n_qubits=2,
            shots=shots,
        )
        for i in range(n)
    ]


class TestExecutors:
    def test_one_by_one_runs_every_task(self):
        report = run_one_by_one(bell_tasks(), total_threads=2)
        assert report.variant == "one-by-one"
        assert report.threads_per_task == 2
        assert len(report.results) == 2
        for result in report.results:
            assert sum(result.counts.values()) == 64
            assert set(result.counts) <= {"00", "11"}

    def test_parallel_splits_threads(self):
        report = run_parallel(bell_tasks(), total_threads=4)
        assert report.variant == "parallel"
        assert report.threads_per_task == 2
        assert len(report.results) == 2
        for result in report.results:
            assert result.threads == 2
            assert sum(result.counts.values()) == 64

    def test_parallel_with_more_tasks_than_threads(self):
        report = run_parallel(bell_tasks(4, shots=16), total_threads=2)
        assert report.threads_per_task == 1
        assert len(report.results) == 4

    def test_counts_by_task(self):
        report = run_one_by_one(bell_tasks(), total_threads=1)
        by_task = report.counts_by_task()
        assert set(by_task) == {"bell_0", "bell_1"}

    def test_speedup_over(self):
        baseline = run_one_by_one(bell_tasks(shots=32), total_threads=1)
        other = run_parallel(bell_tasks(shots=32), total_threads=2)
        assert other.speedup_over(baseline) > 0

    def test_invalid_thread_count_rejected(self):
        with pytest.raises(ConfigurationError):
            run_one_by_one(bell_tasks(), total_threads=0)
        with pytest.raises(ConfigurationError):
            run_parallel([], total_threads=2)

    def test_wall_time_positive(self):
        report = run_one_by_one(bell_tasks(shots=8), total_threads=1)
        assert report.wall_time_seconds > 0
        assert all(r.duration_seconds >= 0 for r in report.results)


class TestShotParallelism:
    def test_merged_counts_match_requested_shots(self):
        counts = execute_shots_parallel(bell_circuit(2), 2, shots=256, workers=4)
        assert sum(counts.values()) == 256
        assert set(counts) <= {"00", "11"}

    def test_single_worker_path(self):
        counts = execute_shots_parallel(bell_circuit(2), 2, shots=100, workers=1)
        assert sum(counts.values()) == 100

    def test_workers_capped_by_shots(self):
        counts = execute_shots_parallel(bell_circuit(2), 2, shots=3, workers=16)
        assert sum(counts.values()) == 3

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_shots_parallel(bell_circuit(2), 2, shots=10, workers=0)

    def test_default_shots_from_config(self, small_shots):
        counts = execute_shots_parallel(bell_circuit(2), 2, workers=2)
        assert sum(counts.values()) == small_shots
