"""Tests for the discrete-event processor-sharing scheduler."""

import pytest

from repro.exceptions import ConfigurationError
from repro.parallel.contention import ContentionModel
from repro.parallel.scheduler import ScheduleResult, SimTask, TaskScheduler, WorkPhase


def scheduler(**kwargs) -> TaskScheduler:
    return TaskScheduler(contention=ContentionModel(**kwargs))


class TestWorkPhase:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkPhase(-1.0, 1)
        with pytest.raises(ConfigurationError):
            WorkPhase(1.0, 0)
        with pytest.raises(ConfigurationError):
            WorkPhase(1.0, 4, locked=True)

    def test_from_cost_interleaves_phases(self):
        task = SimTask.from_cost("t", parallel_work=120.0, serial_work=12.0,
                                 locked_work=6.0, threads=4, n_chunks=3)
        assert task.total_work == pytest.approx(138.0)
        assert task.max_width == 4
        kinds = [(p.width, p.locked) for p in task.phases[:3]]
        assert kinds == [(1, True), (1, False), (4, False)]

    def test_from_cost_validation(self):
        with pytest.raises(ConfigurationError):
            SimTask.from_cost("t", 1.0, 1.0, threads=0)
        with pytest.raises(ConfigurationError):
            SimTask.from_cost("t", 1.0, 1.0, threads=1, n_chunks=0)


class TestSchedulerBasics:
    def test_empty_schedule(self):
        assert scheduler().run([]).makespan == 0.0

    def test_single_serial_task_time_equals_work(self):
        task = SimTask("t", [WorkPhase(10.0, 1)])
        result = scheduler().run([task])
        assert result.makespan == pytest.approx(10.0)
        assert result.completion_times["t"] == pytest.approx(10.0)

    def test_parallel_phase_speeds_up_with_width(self):
        serial = SimTask("s", [WorkPhase(120.0, 1)])
        wide = SimTask("w", [WorkPhase(120.0, 12)])
        t_serial = scheduler(sync_overhead_per_thread=0.0).run([serial]).makespan
        t_wide = scheduler(sync_overhead_per_thread=0.0).run([wide]).makespan
        assert t_wide == pytest.approx(t_serial / 12.0)

    def test_duplicate_task_names_rejected(self):
        task = SimTask("t", [WorkPhase(1.0, 1)])
        with pytest.raises(ConfigurationError):
            scheduler().run([task, SimTask("t", [WorkPhase(1.0, 1)])])

    def test_release_times_delay_start(self):
        late = SimTask("late", [WorkPhase(5.0, 1)], release_time=10.0)
        result = scheduler().run([late])
        assert result.completion_times["late"] == pytest.approx(15.0)

    def test_zero_work_task_completes_immediately(self):
        result = scheduler().run([SimTask("empty", [WorkPhase(0.0, 1)])])
        assert result.makespan == pytest.approx(0.0)

    def test_busy_thread_time_accumulates(self):
        task = SimTask("t", [WorkPhase(10.0, 2)])
        result = scheduler(sync_overhead_per_thread=0.0).run([task])
        assert result.busy_thread_time == pytest.approx(10.0)

    def test_speedup_over(self):
        slow = ScheduleResult({}, makespan=10.0)
        fast = ScheduleResult({}, makespan=5.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)


class TestSharingBehaviour:
    def test_two_serial_tasks_on_a_multicore_machine_overlap_fully(self):
        tasks = [SimTask(f"t{i}", [WorkPhase(10.0, 1)]) for i in range(2)]
        result = scheduler().run_parallel(tasks)
        assert result.makespan == pytest.approx(10.0)

    def test_one_by_one_serialises(self):
        tasks = [SimTask(f"t{i}", [WorkPhase(10.0, 1)]) for i in range(2)]
        result = scheduler().run_one_by_one(tasks)
        assert result.makespan == pytest.approx(20.0)
        assert result.completion_times["t0"] == pytest.approx(10.0)
        assert result.completion_times["t1"] == pytest.approx(20.0)

    def test_oversubscription_slows_tasks_down(self):
        # Two 12-wide tasks on a 12-core machine cannot both run at full rate.
        tasks = [SimTask(f"t{i}", [WorkPhase(120.0, 12)]) for i in range(2)]
        parallel = scheduler().run_parallel(tasks).makespan
        alone = scheduler().run([tasks[0]]).makespan
        assert parallel > alone
        assert parallel < 2 * alone  # SMT still helps a bit

    def test_locked_phases_serialise_across_tasks(self):
        tasks = [
            SimTask(f"t{i}", [WorkPhase(10.0, 1, locked=True)]) for i in range(3)
        ]
        result = scheduler().run_parallel(tasks)
        assert result.makespan == pytest.approx(30.0)

    def test_locked_phase_does_not_block_unrelated_parallel_work(self):
        locked = SimTask("locked", [WorkPhase(10.0, 1, locked=True)])
        worker = SimTask("worker", [WorkPhase(10.0, 1)])
        result = scheduler().run_parallel([locked, worker])
        assert result.makespan == pytest.approx(10.0)

    def test_interleaved_tasks_overlap_serial_gaps(self):
        """The paper's core effect: a concurrent kernel can use the cores the
        other kernel's serial phases leave idle."""
        def task(name):
            return SimTask.from_cost(
                name, parallel_work=120.0, serial_work=60.0, threads=12, n_chunks=16
            )

        one_by_one = scheduler().run_one_by_one([task("a"), task("b")]).makespan
        parallel = scheduler().run_parallel([task("a"), task("b")]).makespan
        assert parallel < one_by_one

    def test_max_events_guard(self):
        task = SimTask("t", [WorkPhase(1.0, 1)] * 10)
        tight = TaskScheduler(max_events=2)
        with pytest.raises(Exception):
            tight.run([task])
