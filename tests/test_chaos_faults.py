"""Chaos matrix: every injected fault × every lane.

Each case plants a fault at a named site and drives a job through one of
the three lanes (in-process local, process-sharded, shared-memory pool).
The contract under test is the ISSUE's: every job either completes
**bit-identically** to the clean run or fails **cleanly with a typed
error** — no hangs, no leaked ``/dev/shm`` segments, no orphan worker
processes.
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.cancellation import CancelToken, cancel_scope
from repro.exceptions import (
    CompilationError,
    DeadlineExceeded,
    RetryExhausted,
    WorkerCrashed,
)
from repro.exec import LocalBackend, NO_RETRY, RetryPolicy, ShardedExecutor
from repro.exec.shm import SEGMENT_PREFIX, SharedStatePool
from repro.ir.builder import CircuitBuilder
from repro.obs.trace import disable_tracing, enable_tracing
from repro.service import QuantumJobService
from repro.simulator.execution_plan import compile_plan
from repro.testing import FaultSpec, clear_faults, install_faults

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory required"
)


def live_segments():
    return sorted(
        f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)
    )


@pytest.fixture(autouse=True)
def chaos_hygiene():
    """No fault plan, no shm segment, no worker process survives a test."""
    segments_before = live_segments()
    children_before = {p.pid for p in multiprocessing.active_children()}
    yield
    clear_faults()
    deadline = time.time() + 15
    while time.time() < deadline:
        leaked_segments = [
            s for s in live_segments() if s not in segments_before
        ]
        orphans = {
            p.pid for p in multiprocessing.active_children()
        } - children_before
        if not leaked_segments and not orphans:
            break
        time.sleep(0.05)
    assert not leaked_segments, f"leaked shm segments: {leaked_segments}"
    assert not orphans, f"orphan worker processes: {orphans}"


def chaos_circuit(tag: str, n_qubits: int = 3):
    """Content-unique per case so the global plan cache cannot mask a
    ``plan.compile`` fault with a hit from an earlier test."""
    builder = CircuitBuilder(n_qubits, name=f"chaos_{tag}")
    builder.h(0)
    for q in range(1, n_qubits):
        builder.cx(q - 1, q)
    builder.rz(0, 0.001 + (hash(tag) % 9973) / 9973.0)
    builder.measure_all()
    return builder.build()


def chaos_plan(tag: str):
    """A chunked plan for the shared-memory lane (7 qubits, 4 chunks)."""
    builder = CircuitBuilder(7, name=f"chaosplan_{tag}")
    for q in range(7):
        builder.h(q)
    builder.rz(0, 0.001 + (hash(tag) % 9973) / 9973.0)
    for q in range(6):
        builder.cx(q, q + 1)
    return compile_plan(builder.build(), 7, chunk_threshold=2)


# ---------------------------------------------------------------------------
# The matrix.  expect is either "ok" (bit-identical completion) or a typed
# exception class (clean failure).  The "kill" action is excluded from the
# local lane by construction: the local lane IS the client process, and a
# self-SIGKILL there is outside any recoverable contract.
# ---------------------------------------------------------------------------

LOCAL_CASES = [
    pytest.param(
        "slow",
        [FaultSpec(site="local.replay", action="slow", seconds=0.4)],
        0.15,
        DeadlineExceeded,
        id="local-slow-deadline",
    ),
    pytest.param(
        "compile",
        [
            FaultSpec(
                site="plan.compile", action="fail", kind="compile", times=None
            )
        ],
        None,
        CompilationError,
        id="local-compile-fail",
    ),
    pytest.param(
        "alloc",
        [
            FaultSpec(
                site="local.replay", action="fail", kind="memory", times=None
            )
        ],
        None,
        MemoryError,
        id="local-alloc-fail",
    ),
]

SHARDED_CASES = [
    pytest.param(
        "kill1",
        [
            FaultSpec(
                site="sharded.worker.replay",
                action="kill",
                times=1,
                scope="global",
            )
        ],
        None,
        "ok",
        id="sharded-kill-once-recovers",
    ),
    pytest.param(
        "killN",
        [
            FaultSpec(
                site="sharded.worker.replay",
                action="kill",
                times=None,
                scope="global",
            )
        ],
        NO_RETRY,
        RetryExhausted,
        id="sharded-kill-forever-exhausts",
    ),
    pytest.param(
        "compile",
        [
            FaultSpec(
                site="sharded.worker.compile",
                action="fail",
                kind="compile",
                times=None,
                scope="global",
            )
        ],
        None,
        CompilationError,
        id="sharded-compile-fail",
    ),
    pytest.param(
        "memory",
        [
            FaultSpec(
                site="sharded.worker.replay",
                action="fail",
                kind="memory",
                times=None,
                scope="global",
            )
        ],
        None,
        MemoryError,
        id="sharded-memory-fail",
    ),
]

SHM_CASES = [
    pytest.param(
        "kill1",
        [
            FaultSpec(
                site="shm.worker.replay",
                action="kill",
                times=1,
                scope="global",
            )
        ],
        RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.1),
        "ok",
        id="shm-kill-once-retries",
    ),
    pytest.param(
        "killN",
        [
            FaultSpec(
                site="shm.worker.replay",
                action="kill",
                times=None,
                scope="global",
            )
        ],
        None,
        WorkerCrashed,
        id="shm-kill-no-policy-crashes-typed",
    ),
    pytest.param(
        "compile",
        [
            FaultSpec(
                site="shm.worker.compile",
                action="fail",
                kind="compile",
                times=None,
                scope="global",
            )
        ],
        None,
        WorkerCrashed,
        id="shm-compile-fail",
    ),
    pytest.param(
        "alloc",
        [
            FaultSpec(
                site="shm.alloc", action="fail", kind="memory", times=None
            )
        ],
        None,
        "ok",
        id="shm-alloc-degrades-to-serial",
    ),
]


# ---------------------------------------------------------------------------
# Local lane
# ---------------------------------------------------------------------------


class TestLocalLane:
    @pytest.mark.parametrize("tag, specs, deadline, expect", LOCAL_CASES)
    def test_local_fault(self, tag, specs, deadline, expect):
        from repro.simulator.plan_cache import get_plan_cache

        circuit = chaos_circuit(f"loc_{tag}")
        backend = LocalBackend()
        expected = backend.execute(circuit, 64, seed=7).counts
        # The baseline warmed the global plan cache; a compile fault must
        # see a miss, exactly as a fresh job would.
        get_plan_cache().clear()
        install_faults(specs)
        token = CancelToken(timeout=deadline) if deadline else CancelToken()
        if expect == "ok":
            with cancel_scope(token):
                result = backend.execute(circuit, 64, seed=7)
            assert result.counts == expected
        else:
            with pytest.raises(expect):
                with cancel_scope(token):
                    backend.execute(circuit, 64, seed=7)
            clear_faults()
            # Clean failure: the lane serves the next job untouched.
            assert backend.execute(circuit, 64, seed=7).counts == expected


# ---------------------------------------------------------------------------
# Sharded lane
# ---------------------------------------------------------------------------


class TestShardedLane:
    @pytest.mark.parametrize("tag, specs, policy, expect", SHARDED_CASES)
    def test_sharded_fault(self, tag, specs, policy, expect):
        circuit = chaos_circuit(f"shd_{tag}")
        # Clean baseline first: its workers spawn before the fault plan
        # reaches the environment, so they never load it.
        clean = ShardedExecutor(2, name=f"chaos-clean-{tag}")
        try:
            expected = clean.execute(circuit, 128, seed=11).counts
        finally:
            clean.close()
        install_faults(specs)
        kwargs = {"name": f"chaos-shd-{tag}"}
        if policy is not None:
            kwargs["retry_policy"] = policy
        executor = ShardedExecutor(2, **kwargs)
        try:
            if expect == "ok":
                result = executor.execute(circuit, 128, seed=11)
                assert result.counts == expected
                assert executor.total_retries >= 1
            else:
                with pytest.raises(expect):
                    executor.execute(circuit, 128, seed=11)
                clear_faults()
                # The lane recovers: respawned shards serve the next job
                # bit-identically.
                assert executor.execute(circuit, 128, seed=11).counts == expected
        finally:
            executor.close()

    def test_sharded_slow_worker_hits_deadline(self):
        circuit = chaos_circuit("shd_slow")
        install_faults(
            [
                FaultSpec(
                    site="sharded.worker.replay",
                    action="slow",
                    seconds=0.6,
                    times=None,
                    scope="global",
                )
            ]
        )
        executor = ShardedExecutor(2, name="chaos-shd-slow")
        try:
            with pytest.raises(DeadlineExceeded):
                with cancel_scope(CancelToken(timeout=0.2)):
                    executor.execute(circuit, 128, seed=11)
        finally:
            executor.close()


# ---------------------------------------------------------------------------
# Shared-memory lane
# ---------------------------------------------------------------------------


class TestShmLane:
    @pytest.mark.parametrize("tag, specs, policy, expect", SHM_CASES)
    def test_shm_fault(self, tag, specs, policy, expect):
        plan = chaos_plan(tag)
        expected = plan.execute(plan.new_state())  # serial ground truth
        install_faults(specs)
        pool = SharedStatePool(
            2, name=f"chaos-shm-{tag}", retry_policy=policy
        )
        try:
            if expect == "ok":
                final = plan.execute(plan.new_state(), pool=pool)
                assert np.array_equal(final, expected)
            else:
                with pytest.raises(expect):
                    plan.execute(plan.new_state(), pool=pool)
                clear_faults()
                # Respawned workers serve the next replay bit-identically.
                final = plan.execute(plan.new_state(), pool=pool)
                assert np.array_equal(final, expected)
        finally:
            pool.close()

    def test_shm_kill_once_respawned_exactly_once(self):
        plan = chaos_plan("kill_count")
        expected = plan.execute(plan.new_state())
        install_faults(
            [
                FaultSpec(
                    site="shm.worker.replay",
                    action="kill",
                    times=1,
                    scope="global",
                )
            ]
        )
        pool = SharedStatePool(
            2,
            name="chaos-shm-killcount",
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.01, max_delay=0.1
            ),
        )
        try:
            final = plan.execute(plan.new_state(), pool=pool)
            assert np.array_equal(final, expected)
            assert pool.respawns == 1
        finally:
            pool.close()

    def test_shm_slow_step_hits_deadline_without_respawn(self):
        # Cooperative abort through the control segment: the deadline trips
        # at a step boundary, workers acknowledge and stay alive — no
        # respawn, and the pool serves the next replay immediately.
        plan = chaos_plan("slowstep")
        expected = plan.execute(plan.new_state())
        install_faults(
            [
                FaultSpec(
                    site="shm.worker.step",
                    action="slow",
                    seconds=0.05,
                    times=None,
                )
            ]
        )
        pool = SharedStatePool(2, name="chaos-shm-slow")
        try:
            with pytest.raises(DeadlineExceeded):
                with cancel_scope(CancelToken(timeout=0.2)):
                    plan.execute(plan.new_state(), pool=pool)
            assert pool.respawns == 0
            clear_faults()
            final = plan.execute(plan.new_state(), pool=pool)
            assert np.array_equal(final, expected)
        finally:
            pool.close()

    def test_shm_alloc_degrade_leaves_breaker_trail(self):
        from repro.service import CircuitBreaker

        plan = chaos_plan("alloctrail")
        expected = plan.execute(plan.new_state())
        install_faults(
            [
                FaultSpec(
                    site="shm.alloc", action="fail", kind="memory", times=None
                )
            ]
        )
        breaker = CircuitBreaker(
            name="chaos-alloc", failure_threshold=1, cooldown_seconds=60.0
        )
        pool = SharedStatePool(2, name="chaos-shm-alloctrail", breaker=breaker)
        try:
            final = plan.execute(plan.new_state(), pool=pool)
            assert np.array_equal(final, expected)  # degraded, still correct
            assert breaker.state == "open"
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Density / noisy lane.  In-process like the local lane, so "kill" is
# excluded by construction; the fault site sits between the pre-evolution
# cancellation check and the matrix evolution itself.
# ---------------------------------------------------------------------------

DENSITY_CASES = [
    pytest.param(
        "slow",
        [FaultSpec(site="density.execute", action="slow", seconds=0.4)],
        0.15,
        DeadlineExceeded,
        id="density-slow-deadline",
    ),
    pytest.param(
        "alloc",
        [
            FaultSpec(
                site="density.execute", action="fail", kind="memory", times=None
            )
        ],
        None,
        MemoryError,
        id="density-alloc-fail",
    ),
]


def _noisy_density_backend():
    from repro.exec.backend import DensityBackend
    from repro.simulator.noise import NoiseModel, depolarizing_channel

    return DensityBackend(
        NoiseModel(default_single_qubit=depolarizing_channel(0.02))
    )


class TestDensityLane:
    @pytest.mark.parametrize("tag, specs, deadline, expect", DENSITY_CASES)
    def test_density_fault(self, tag, specs, deadline, expect):
        circuit = chaos_circuit(f"den_{tag}")
        backend = _noisy_density_backend()
        expected = backend.execute(circuit, 64, seed=7).counts
        install_faults(specs)
        token = CancelToken(timeout=deadline) if deadline else CancelToken()
        with pytest.raises(expect):
            with cancel_scope(token):
                backend.execute(circuit, 64, seed=7)
        clear_faults()
        # Clean failure: the lane serves the next job untouched.
        assert backend.execute(circuit, 64, seed=7).counts == expected

    def test_density_cancelled_before_evolution(self):
        from repro.exceptions import JobCancelled

        circuit = chaos_circuit("den_cancel")
        backend = _noisy_density_backend()
        token = CancelToken()
        token.cancel()
        with pytest.raises(JobCancelled):
            with cancel_scope(token):
                backend.execute(circuit, 64, seed=7)
        # A dead token never reaches the simulator; a fresh one does.
        assert backend.execute(circuit, 64, seed=7).counts


# ---------------------------------------------------------------------------
# Stabilizer / tableau lane.  In-process like the density lane ("kill"
# excluded by construction); the fault site sits between the pre-evolution
# cancellation check and classification, so a tripped fault costs nothing.
# The chaos circuit must be Clifford — the broker only routes such jobs to
# the tableau — so this lane swaps chaos_circuit's rz disambiguator for a
# tag-dependent S/Z suffix.
# ---------------------------------------------------------------------------

STABILIZER_CASES = [
    pytest.param(
        "slow",
        [FaultSpec(site="stabilizer.execute", action="slow", seconds=0.4)],
        0.15,
        DeadlineExceeded,
        id="stabilizer-slow-deadline",
    ),
    pytest.param(
        "alloc",
        [
            FaultSpec(
                site="stabilizer.execute",
                action="fail",
                kind="memory",
                times=None,
            )
        ],
        None,
        MemoryError,
        id="stabilizer-alloc-fail",
    ),
]


def clifford_chaos_circuit(tag: str, n_qubits: int = 3):
    """Content-unique per case (like ``chaos_circuit``) but fully Clifford,
    so the broker's automatic routing sends it to the tableau."""
    builder = CircuitBuilder(n_qubits, name=f"chaos_stab_{tag}")
    builder.h(0)
    for q in range(1, n_qubits):
        builder.cx(q - 1, q)
    for _ in range(1 + hash(tag) % 3):
        builder.s(0)
    builder.measure_all()
    return builder.build()


class TestStabilizerLane:
    @pytest.mark.parametrize("tag, specs, deadline, expect", STABILIZER_CASES)
    def test_stabilizer_fault(self, tag, specs, deadline, expect):
        from repro.exec.stabilizer import StabilizerBackend

        circuit = clifford_chaos_circuit(f"stab_{tag}")
        backend = StabilizerBackend()
        expected = backend.execute(circuit, 64, seed=7).counts
        install_faults(specs)
        token = CancelToken(timeout=deadline) if deadline else CancelToken()
        with pytest.raises(expect):
            with cancel_scope(token):
                backend.execute(circuit, 64, seed=7)
        clear_faults()
        # Clean failure: the lane serves the next job bit-identically.
        assert backend.execute(circuit, 64, seed=7).counts == expected

    def test_stabilizer_cancelled_before_classification(self):
        from repro.exceptions import JobCancelled
        from repro.exec.stabilizer import StabilizerBackend

        circuit = clifford_chaos_circuit("stab_cancel")
        backend = StabilizerBackend()
        token = CancelToken()
        token.cancel()
        with pytest.raises(JobCancelled):
            with cancel_scope(token):
                backend.execute(circuit, 64, seed=7)
        # A dead token never reaches the tableau; a fresh one does.
        assert backend.execute(circuit, 64, seed=7).counts

    def test_stabilizer_fault_through_broker_fails_typed(self):
        """The fault surfaces as a typed error on the job handle when the
        broker auto-routes a Clifford job to the faulted tableau, and the
        service keeps serving afterwards."""
        install_faults(
            [
                FaultSpec(
                    site="stabilizer.execute",
                    action="fail",
                    kind="memory",
                    times=None,
                )
            ]
        )
        circuit = clifford_chaos_circuit("stab_broker")
        with QuantumJobService(
            backend="qpp", workers=1, name="chaos-stab"
        ) as service:
            handle = service.submit(circuit, shots=64)
            with pytest.raises(MemoryError):
                handle.result(timeout=10)
            clear_faults()
            recovered = service.submit(circuit, shots=64).result(timeout=10)
            assert recovered.total_counts() == 64
            assert service.metrics().stabilizer_executions == 1


# ---------------------------------------------------------------------------
# Trace trees under chaos
# ---------------------------------------------------------------------------


class TestChaosTracing:
    def test_failing_job_leaves_error_tagged_trace_tree(self):
        install_faults(
            [
                FaultSpec(
                    site="plan.compile",
                    action="fail",
                    kind="compile",
                    times=None,
                )
            ]
        )
        tracer = enable_tracing()
        try:
            with QuantumJobService(
                backend="qpp", workers=1, name="chaos-trace"
            ) as service:
                handle = service.submit(chaos_circuit("trace"), shots=64)
                with pytest.raises(CompilationError):
                    handle.result(timeout=10)
                deadline = time.time() + 5
                spans = []
                while time.time() < deadline:
                    spans = tracer.spans(handle.trace_id)
                    roots = [s for s in spans if s.name == "job"]
                    if roots and roots[0].duration is not None:
                        break
                    time.sleep(0.02)
                roots = [s for s in spans if s.name == "job"]
                assert roots, "no root job span recorded"
                assert roots[0].error is not None
                # The tree is complete: every recorded span is closed.
                assert all(s.duration is not None for s in spans)
        finally:
            disable_tracing()
