"""Tests for ObjectiveFunction and the classical optimizers."""

import numpy as np
import pytest

from repro.core.objective import ObjectiveFunction, createObjectiveFunction
from repro.core.optimizer import (
    OptimizerResult,
    SPSAOptimizer,
    ScipyOptimizer,
    createOptimizer,
)
from repro.exceptions import ConfigurationError, OptimizationError
from repro.ir.builder import CircuitBuilder
from repro.ir.parameter import Parameter
from repro.operators.pauli import X, Y, Z


def deuteron():
    H = 5.907 - 2.1433 * X(0) * X(1) - 2.1433 * Y(0) * Y(1) + 0.21829 * Z(0) - 6.125 * Z(1)
    ansatz = CircuitBuilder(2).x(0).ry(1, Parameter("theta")).cx(1, 0).build()
    return H, ansatz


class TestObjectiveFunction:
    def test_evaluates_energy_at_given_angle(self):
        H, ansatz = deuteron()
        objective = createObjectiveFunction(ansatz, H, 2, 1, {"exact": True})
        # theta = 0 leaves |01>: <Z0> = +1 on |...0>? evaluate and compare to matrix.
        energy = objective([0.0])
        state_energy = float(
            np.real(
                np.conj(_state(ansatz.bind([0.0]))) @ H.to_matrix(2) @ _state(ansatz.bind([0.0]))
            )
        )
        assert energy == pytest.approx(state_energy, abs=1e-9)

    def test_minimum_matches_exact_ground_state(self):
        H, ansatz = deuteron()
        objective = createObjectiveFunction(ansatz, H, 2, 1, {"exact": True})
        thetas = np.linspace(-np.pi, np.pi, 201)
        best = min(objective([t]) for t in thetas)
        assert best == pytest.approx(H.ground_state_energy(2), abs=1e-3)

    def test_evaluation_counter(self):
        H, ansatz = deuteron()
        objective = createObjectiveFunction(ansatz, H, 2, 1, {"exact": True})
        objective([0.1])
        objective([0.2])
        assert objective.evaluation_count == 2

    def test_wrong_parameter_count_rejected(self):
        H, ansatz = deuteron()
        objective = createObjectiveFunction(ansatz, H, 2, 1)
        with pytest.raises(OptimizationError):
            objective([0.1, 0.2])

    def test_central_gradient_matches_numerical_slope(self):
        H, ansatz = deuteron()
        objective = createObjectiveFunction(
            ansatz, H, 2, 1, {"exact": True, "gradient-strategy": "central", "step": 1e-4}
        )
        theta = 0.4
        grad = objective.gradient([theta])
        expected = (objective([theta + 1e-5]) - objective([theta - 1e-5])) / 2e-5
        assert grad[0] == pytest.approx(expected, rel=1e-3)

    def test_parameter_shift_gradient_matches_central(self):
        H, ansatz = deuteron()
        central = createObjectiveFunction(ansatz, H, 2, 1, {"exact": True})
        shifted = createObjectiveFunction(
            ansatz, H, 2, 1, {"exact": True, "gradient-strategy": "parameter-shift"}
        )
        assert shifted.gradient([0.7])[0] == pytest.approx(central.gradient([0.7])[0], abs=1e-4)

    def test_forward_gradient(self):
        H, ansatz = deuteron()
        objective = createObjectiveFunction(
            ansatz, H, 2, 1, {"exact": True, "gradient-strategy": "forward", "step": 1e-5}
        )
        assert objective.gradient([0.3])[0] == pytest.approx(
            createObjectiveFunction(ansatz, H, 2, 1, {"exact": True}).gradient([0.3])[0], abs=1e-3
        )

    def test_invalid_gradient_strategy_rejected(self):
        H, ansatz = deuteron()
        with pytest.raises(ConfigurationError):
            createObjectiveFunction(ansatz, H, 2, 1, {"gradient-strategy": "magic"})

    def test_callable_ansatz_factory(self):
        H, _ = deuteron()

        def factory(n_qubits, theta):
            return CircuitBuilder(n_qubits).x(0).ry(1, theta).cx(1, 0).build()

        objective = ObjectiveFunction(factory, H, 2, 1, {"exact": True})
        reference = createObjectiveFunction(deuteron()[1], H, 2, 1, {"exact": True})
        assert objective([0.25]) == pytest.approx(reference([0.25]), abs=1e-9)


def _state(circuit):
    from repro.simulator.statevector import StateVector

    sv = StateVector(2)
    sv.apply_circuit(circuit)
    return sv.data


class TestOptimizers:
    def quadratic(self, x):
        x = np.asarray(x, dtype=float)
        return float(np.sum((x - np.array([1.0, -2.0])) ** 2))

    @pytest.mark.parametrize("method", ["nelder-mead", "l-bfgs", "cobyla", "powell", "bfgs"])
    def test_scipy_methods_minimise_quadratic(self, method):
        optimizer = ScipyOptimizer(method, {"maxiter": 500})
        result = optimizer.optimize(self.quadratic, initial_parameters=[0.0, 0.0])
        assert result.optimal_value == pytest.approx(0.0, abs=1e-3)
        assert result.optimal_parameters == pytest.approx([1.0, -2.0], abs=1e-2)

    def test_unknown_method_rejected(self):
        with pytest.raises(OptimizationError):
            ScipyOptimizer("genetic")

    def test_create_optimizer_nlopt_mapping(self):
        optimizer = createOptimizer("nlopt", {"nlopt-optimizer": "l-bfgs"})
        assert isinstance(optimizer, ScipyOptimizer)
        assert optimizer.method == "L-BFGS-B"

    def test_create_optimizer_default(self):
        assert isinstance(createOptimizer(), ScipyOptimizer)

    def test_create_optimizer_spsa(self):
        assert isinstance(createOptimizer("spsa"), SPSAOptimizer)

    def test_create_optimizer_unknown_family(self):
        with pytest.raises(OptimizationError):
            createOptimizer("quantum-annealer")

    def test_spsa_minimises_noisy_quadratic(self):
        rng = np.random.default_rng(0)

        def noisy(x):
            return self.quadratic(x) + rng.normal(scale=0.01)

        optimizer = SPSAOptimizer({"maxiter": 300, "seed": 1, "a": 0.3})
        result = optimizer.optimize(noisy, initial_parameters=[0.0, 0.0])
        assert result.optimal_value < 0.5

    def test_result_unpacks_like_qcor(self):
        optimizer = ScipyOptimizer("nelder-mead", {"maxiter": 200})
        opt_val, opt_params = optimizer.optimize(self.quadratic, initial_parameters=[0.0, 0.0])
        assert opt_val == pytest.approx(0.0, abs=1e-3)
        assert len(opt_params) == 2

    def test_initial_parameters_inferred_from_objective(self):
        H, ansatz = deuteron()
        objective = createObjectiveFunction(ansatz, H, 2, 1, {"exact": True})
        result = createOptimizer("nlopt", {"nlopt-optimizer": "nelder-mead"}).optimize(objective)
        assert isinstance(result, OptimizerResult)
        assert result.optimal_value == pytest.approx(H.ground_state_energy(2), abs=1e-3)

    def test_missing_parameter_count_rejected(self):
        optimizer = ScipyOptimizer("nelder-mead")
        with pytest.raises(OptimizationError):
            optimizer.optimize(lambda x: float(np.sum(np.square(x))))

    def test_gradient_used_by_lbfgs(self):
        H, ansatz = deuteron()
        objective = createObjectiveFunction(ansatz, H, 2, 1, {"exact": True})
        result = createOptimizer("nlopt", {"nlopt-optimizer": "l-bfgs"}).optimize(objective)
        assert result.optimal_value == pytest.approx(H.ground_state_energy(2), abs=1e-4)
        assert result.history  # evaluations were recorded
