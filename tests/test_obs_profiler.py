"""Tests for the per-kernel replay profiler (:mod:`repro.obs.profiler`).

The acceptance property: on a serial replay, the profiler's per-kernel
seconds must sum to (within tolerance of) the wall time of the enclosing
replay span — the attribution accounts for the replay, it does not invent
time.  Plus unit coverage for the accumulator, wire format, and the
install/uninstall switches the hot paths key off.
"""

import time

import pytest

from repro.algorithms.qft import qft_circuit
from repro.obs import (
    ReplayProfiler,
    active_profiler,
    disable_profiler,
    enable_profiler,
)
from repro.obs.profiler import profiler_installed
from repro.simulator.execution_plan import compile_plan


class TestAccumulator:
    def test_record_kernel_aggregates_per_class(self):
        profiler = ReplayProfiler()
        profiler.record_kernel("single", 0.001)
        profiler.record_kernel("single", 0.003)
        profiler.record_kernel("dense", 0.010)
        snap = profiler.snapshot()
        assert snap.kernels["single"].calls == 2
        assert snap.kernels["single"].seconds == pytest.approx(0.004)
        assert snap.kernels["single"].mean_seconds == pytest.approx(0.002)
        assert snap.total_calls == 3
        assert snap.total_kernel_seconds == pytest.approx(0.014)

    def test_record_barrier(self):
        profiler = ReplayProfiler()
        profiler.record_barrier(0.002)
        profiler.record_barrier(0.003, waits=4)
        snap = profiler.snapshot()
        assert snap.barrier_waits == 5
        assert snap.barrier_wait_seconds == pytest.approx(0.005)

    def test_wire_round_trip_merges_into_parent(self):
        worker = ReplayProfiler()
        worker.record_kernel("diagonal", 0.5)
        worker.record_barrier(0.1, waits=2)
        parent = ReplayProfiler()
        parent.record_kernel("diagonal", 0.25)
        parent.merge_wire(worker.to_wire())
        parent.merge_wire(None)  # no-op: worker had nothing to report
        snap = parent.snapshot()
        assert snap.kernels["diagonal"].calls == 2
        assert snap.kernels["diagonal"].seconds == pytest.approx(0.75)
        assert snap.barrier_waits == 2

    def test_reset_clears_everything(self):
        profiler = ReplayProfiler()
        profiler.record_kernel("single", 1.0)
        profiler.record_barrier(1.0)
        profiler.reset()
        snap = profiler.snapshot()
        assert not snap.kernels
        assert snap.barrier_waits == 0

    def test_as_table_sorts_slowest_first(self):
        profiler = ReplayProfiler()
        profiler.record_kernel("fast", 0.001)
        profiler.record_kernel("slow", 1.0)
        profiler.record_barrier(0.5)
        lines = profiler.snapshot().as_table().splitlines()
        assert lines[0].startswith("kernel")
        assert lines[1].startswith("slow")
        assert lines[2].startswith("fast")
        assert lines[3].startswith("barrier-wait")


class TestSwitches:
    def test_disabled_by_default(self):
        assert active_profiler() is None

    def test_enable_returns_the_same_instance_until_disabled(self):
        first = enable_profiler()
        assert enable_profiler() is first
        assert active_profiler() is first
        disable_profiler()
        assert active_profiler() is None

    def test_profiler_installed_restores_previous(self):
        outer = enable_profiler()
        inner = ReplayProfiler()
        with profiler_installed(inner):
            assert active_profiler() is inner
        assert active_profiler() is outer
        with profiler_installed(None):
            assert active_profiler() is outer


class TestReplayAttribution:
    def test_kernel_seconds_account_for_the_serial_replay(self):
        """Per-kernel seconds must sum to the enclosing replay's wall time
        (within 10%): the profiler attributes the replay, it does not
        sample or extrapolate.  Uses a circuit big enough (~14 qubits,
        every QFT kernel class) that the loop body dwarfs timer noise."""
        plan = compile_plan(qft_circuit(14), 14)
        profiler = ReplayProfiler()
        with profiler_installed(profiler):
            t0 = time.perf_counter()
            plan.execute(plan.new_state())
            wall = time.perf_counter() - t0
        snap = profiler.snapshot()
        assert snap.total_calls == plan.n_steps
        assert snap.total_kernel_seconds == pytest.approx(wall, rel=0.10)

    def test_profiled_replay_is_bitwise_identical(self):
        import numpy as np

        plan = compile_plan(qft_circuit(8), 8)
        reference = plan.execute(plan.new_state())
        with profiler_installed(ReplayProfiler()):
            profiled = plan.execute(plan.new_state())
        assert np.array_equal(reference, profiled)

    def test_unprofiled_replay_records_nothing(self):
        plan = compile_plan(qft_circuit(6), 6)
        profiler = ReplayProfiler()
        plan.execute(plan.new_state())  # profiler not installed
        assert not profiler.snapshot().kernels
