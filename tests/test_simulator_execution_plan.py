"""Tests for compiled execution plans, the plan cache, and engine reuse."""

import numpy as np
import pytest

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.algorithms.vqe import deuteron_ansatz_circuit
from repro.config import set_config
from repro.exceptions import ExecutionError
from repro.ir import gates as G
from repro.ir.builder import CircuitBuilder
from repro.ir.composite import CompositeInstruction
from repro.ir.parameter import Parameter
from repro.runtime.buffer import AcceleratorBuffer
from repro.runtime.qpp_accelerator import QppAccelerator
from repro.simulator.execution_plan import (
    compile_parametric_plan,
    compile_plan,
)
from repro.simulator.parallel_engine import ParallelSimulationEngine
from repro.simulator.plan_cache import PlanCache, get_plan_cache, reset_plan_cache
from repro.simulator.statevector import StateVector


def naive_state(circuit, n_qubits):
    state = StateVector(n_qubits)
    for inst in circuit:
        if inst.is_measurement:
            continue
        state.apply(inst)
    return state.data


def plan_state(circuit, n_qubits, **kwargs):
    plan = compile_plan(circuit, n_qubits, **kwargs)
    return plan.execute(plan.new_state())


# ---------------------------------------------------------------------------
# Property-style equivalence over randomized circuits
# ---------------------------------------------------------------------------


def random_unitary(rng, k):
    dim = 1 << k
    matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, _ = np.linalg.qr(matrix)
    return q


def random_circuit(rng, n_qubits, length):
    """Random mix hitting every kernel class: 1q fixed/rotation gates,
    controlled, diagonal, permutation, dense unitaries, classical perms."""
    circuit = CompositeInstruction("random", n_qubits)
    fixed_1q = [G.H, G.X, G.Y, G.Z, G.S, G.Sdg, G.T, G.Tdg, G.Identity]
    for _ in range(length):
        choice = rng.integers(0, 10)
        qs = [int(q) for q in rng.permutation(n_qubits)]
        if choice < 3:
            circuit.add(fixed_1q[rng.integers(0, len(fixed_1q))]([qs[0]]))
        elif choice < 5:
            cls = [G.RX, G.RY, G.RZ, G.U3][rng.integers(0, 4)]
            params = [float(v) for v in rng.uniform(-3, 3, cls.num_parameters)]
            circuit.add(cls([qs[0]], params))
        elif choice < 7:
            cls = [G.CX, G.CY, G.CZ, G.CH, G.Swap, G.ISwap][rng.integers(0, 6)]
            circuit.add(cls([qs[0], qs[1]]))
        elif choice == 7:
            cls = [G.CRZ, G.CPhase][rng.integers(0, 2)]
            circuit.add(cls([qs[0], qs[1]], [float(rng.uniform(-3, 3))]))
        elif choice == 8:
            cls = [G.CCX, G.CSwap][rng.integers(0, 2)]
            circuit.add(cls(qs[:3]))
        else:
            k = int(rng.integers(2, 4))
            if rng.random() < 0.5:
                perm = [int(p) for p in rng.permutation(1 << k)]
                circuit.add(G.PermutationGate(perm, qs[:k]))
            else:
                circuit.add(G.UnitaryGate(random_unitary(rng, k), qs[:k]))
    return circuit


@pytest.mark.parametrize("fusion_max_qubits", [0, 2, 3])
@pytest.mark.parametrize("optimize", [False, True])
def test_random_circuits_plan_matches_naive(optimize, fusion_max_qubits):
    rng = np.random.default_rng(20260728)
    for _ in range(12):
        n_qubits = int(rng.integers(3, 7))
        circuit = random_circuit(rng, n_qubits, int(rng.integers(5, 30)))
        expected = naive_state(circuit, n_qubits)
        got = plan_state(
            circuit, n_qubits, optimize=optimize, fusion_max_qubits=fusion_max_qubits
        )
        assert np.allclose(got, expected, atol=1e-12)


def test_algorithm_suite_bit_identical_without_fusion_triggering():
    """The bell/ghz/qft/shor suite lowers entirely to exact kernels.

    Diagonal batching is disabled here because batched plans reassociate
    the CPHASE products (ulp-level shifts on generic states; equivalence
    with batching on is covered at 1e-12 in test_simulator_chunked_plan).
    """
    shor = period_finding_circuit(15, 2)
    for circuit, n in [
        (bell_circuit(2), 2),
        (ghz_circuit(5), 5),
        (qft_circuit(6), 6),
        (shor, shor.n_qubits),
    ]:
        assert np.array_equal(
            plan_state(circuit, n, optimize=False, batch_diagonals=False),
            naive_state(circuit, n),
        )


def test_kernel_classification_covers_all_classes():
    circuit = (
        CircuitBuilder(4)
        .h(0)  # single
        .cphase(0, 1, 0.4)  # diagonal
        .cx(0, 2)  # permutation
        .build()
    )
    circuit.add(G.CH([1, 3]))  # controlled
    circuit.add(G.PermutationGate([1, 0, 2, 3], [2, 3]))  # gather
    circuit.add(G.ISwap([0, 3]))  # dense
    circuit.add(G.Reset([1]))  # reset
    plan = compile_plan(circuit, 4, optimize=False)
    assert set(plan.kernel_counts()) == {
        "single",
        "diagonal",
        "permutation",
        "controlled",
        "gather",
        "dense",
        "reset",
    }


def test_fusion_fuses_single_qubit_runs_and_overlapping_blocks():
    circuit = CircuitBuilder(3).h(0).t(0).s(0).build()  # same-qubit run
    circuit.add(G.ISwap([0, 1]))  # overlaps the run's qubit
    plan = compile_plan(circuit, 3, optimize=False, fusion_max_qubits=2)
    assert plan.fused_gates == 4
    assert plan.n_steps == 1
    expected = naive_state(circuit, 3)
    assert np.allclose(plan.execute(plan.new_state()), expected, atol=1e-12)


def test_fusion_never_reorders_disjoint_gates():
    circuit = CircuitBuilder(3).ry(0, 0.3).ry(1, 0.7).ry(2, 1.1).build()
    plan = compile_plan(circuit, 3, fusion_max_qubits=3)
    # Disjoint rotations must not merge (reordering is only safe when the
    # target sets overlap and stay contiguous).
    assert plan.fused_gates == 0
    assert np.allclose(plan.execute(plan.new_state()), naive_state(circuit, 3), atol=1e-12)


def test_plan_width_can_exceed_circuit_width():
    plan = compile_plan(bell_circuit(2).without_measurements(), 4)
    state = plan.execute(plan.new_state())
    assert state.size == 16
    expected = StateVector(4).apply_circuit(bell_circuit(2).without_measurements()).data
    assert np.allclose(state, expected)


def test_plan_rejects_mismatched_state_and_symbolic_circuits():
    plan = compile_plan(bell_circuit(2).without_measurements(), 2)
    with pytest.raises(ExecutionError):
        plan.execute(np.zeros(8, dtype=complex))
    symbolic = CircuitBuilder(1).rx(0, Parameter("t")).build()
    with pytest.raises(ExecutionError):
        compile_plan(symbolic, 1)
    with pytest.raises(ExecutionError):
        compile_parametric_plan(bell_circuit(2), 2)


def test_reset_plan_requires_rng():
    circuit = CircuitBuilder(1).h(0).reset(0).build()
    plan = compile_plan(circuit, 1, optimize=False)
    with pytest.raises(ExecutionError):
        plan.execute(plan.new_state())


# ---------------------------------------------------------------------------
# Parametric plans
# ---------------------------------------------------------------------------


def parametric_ansatz(n_qubits=4):
    theta = [Parameter(f"t{i}") for i in range(n_qubits * 2)]
    builder = CircuitBuilder(n_qubits)
    index = 0
    for qubit in range(n_qubits):
        builder.ry(qubit, theta[index])
        index += 1
    for qubit in range(n_qubits - 1):
        builder.cx(qubit, qubit + 1)
    for qubit in range(n_qubits):
        builder.rz(qubit, theta[index])
        index += 1
    builder.cphase(0, n_qubits - 1, theta[0] * 2.0)
    return builder.build()


def test_parametric_rebind_matches_fresh_binding():
    circuit = parametric_ansatz(4)
    plan = compile_parametric_plan(circuit, 4)
    rng = np.random.default_rng(5)
    for _ in range(4):
        values = [float(v) for v in rng.uniform(-np.pi, np.pi, 8)]
        bound = plan.bind(values)
        got = bound.execute(bound.new_state())
        expected = StateVector(4).apply_circuit(circuit, values).data
        assert np.allclose(got, expected, atol=1e-12)


def test_parametric_bind_accepts_mapping_and_validates_length():
    circuit = CircuitBuilder(2).rx(0, Parameter("a")).ry(1, Parameter("b")).build()
    plan = compile_parametric_plan(circuit, 2)
    by_name = plan.bind({"a": 0.3, "b": 0.9})
    by_order = plan.bind([0.3, 0.9])  # sorted-name convention, like bind()
    assert np.allclose(
        by_name.execute(by_name.new_state()), by_order.execute(by_order.new_state())
    )
    with pytest.raises(ExecutionError):
        plan.bind([0.3])
    with pytest.raises(ExecutionError):
        compile_parametric_plan(circuit, 2)._thread_plan().execute(
            np.array([1, 0, 0, 0], dtype=complex)
        )


def test_statevector_run_uses_parametric_plan_cache():
    cache = reset_plan_cache()
    circuit = parametric_ansatz(3)
    values_a = [0.1] * len(circuit.free_parameters)
    values_b = [0.7] * len(circuit.free_parameters)
    StateVector(3).run(circuit, values_a)
    StateVector(3).run(circuit, values_b)
    stats = cache.stats()
    assert stats.misses == 1 and stats.hits == 1
    got = StateVector(3).run(circuit, values_b).data
    expected = StateVector(3).apply_circuit(circuit, values_b).data
    assert np.allclose(got, expected, atol=1e-12)


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_hit_on_identical_content_different_name(self):
        cache = PlanCache(capacity=4)
        a = CircuitBuilder(2, name="one").h(0).cx(0, 1).build()
        b = CircuitBuilder(2, name="two").h(0).cx(0, 1).build()
        plan_a, hit_a = cache.lookup_or_compile(a)
        plan_b, hit_b = cache.lookup_or_compile(b)
        assert (hit_a, hit_b) == (False, True)
        assert plan_a is plan_b

    def test_distinct_width_and_optimize_are_distinct_entries(self):
        cache = PlanCache(capacity=8)
        circuit = CircuitBuilder(2).h(0).build()
        cache.lookup_or_compile(circuit, 2)
        _, hit_wider = cache.lookup_or_compile(circuit, 3)
        _, hit_unopt = cache.lookup_or_compile(circuit, 2, optimize=False)
        assert not hit_wider and not hit_unopt
        assert len(cache) == 3

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        circuits = [CircuitBuilder(1).rx(0, 0.1 * (i + 1)).build() for i in range(3)]
        for circuit in circuits:
            cache.lookup_or_compile(circuit)
        assert len(cache) == 2
        assert cache.stats().evictions == 1
        # circuit 0 was evicted; circuits 1 and 2 still hit
        _, hit = cache.lookup_or_compile(circuits[0])
        assert not hit
        _, hit = cache.lookup_or_compile(circuits[2])
        assert hit

    def test_mutating_a_circuit_invalidates_the_memoised_hash(self):
        cache = PlanCache(capacity=4)
        circuit = CircuitBuilder(2, name="grow").h(0).build()
        cache.lookup_or_compile(circuit)
        circuit.add(G.CX([0, 1]))
        _, hit = cache.lookup_or_compile(circuit)
        assert not hit

    def test_capacity_validation_and_reset(self):
        with pytest.raises(ExecutionError):
            PlanCache(0)
        cache = reset_plan_cache(capacity=7)
        assert get_plan_cache() is cache
        assert cache.capacity == 7


# ---------------------------------------------------------------------------
# Accelerator integration: identical counts, cached plans
# ---------------------------------------------------------------------------


class TestAcceleratorPlans:
    def _counts(self, circuit, width, options, shots=256, seed=99):
        set_config(seed=seed)
        buffer = AcceleratorBuffer(width)
        QppAccelerator(options).execute(buffer, circuit, shots=shots)
        return buffer.get_measurement_counts(), buffer.information

    @pytest.mark.parametrize(
        "name",
        ["bell", "ghz", "qft", "shor", "vqe"],
    )
    def test_plan_counts_identical_to_gate_by_gate(self, name):
        shor = period_finding_circuit(15, 2)
        vqe = deuteron_ansatz_circuit(0.297)
        suite = {
            "bell": (bell_circuit(2), 2),
            "ghz": (ghz_circuit(4), 4),
            "qft": (qft_circuit(5), 5),
            "shor": (shor, shor.n_qubits),
            "vqe": (vqe, max(vqe.n_qubits, 2)),
        }
        circuit, width = suite[name]
        planned, info = self._counts(circuit, width, {"use-plans": True})
        legacy, legacy_info = self._counts(circuit, width, {"use-plans": False})
        assert planned == legacy
        assert info["circuit-depth"] == legacy_info["circuit-depth"]
        assert info["circuit-gates"] == legacy_info["circuit-gates"]

    def test_repeat_executions_hit_the_plan_cache(self):
        reset_plan_cache()
        accelerator = QppAccelerator()
        circuit = bell_circuit(2)
        _, first = self._counts(circuit, 2, {})
        set_config(seed=1)
        buffer = AcceleratorBuffer(2)
        accelerator.execute(buffer, circuit, shots=16)
        assert first["plan-cached"] is False
        assert buffer.information["plan-cached"] is True

    def test_trajectory_counts_identical_with_resets(self):
        circuit = (
            CircuitBuilder(3).h(0).cx(0, 1).reset(1).ry(2, 0.8).measure(0).measure(1).measure(2).build()
        )
        planned, _ = self._counts(circuit, 3, {"use-plans": True, "threads": 2})
        legacy, _ = self._counts(circuit, 3, {"use-plans": False, "threads": 2})
        assert planned == legacy


# ---------------------------------------------------------------------------
# Engine pool reuse (satellite)
# ---------------------------------------------------------------------------


class TestEnginePoolReuse:
    def test_pool_is_reused_across_calls(self):
        engine = ParallelSimulationEngine(num_threads=3)
        state = StateVector(2)
        state.apply_circuit(bell_circuit(2).without_measurements())
        assert engine._pool is None  # lazily created
        engine.sample_parallel(state, 300, seed=1)
        pool = engine._pool
        assert pool is not None
        engine.sample_parallel(state, 300, seed=2)
        assert engine._pool is pool
        circuit = CircuitBuilder(1).h(0).reset(0).measure(0).build()
        engine.run_trajectories(1, circuit, shots=8, seed=3)
        assert engine._pool is pool
        engine.close()
        assert engine._pool is None

    def test_close_then_reuse_builds_a_fresh_pool(self):
        engine = ParallelSimulationEngine(num_threads=2)
        state = StateVector(1)
        state.apply(G.H([0]))
        engine.sample_parallel(state, 64, seed=0)
        engine.close()
        counts = engine.sample_parallel(state, 64, seed=0)
        assert sum(counts.values()) == 64
        engine.close()

    def test_context_manager_tears_the_pool_down(self):
        state = StateVector(1)
        state.apply(G.H([0]))
        with ParallelSimulationEngine(num_threads=2) as engine:
            engine.sample_parallel(state, 64, seed=0)
            assert engine._pool is not None
        assert engine._pool is None

    def test_pool_grows_when_more_workers_needed(self):
        engine = ParallelSimulationEngine(num_threads=2)
        state = StateVector(2)
        state.apply_circuit(bell_circuit(2).without_measurements())
        engine.sample_parallel(state, 100, seed=1)
        small = engine._pool
        engine.num_threads = 5
        engine.sample_parallel(state, 100, seed=1)
        assert engine._pool is not small
        assert engine._pool_size == 5
        engine.close()
