"""Tests for qcor_thread / qcor_async / TaskGroup and thread-safety helpers."""

import threading

import pytest

import repro
from repro.algorithms.bell import bell_kernel
from repro.core.qpu_manager import QPUManager
from repro.core.thread_safety import GlobalLockRegistry, synchronized
from repro.core.threading_api import TaskGroup, qcor_async, qcor_thread
from repro.parallel.thread_tools import join_all, std_async, std_thread


def bell_task(shots: int = 64) -> dict[str, int]:
    q = repro.qalloc(2)
    return bell_kernel(q, shots=shots)


class TestQcorThread:
    def test_thread_runs_kernel_with_auto_initialization(self):
        results = {}

        def target():
            results["counts"] = bell_task()

        thread = qcor_thread(target)
        thread.join()
        assert sum(results["counts"].values()) == 64

    def test_each_thread_gets_its_own_qpu_instance(self):
        seen = []
        barrier = threading.Barrier(3)

        def target():
            barrier.wait(timeout=10)
            seen.append(id(repro.get_qpu()))
            bell_task(16)

        threads = [qcor_thread(target) for _ in range(3)]
        join_all(threads)
        assert len(set(seen)) == 3

    def test_thread_registration_cleaned_up_after_target_returns(self):
        thread = qcor_thread(bell_task, 16)
        thread.join()
        assert QPUManager.get_instance().active_thread_count() == 0

    def test_listing4_two_threads_in_parallel(self):
        """The paper's Listing 4: two Bell kernels on two threads."""
        outputs = []

        def foo():
            outputs.append(bell_task(128))

        t0 = qcor_thread(foo)
        t1 = qcor_thread(foo)
        t0.join()
        t1.join()
        assert len(outputs) == 2
        for counts in outputs:
            assert sum(counts.values()) == 128
            assert set(counts) <= {"00", "11"}

    def test_accelerator_options_forwarded(self):
        captured = {}

        def target():
            captured["threads"] = repro.get_qpu().num_threads

        qcor_thread(target, options={"threads": 3}).join()
        assert captured["threads"] == 3


class TestQcorAsync:
    def test_listing5_async_launch(self):
        """The paper's Listing 5: async launch returning a future."""
        future = qcor_async(lambda: (bell_task(64), 1)[1])
        assert future.result(timeout=30) == 1

    def test_future_propagates_return_value(self):
        future = qcor_async(bell_task, 32)
        counts = future.result(timeout=30)
        assert sum(counts.values()) == 32

    def test_future_propagates_exceptions(self):
        def boom():
            raise ValueError("kernel failed")

        future = qcor_async(boom)
        with pytest.raises(ValueError):
            future.result(timeout=30)

    def test_many_concurrent_async_tasks(self):
        futures = [qcor_async(bell_task, 16) for _ in range(8)]
        results = [f.result(timeout=60) for f in futures]
        assert all(sum(r.values()) == 16 for r in results)


class TestTaskGroup:
    def test_launch_and_results_in_order(self):
        with TaskGroup() as group:
            group.launch(lambda x: x * 2, 1)
            group.launch(lambda x: x * 2, 2)
            group.launch(lambda x: x * 2, 3)
        assert group.results() == [2, 4, 6]

    def test_launch_all(self):
        group = TaskGroup()
        group.launch_all(lambda a, b: a + b, [(1, 2), (3, 4)])
        assert group.results() == [3, 7]

    def test_kernel_tasks_in_group(self):
        with TaskGroup(shots=32) as group:
            group.launch(bell_task, 32)
            group.launch(bell_task, 32)
        for counts in group.results():
            assert sum(counts.values()) == 32

    def test_futures_property(self):
        group = TaskGroup()
        group.launch(lambda: 1)
        assert len(group.futures) == 1


class TestStdAnalogues:
    def test_std_thread_starts_immediately(self):
        flag = threading.Event()
        thread = std_thread(flag.set)
        thread.join()
        assert flag.is_set()

    def test_std_async_returns_future(self):
        assert std_async(lambda: 41 + 1).result(timeout=10) == 42


class TestSynchronized:
    def test_synchronized_serialises_concurrent_calls(self):
        counter = {"value": 0}

        @synchronized("test-lock")
        def increment():
            current = counter["value"]
            # A tiny window that would lose updates without the lock.
            for _ in range(100):
                pass
            counter["value"] = current + 1

        threads = [threading.Thread(target=lambda: [increment() for _ in range(50)]) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["value"] == 400

    def test_named_locks_are_shared(self):
        assert GlobalLockRegistry.get("shared") is GlobalLockRegistry.get("shared")
        assert GlobalLockRegistry.get("a") is not GlobalLockRegistry.get("b")
        assert "shared" in GlobalLockRegistry.known_locks()

    def test_synchronized_preserves_return_value_and_name(self):
        @synchronized()
        def answer():
            """Docstring preserved."""
            return 42

        assert answer() == 42
        assert answer.__doc__ == "Docstring preserved."
