"""Tests for the Section VII extensions: async JIT compilation and workflows."""

import threading
import time

import pytest

import repro
from repro.algorithms.bell import bell_circuit
from repro.core.jit import AsyncKernelCompiler, compile_and_execute_async
from repro.core.workflow import Workflow, result_of
from repro.exceptions import CompilationError, ConfigurationError, ExecutionError
from repro.ir.builder import CircuitBuilder


def redundant_circuit():
    """A circuit the optimiser can visibly shrink."""
    return (
        CircuitBuilder(2)
        .h(0)
        .h(0)
        .h(0)
        .rz(1, 0.2)
        .rz(1, -0.2)
        .cx(0, 1)
        .measure_all()
        .build()
    )


class TestAsyncKernelCompiler:
    def test_compilation_removes_redundant_gates(self):
        with AsyncKernelCompiler() as compiler:
            result = compiler.compile(redundant_circuit(), effort=1)
        assert result.gate_reduction >= 3
        assert result.optimized.n_measurements == 2
        assert result.compile_seconds >= 0.0

    def test_higher_effort_applies_more_passes(self):
        with AsyncKernelCompiler() as compiler:
            low = compiler.compile(redundant_circuit(), effort=1)
            high = compiler.compile(redundant_circuit(), effort=3)
        assert len(high.passes_applied) > len(low.passes_applied)

    def test_async_handle_returns_immediately_then_completes(self):
        with AsyncKernelCompiler(synthetic_latency_per_effort=0.05) as compiler:
            handle = compiler.compile_async(redundant_circuit(), effort=2)
            # The handle exists before compilation finished (latency 0.1s total).
            assert handle.kernel_name == "circuit"
            result = handle.result(timeout=10)
            assert handle.done()
            assert result.effort == 2

    def test_execute_when_ready_runs_the_optimised_kernel(self):
        q = repro.qalloc(2)
        with AsyncKernelCompiler() as compiler:
            handle = compiler.compile_async(redundant_circuit(), effort=2)
            counts = handle.execute_when_ready(q, shots=128, timeout=30)
        assert sum(counts.values()) == 128
        assert set(counts) <= {"00", "11"}

    def test_compile_and_execute_async_helper(self):
        q = repro.qalloc(2)
        counts = compile_and_execute_async(redundant_circuit(), q, effort=2, shots=64)
        assert sum(counts.values()) == 64

    def test_main_thread_can_overlap_with_compilation(self):
        with AsyncKernelCompiler(synthetic_latency_per_effort=0.1) as compiler:
            handle = compiler.compile_async(redundant_circuit(), effort=2)
            overlapped = sum(i for i in range(1000))  # classical work
            assert overlapped == 499500
            assert handle.result(timeout=10).gate_reduction >= 3

    def test_validation(self):
        compiler = AsyncKernelCompiler()
        with pytest.raises(CompilationError):
            compiler.compile_async(redundant_circuit(), effort=0)
        with pytest.raises(CompilationError):
            compiler.compile_async("not a circuit")  # type: ignore[arg-type]
        with pytest.raises(CompilationError):
            AsyncKernelCompiler(max_workers=0)
        compiler.shutdown()

    def test_jobs_submitted_counter(self):
        with AsyncKernelCompiler() as compiler:
            compiler.compile_async(redundant_circuit())
            compiler.compile_async(redundant_circuit())
            assert compiler.jobs_submitted == 2


class TestWorkflow:
    def test_linear_pipeline_passes_results_downstream(self):
        workflow = Workflow("pipeline")
        workflow.add_task("generate", lambda: 21)
        workflow.add_task(
            "double", lambda x: x * 2, result_of("generate"), depends_on=["generate"]
        )
        outcome = workflow.run()
        assert outcome["double"] == 42
        assert outcome.completion_order.index("generate") < outcome.completion_order.index("double")

    def test_independent_branches_run_concurrently(self):
        active = {"count": 0, "max": 0}
        lock = threading.Lock()

        def slow_task():
            with lock:
                active["count"] += 1
                active["max"] = max(active["max"], active["count"])
            time.sleep(0.05)
            with lock:
                active["count"] -= 1
            return True

        workflow = Workflow()
        for i in range(3):
            workflow.add_task(f"branch{i}", slow_task)
        workflow.run()
        assert active["max"] >= 2

    def test_quantum_tasks_in_a_workflow(self):
        def run_bell_task(shots):
            q = repro.qalloc(2)
            from repro.algorithms.bell import bell_kernel

            return bell_kernel(q, shots=shots)

        def total_shots(counts_a, counts_b):
            return sum(counts_a.values()) + sum(counts_b.values())

        workflow = Workflow("quantum", resource_limits={"qpu": 2})
        workflow.add_task("bell_a", run_bell_task, 64, resource="qpu")
        workflow.add_task("bell_b", run_bell_task, 64, resource="qpu")
        workflow.add_task(
            "analyse",
            total_shots,
            result_of("bell_a"),
            result_of("bell_b"),
            depends_on=["bell_a", "bell_b"],
        )
        outcome = workflow.run()
        assert outcome["analyse"] == 128

    def test_resource_limit_serialises_qpu_tasks(self):
        active = {"count": 0, "max": 0}
        lock = threading.Lock()

        def qpu_task():
            with lock:
                active["count"] += 1
                active["max"] = max(active["max"], active["count"])
            time.sleep(0.03)
            with lock:
                active["count"] -= 1

        workflow = Workflow(resource_limits={"qpu": 1})
        for i in range(3):
            workflow.add_task(f"q{i}", qpu_task, resource="qpu")
        workflow.run()
        assert active["max"] == 1

    def test_cycle_detection(self):
        workflow = Workflow()
        workflow.add_task("a", lambda: 1, depends_on=["b"])
        workflow.add_task("b", lambda: 2, depends_on=["a"])
        with pytest.raises(ConfigurationError):
            workflow.run()

    def test_unknown_dependency_rejected(self):
        workflow = Workflow()
        workflow.add_task("a", lambda: 1, depends_on=["ghost"])
        with pytest.raises(ConfigurationError):
            workflow.validate()

    def test_reference_without_dependency_rejected(self):
        workflow = Workflow()
        workflow.add_task("a", lambda: 1)
        workflow.add_task("b", lambda x: x, result_of("a"))  # missing depends_on
        with pytest.raises(ConfigurationError):
            workflow.validate()

    def test_duplicate_task_name_rejected(self):
        workflow = Workflow()
        workflow.add_task("a", lambda: 1)
        with pytest.raises(ConfigurationError):
            workflow.add_task("a", lambda: 2)

    def test_failure_propagates_and_skips_dependents(self):
        calls = []

        def boom():
            raise RuntimeError("task failed")

        workflow = Workflow()
        workflow.add_task("bad", boom)
        workflow.add_task("after", lambda: calls.append("ran"), depends_on=["bad"])
        with pytest.raises(ExecutionError):
            workflow.run()
        assert calls == []

    def test_critical_path_length(self):
        workflow = Workflow()
        workflow.add_task("a", lambda: 1)
        workflow.add_task("b", lambda: 2, depends_on=["a"])
        workflow.add_task("c", lambda: 3, depends_on=["b"])
        workflow.add_task("d", lambda: 4)
        assert workflow.critical_path_length() == 3

    def test_durations_and_wall_time_recorded(self):
        workflow = Workflow()
        workflow.add_task("sleepy", lambda: time.sleep(0.02))
        outcome = workflow.run()
        assert outcome.durations["sleepy"] >= 0.02
        assert outcome.wall_time_seconds >= 0.02
