"""The complex64 precision tier and adaptive lane selection.

Two invariants anchor this file:

* **Lane choice never changes results.**  At complex128 every lane —
  serial, thread-chunked, shared-memory processes, shot-sharded — produces
  bit-identical fixed-seed histograms, and the adaptive selector only
  re-routes between those lanes, so turning it on is observationally
  invisible.
* **The single-precision tier is fidelity-bounded.**  Evolving the paper's
  algorithm suite in complex64 deviates from the complex128 amplitudes by
  at most 1e-4 (max absolute amplitude difference) — the documented bound
  — while occupying half the amplitude bytes end to end (states, shm
  segments, admission accounting).
"""

import os

import numpy as np
import pytest

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.algorithms.vqe import deuteron_ansatz_circuit
from repro.exceptions import ExecutionError
from repro.exec.backend import DensityBackend, LocalBackend
from repro.service.admission import estimate_job_bytes
from repro.service.keys import job_key
from repro.simulator.execution_plan import (
    DEFAULT_PRECISION,
    compile_plan,
    precision_dtype,
    resolve_precision,
)
from repro.simulator.statevector import StateVector

#: The paper's algorithm suite, as (name, circuit factory) pairs.
ALGORITHMS = [
    ("bell", lambda: bell_circuit()),
    ("ghz", lambda: ghz_circuit(5)),
    ("qft", lambda: qft_circuit(6)),
    ("shor", lambda: period_finding_circuit(15, 2)),
    ("vqe", lambda: deuteron_ansatz_circuit(0.59)),
]

#: Documented fidelity bound: max |amp64 - amp128| over the suite.
AMPLITUDE_BOUND = 1e-4


def final_state(circuit, precision, pool=None):
    plan = compile_plan(
        circuit, circuit.n_qubits, precision=precision, chunk_threshold=1
    )
    return plan.execute(plan.new_state(), pool=pool)


class TestPrecisionResolution:
    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("double", "double"),
            ("complex128", "double"),
            ("fp64", "double"),
            ("single", "single"),
            ("complex64", "single"),
            ("fp32", "single"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert resolve_precision(alias) == canonical

    def test_unknown_precision_rejected(self):
        with pytest.raises(ExecutionError):
            resolve_precision("half")

    def test_dtypes(self):
        assert precision_dtype("double") == np.dtype(np.complex128)
        assert precision_dtype("single") == np.dtype(np.complex64)
        assert DEFAULT_PRECISION == "double"


class TestStateVectorDtype:
    def test_default_is_complex128(self):
        assert StateVector(3).dtype == np.dtype(np.complex128)

    def test_single_precision_state(self):
        state = StateVector(3, dtype=np.complex64)
        assert state.dtype == np.dtype(np.complex64)
        state.run(bell_circuit(3))
        assert state.dtype == np.dtype(np.complex64)

    def test_non_complex_dtype_rejected(self):
        with pytest.raises(ExecutionError):
            StateVector(2, dtype=np.float64)


class TestFidelityBound:
    @pytest.mark.parametrize("name, factory", ALGORITHMS, ids=[a[0] for a in ALGORITHMS])
    def test_serial_amplitude_deviation_bounded(self, name, factory):
        circuit = factory()
        ref = final_state(circuit, "double")
        single = final_state(circuit, "single")
        assert single.dtype == np.dtype(np.complex64)
        deviation = np.max(np.abs(single.astype(np.complex128) - ref))
        assert deviation <= AMPLITUDE_BOUND, f"{name}: {deviation}"

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="POSIX shared memory required"
    )
    @pytest.mark.parametrize("name, factory", ALGORITHMS, ids=[a[0] for a in ALGORITHMS])
    def test_shm_lane_matches_serial_in_both_tiers(self, name, factory):
        from repro.exec.shm import SharedStatePool

        circuit = factory()
        pool = SharedStatePool(2, name=f"prec-{name}")
        try:
            for precision in ("double", "single"):
                serial = final_state(circuit, precision)
                shared = final_state(circuit, precision, pool=pool)
                # The shm lane replays the identical chunk decomposition, so
                # it is bitwise identical to serial *within* each tier.
                assert shared.dtype == serial.dtype
                assert np.array_equal(shared, serial), f"{name}/{precision}"
        finally:
            pool.close()

    @pytest.mark.parametrize("name, factory", ALGORITHMS, ids=[a[0] for a in ALGORITHMS])
    def test_sharded_lane_counts_agree_across_tiers(self, name, factory):
        from repro.exec.sharded import ShardedExecutor

        from repro.simulator.parallel_engine import ParallelSimulationEngine

        circuit = factory()
        # Shard seeds derive per worker, so the in-process reference must
        # split shots the same way: threads == shards.
        engine = ParallelSimulationEngine(num_threads=2)
        local = LocalBackend(engine=engine)
        executor = ShardedExecutor(2, name=f"prec-shard-{name}")
        try:
            for precision in ("double", "single"):
                expected = local.execute(
                    circuit, 128, n_qubits=circuit.n_qubits, seed=13,
                    precision=precision,
                ).counts
                sharded = executor.execute(
                    circuit, 128, n_qubits=circuit.n_qubits, seed=13,
                    precision=precision,
                ).counts
                assert sharded == expected, f"{name}/{precision}"
        finally:
            executor.close()
            engine.close()

    def test_half_resident_bytes_in_admission_accounting(self):
        for n in (4, 10, 20):
            double = estimate_job_bytes(n, 0)
            single = estimate_job_bytes(n, 0, precision="single")
            assert single * 2 == double
        # Shot-histogram bytes are precision-independent.
        assert estimate_job_bytes(4, 100, precision="single") == (
            estimate_job_bytes(4, 0, precision="single") + 800
        )


class TestAdaptiveLaneSelection:
    def test_adaptive_backend_is_bit_identical_at_complex128(self):
        fixed = LocalBackend(adaptive=False)
        adaptive = LocalBackend(adaptive=True)
        for name, factory in ALGORITHMS:
            circuit = factory()
            expected = fixed.execute(
                circuit, 256, n_qubits=circuit.n_qubits, seed=99
            ).counts
            got = adaptive.execute(
                circuit, 256, n_qubits=circuit.n_qubits, seed=99
            ).counts
            assert got == expected, name

    def test_adaptive_backend_fidelity_bounded_at_complex64(self):
        fixed = LocalBackend(adaptive=False)
        adaptive = LocalBackend(adaptive=True)
        for name, factory in ALGORITHMS:
            circuit = factory()
            expected = fixed.execute(
                circuit, 256, n_qubits=circuit.n_qubits, seed=99,
                precision="single",
            ).counts
            got = adaptive.execute(
                circuit, 256, n_qubits=circuit.n_qubits, seed=99,
                precision="single",
            ).counts
            # Lane choice reorders nothing: within one tier the replay is
            # bit-identical, so the fixed-seed histograms agree exactly.
            assert got == expected, name

    def test_adaptive_accepts_injected_cost_model(self):
        from repro.simulator.cost_model import SimulationCostModel

        backend = LocalBackend(adaptive=True, cost_model=SimulationCostModel())
        result = backend.execute(bell_circuit(), 64, n_qubits=2, seed=5)
        assert sum(result.counts.values()) == 64


class TestPrecisionIsSemantic:
    def test_precision_changes_the_job_key(self):
        circuit = bell_circuit()
        double = job_key(circuit, "qpp", {"precision": "double"})
        single = job_key(circuit, "qpp", {"precision": "single"})
        assert double != single

    def test_adaptive_lane_does_not_change_the_job_key(self):
        circuit = bell_circuit()
        plain = job_key(circuit, "qpp", {})
        adaptive = job_key(circuit, "qpp", {"adaptive-lane": True})
        assert plain == adaptive

    def test_plan_cache_keeps_tiers_apart(self):
        from repro.simulator.plan_cache import get_plan_cache

        circuit = ghz_circuit(4)
        cache = get_plan_cache()
        double = cache.get_or_compile(circuit, 4)
        single = cache.get_or_compile(circuit, 4, precision="single")
        assert double.dtype == np.dtype(np.complex128)
        assert single.dtype == np.dtype(np.complex64)
        assert double is not single

    def test_density_backend_accepts_single_precision(self):
        # PR-8 follow-up: the density lane now has a complex64 tier instead
        # of rejecting non-double precision outright.
        result = DensityBackend().execute(
            bell_circuit(), 32, n_qubits=2, precision="single"
        )
        assert result.extra["precision"] == "single"
        assert sum(result.counts.values()) == 32
        assert set(result.counts) <= {"00", "11"}

    def test_density_single_tier_matches_double_within_bound(self):
        from repro.simulator.density import DensityMatrix

        circuit = ghz_circuit(5)
        double = DensityMatrix(5).apply_circuit(circuit)
        single = DensityMatrix(5, dtype=np.complex64).apply_circuit(circuit)
        assert single.data.dtype == np.dtype(np.complex64)
        error = np.max(np.abs(single.probabilities() - double.probabilities()))
        assert error <= 1e-4

    def test_gate_by_gate_path_rejects_single_precision(self):
        from repro.exceptions import AcceleratorError
        from repro.runtime.buffer import AcceleratorBuffer
        from repro.runtime.qpp_accelerator import QppAccelerator

        qpu = QppAccelerator({"use-plans": False, "precision": "single"})
        with pytest.raises(AcceleratorError, match="complex128 only"):
            qpu.execute(AcceleratorBuffer(2), bell_circuit(), shots=16)
