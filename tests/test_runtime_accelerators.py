"""Tests for the accelerator backends (qpp, noisy, remote)."""

import pytest

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.config import set_config
from repro.exceptions import AcceleratorError
from repro.ir.builder import CircuitBuilder
from repro.ir.parameter import Parameter
from repro.runtime.buffer import AcceleratorBuffer
from repro.runtime.noisy_accelerator import NoisyAccelerator
from repro.runtime.qpp_accelerator import QppAccelerator
from repro.runtime.remote_accelerator import RemoteAccelerator
from repro.simulator.noise import NoiseModel, bit_flip_channel


class TestQppAccelerator:
    def test_bell_execution_fills_buffer(self):
        accelerator = QppAccelerator({"threads": 2})
        buffer = AcceleratorBuffer(2)
        accelerator.execute(buffer, bell_circuit(2), shots=512)
        counts = buffer.get_measurement_counts()
        assert sum(counts.values()) == 512
        assert set(counts) <= {"00", "11"}

    def test_information_recorded(self):
        accelerator = QppAccelerator()
        buffer = AcceleratorBuffer(2)
        accelerator.execute(buffer, bell_circuit(2), shots=16)
        assert buffer.information["backend"] == "qpp"
        assert buffer.information["shots"] == 16
        assert buffer.information["circuit-gates"] == 2

    def test_shots_default_from_config(self):
        set_config(shots=64)
        accelerator = QppAccelerator()
        buffer = AcceleratorBuffer(2)
        accelerator.execute(buffer, bell_circuit(2))
        assert buffer.total_shots() == 64

    def test_unmeasured_circuit_samples_all_qubits(self):
        accelerator = QppAccelerator()
        buffer = AcceleratorBuffer(2)
        circuit = CircuitBuilder(2).x(0).build()
        accelerator.execute(buffer, circuit, shots=10)
        assert buffer.get_measurement_counts() == {"10": 10}

    def test_parameterized_circuit_rejected(self):
        accelerator = QppAccelerator()
        circuit = CircuitBuilder(1).rx(0, Parameter("t")).build()
        with pytest.raises(AcceleratorError):
            accelerator.execute(AcceleratorBuffer(1), circuit, shots=1)

    def test_circuit_wider_than_buffer_rejected(self):
        accelerator = QppAccelerator()
        with pytest.raises(AcceleratorError):
            accelerator.execute(AcceleratorBuffer(1), bell_circuit(2), shots=1)

    def test_clone_is_independent_instance_with_same_options(self):
        accelerator = QppAccelerator({"threads": 3, "optimize": False})
        clone = accelerator.clone()
        assert clone is not accelerator
        assert clone.options["threads"] == 3
        assert clone.num_threads == 3

    def test_update_configuration_changes_threads(self):
        accelerator = QppAccelerator({"threads": 1})
        accelerator.update_configuration({"threads": 5})
        assert accelerator.num_threads == 5

    def test_reset_circuit_uses_trajectories(self):
        accelerator = QppAccelerator({"threads": 2})
        buffer = AcceleratorBuffer(1)
        circuit = CircuitBuilder(1).h(0).reset(0).measure(0).build()
        accelerator.execute(buffer, circuit, shots=32)
        assert buffer.get_measurement_counts() == {"0": 32}

    def test_execute_batch_accumulates(self):
        accelerator = QppAccelerator()
        buffer = AcceleratorBuffer(3)
        results = accelerator.execute_batch(
            buffer, [bell_circuit(2), ghz_circuit(3)], shots=8
        )
        assert len(results) == 2
        assert buffer.total_shots() == 16
        assert "batch" in buffer.information


class TestNoisyAccelerator:
    def test_noiseless_model_matches_ideal_support(self):
        accelerator = NoisyAccelerator()
        buffer = AcceleratorBuffer(2)
        accelerator.execute(buffer, bell_circuit(2), shots=128)
        assert set(buffer.get_measurement_counts()) <= {"00", "11"}
        assert buffer.information["purity"] == pytest.approx(1.0)

    def test_depolarizing_option_reduces_purity(self):
        accelerator = NoisyAccelerator({"depolarizing-probability": 0.05})
        buffer = AcceleratorBuffer(2)
        accelerator.execute(buffer, bell_circuit(2), shots=128)
        assert buffer.information["purity"] < 1.0

    def test_custom_noise_model_produces_error_outcomes(self):
        model = NoiseModel(default_single_qubit=bit_flip_channel(1.0))
        accelerator = NoisyAccelerator(noise_model=model)
        buffer = AcceleratorBuffer(1)
        circuit = CircuitBuilder(1).x(0).measure(0).build()
        accelerator.execute(buffer, circuit, shots=16)
        # X followed by a certain flip lands back in |0>.
        assert buffer.get_measurement_counts() == {"0": 16}

    def test_max_qubits_limit(self):
        accelerator = NoisyAccelerator()
        assert accelerator.max_qubits() == 13
        with pytest.raises(AcceleratorError):
            accelerator.execute(AcceleratorBuffer(14), bell_circuit(2), shots=1)

    def test_clone_preserves_noise_model(self):
        model = NoiseModel(default_single_qubit=bit_flip_channel(0.25))
        accelerator = NoisyAccelerator(noise_model=model)
        assert accelerator.clone().noise_model is model


class TestRemoteAccelerator:
    def test_synchronous_execution(self):
        accelerator = RemoteAccelerator({"latency-seconds": 0.0})
        buffer = AcceleratorBuffer(2)
        accelerator.execute(buffer, bell_circuit(2), shots=64)
        assert buffer.total_shots() == 64
        accelerator.shutdown()

    def test_submit_returns_job_handle(self):
        accelerator = RemoteAccelerator({"latency-seconds": 0.01})
        buffer = AcceleratorBuffer(2)
        job = accelerator.submit(buffer, bell_circuit(2), shots=32)
        result = job.result(timeout=10.0)
        assert job.done()
        assert result.total_shots() == 32
        accelerator.shutdown()

    def test_jobs_are_processed_in_fifo_order(self):
        accelerator = RemoteAccelerator({"latency-seconds": 0.0})
        buffers = [AcceleratorBuffer(2) for _ in range(3)]
        jobs = [accelerator.submit(b, bell_circuit(2), shots=4) for b in buffers]
        for index, job in enumerate(jobs):
            job.result(timeout=10.0)
            assert job.job_id == index + 1
        accelerator.shutdown()

    def test_is_remote_flag(self):
        accelerator = RemoteAccelerator({"latency-seconds": 0.0})
        assert accelerator.is_remote
        assert not QppAccelerator().is_remote
        accelerator.shutdown()
