"""Tests for the fluent CircuitBuilder and the instruction visitor."""

import numpy as np
import pytest

from repro.ir.builder import CircuitBuilder
from repro.ir.composite import CompositeInstruction
from repro.ir.visitor import InstructionVisitor


class TestCircuitBuilder:
    def test_every_single_qubit_method_adds_one_instruction(self):
        builder = CircuitBuilder(1)
        builder.i(0).h(0).x(0).y(0).z(0).s(0).sdg(0).t(0).tdg(0)
        builder.rx(0, 0.1).ry(0, 0.2).rz(0, 0.3).u3(0, 0.1, 0.2, 0.3)
        circuit = builder.build()
        assert circuit.n_instructions == 13

    def test_every_multi_qubit_method(self):
        circuit = (
            CircuitBuilder(3)
            .cx(0, 1)
            .cy(0, 1)
            .cz(0, 1)
            .ch(0, 1)
            .crz(0, 1, 0.2)
            .cphase(0, 1, 0.3)
            .swap(0, 1)
            .iswap(0, 1)
            .ccx(0, 1, 2)
            .cswap(0, 1, 2)
            .build()
        )
        assert circuit.n_instructions == 10
        assert circuit.n_qubits == 3

    def test_measure_all_measures_every_qubit(self):
        circuit = CircuitBuilder(3).h(0).cx(0, 1).cx(1, 2).measure_all().build()
        assert circuit.n_measurements == 3
        assert circuit.measured_qubits() == (0, 1, 2)

    def test_cnot_alias(self):
        circuit = CircuitBuilder(2).cnot(0, 1).build()
        assert circuit[0].name == "CX"

    def test_unitary_and_permutation_helpers(self):
        circuit = (
            CircuitBuilder(2)
            .unitary(np.eye(2), [0], name="ID2")
            .permutation([0, 1, 3, 2], [0, 1])
            .build()
        )
        assert circuit[0].name == "ID2"
        assert circuit[1].name == "PERM"

    def test_barrier_and_reset(self):
        circuit = CircuitBuilder(2).h(0).barrier(0, 1).reset(1).build()
        assert [i.name for i in circuit] == ["H", "BARRIER", "RESET"]

    def test_append_inlines_other_circuit(self):
        inner = CircuitBuilder(2).h(0).cx(0, 1).build()
        outer = CircuitBuilder(2).x(0).append(inner).build()
        assert outer.n_instructions == 3

    def test_builder_returns_same_circuit_object(self):
        builder = CircuitBuilder(1)
        first = builder.build()
        builder.h(0)
        assert first.n_instructions == 1


class TestVisitor:
    def test_dispatch_to_named_method(self):
        visits = []

        class Recorder(InstructionVisitor):
            def visit_h(self, inst):
                visits.append(("h", inst.qubits))
                return "H!"

            def visit_cx(self, inst):
                visits.append(("cx", inst.qubits))
                return "CX!"

        circuit = CircuitBuilder(2).h(0).cx(0, 1).build()
        results = Recorder().walk(circuit)
        assert results == ["H!", "CX!"]
        assert visits == [("h", (0,)), ("cx", (0, 1))]

    def test_default_fallback_for_unhandled_gates(self):
        class OnlyH(InstructionVisitor):
            def visit_h(self, inst):
                return "h"

            def visit_default(self, inst):
                return f"other:{inst.name}"

        circuit = CircuitBuilder(2).h(0).x(1).build()
        assert OnlyH().walk(circuit) == ["h", "other:X"]

    def test_visit_composite_on_nested_dispatch(self):
        class Counter(InstructionVisitor):
            def __init__(self):
                self.count = 0

            def visit_default(self, inst):
                self.count += 1

        counter = Counter()
        counter.visit(CircuitBuilder(2).h(0).cx(0, 1).measure(0).build())
        assert counter.count == 3

    def test_base_visitor_returns_none_by_default(self):
        circuit = CompositeInstruction("empty")
        assert InstructionVisitor().walk(circuit) == []
