"""Tests for the StateVector simulator."""

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.ir.builder import CircuitBuilder
from repro.ir.gates import H, X
from repro.ir.parameter import Parameter
from repro.operators.pauli import X as PX
from repro.operators.pauli import Z as PZ
from repro.simulator.statevector import StateVector


class TestConstruction:
    def test_initial_state_is_all_zeros(self):
        state = StateVector(3)
        assert state.amplitude(0) == pytest.approx(1.0)
        assert state.norm() == pytest.approx(1.0)

    def test_custom_data_must_be_normalised(self):
        with pytest.raises(ExecutionError):
            StateVector(1, data=[1.0, 1.0])

    def test_custom_data_accepted(self):
        state = StateVector(1, data=[1 / np.sqrt(2), 1j / np.sqrt(2)])
        assert state.probabilities() == pytest.approx([0.5, 0.5])

    def test_size_guards(self):
        with pytest.raises(ExecutionError):
            StateVector(0)
        with pytest.raises(ExecutionError):
            StateVector(27)

    def test_copy_is_independent(self):
        state = StateVector(1)
        clone = state.copy()
        clone.apply(X([0]))
        assert state.amplitude(0) == pytest.approx(1.0)
        assert clone.amplitude(1) == pytest.approx(1.0)


class TestEvolution:
    def test_bell_state_probabilities(self):
        state = StateVector(2)
        state.apply(H([0]))
        state.apply_circuit(CircuitBuilder(2).cx(0, 1).build())
        assert state.probabilities() == pytest.approx([0.5, 0, 0, 0.5])

    def test_apply_circuit_binds_parameters(self):
        circuit = CircuitBuilder(1).ry(0, Parameter("t")).build()
        state = StateVector(1)
        state.apply_circuit(circuit, {"t": np.pi})
        assert state.probabilities()[1] == pytest.approx(1.0)

    def test_apply_circuit_unbound_parameters_rejected(self):
        circuit = CircuitBuilder(1).ry(0, Parameter("t")).build()
        with pytest.raises(ExecutionError):
            StateVector(1).apply_circuit(circuit)

    def test_circuit_larger_than_state_rejected(self):
        with pytest.raises(ExecutionError):
            StateVector(1).apply_circuit(CircuitBuilder(3).h(2).build())

    def test_barrier_and_terminal_measure_are_noops_for_the_state(self):
        circuit = CircuitBuilder(1).h(0).barrier(0).measure(0).build()
        state = StateVector(1)
        state.apply_circuit(circuit)
        assert state.probabilities() == pytest.approx([0.5, 0.5])

    def test_amplitude_by_bitstring(self):
        state = StateVector(2)
        state.apply(X([1]))
        assert state.amplitude("01") == pytest.approx(1.0)  # qubit 0 = '0', qubit 1 = '1'

    def test_fidelity(self):
        a = StateVector(1)
        b = StateVector(1)
        b.apply(H([0]))
        assert a.fidelity(a) == pytest.approx(1.0)
        assert a.fidelity(b) == pytest.approx(0.5)


class TestMeasurement:
    def test_probability_of_one(self):
        state = StateVector(2)
        state.apply(X([1]))
        assert state.probability_of_one(1) == pytest.approx(1.0)
        assert state.probability_of_one(0) == pytest.approx(0.0)

    def test_measure_collapses_state(self):
        rng = np.random.default_rng(0)
        state = StateVector(2)
        state.apply_circuit(CircuitBuilder(2).h(0).cx(0, 1).build())
        outcome = state.measure(0, rng)
        # After measuring qubit 0 of a Bell state, qubit 1 must agree.
        assert state.probability_of_one(1) == pytest.approx(float(outcome))
        assert state.norm() == pytest.approx(1.0)

    def test_reset_qubit(self):
        state = StateVector(1)
        state.apply(X([0]))
        state.reset_qubit(0)
        assert state.amplitude(0) == pytest.approx(1.0)

    def test_sampling_statistics_of_bell_state(self):
        state = StateVector(2)
        state.apply_circuit(CircuitBuilder(2).h(0).cx(0, 1).build())
        counts = state.sample(4096, rng=np.random.default_rng(5))
        assert set(counts) == {"00", "11"}
        assert abs(counts["00"] - 2048) < 200

    def test_sampling_subset_of_qubits(self):
        state = StateVector(3)
        state.apply(X([2]))
        counts = state.sample(100, measured_qubits=[2], rng=np.random.default_rng(1))
        assert counts == {"1": 100}


class TestObservables:
    def test_expectation_z_plus_state(self):
        state = StateVector(1)
        state.apply(H([0]))
        assert state.expectation_z([0]) == pytest.approx(0.0, abs=1e-12)

    def test_expectation_z_excited_state(self):
        state = StateVector(2)
        state.apply(X([0]))
        assert state.expectation_z([0]) == pytest.approx(-1.0)
        assert state.expectation_z([1]) == pytest.approx(1.0)
        assert state.expectation_z([0, 1]) == pytest.approx(-1.0)

    def test_pauli_expectation_matches_matrix(self):
        circuit = CircuitBuilder(2).h(0).cx(0, 1).t(1).build()
        state = StateVector(2)
        state.apply_circuit(circuit)
        observable = 0.5 * PX(0) * PX(1) + 1.5 * PZ(0) - 0.3
        matrix = observable.to_matrix(2)
        expected = float(np.real(np.conj(state.data) @ matrix @ state.data))
        assert state.expectation(observable) == pytest.approx(expected, abs=1e-10)

    def test_expectation_rejects_non_pauli(self):
        with pytest.raises(ExecutionError):
            StateVector(1).expectation("Z0")  # type: ignore[arg-type]
