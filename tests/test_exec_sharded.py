"""Tests for process-sharded plan replay (:mod:`repro.exec.sharded`).

The load-bearing property is *deterministic reduction*: with a fixed seed,
sharded execution must be bit-identical to the in-process path (shot
sharding vs the engine's thread chunks; key affinity vs a single-threaded
run) across the whole algorithm suite.  On top of that: hash affinity,
warm worker plan caches, worker-death retry, and exception-safe teardown.
"""

import os
import signal

import numpy as np
import pytest

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.algorithms.vqe import deuteron_ansatz_circuit, deuteron_hamiltonian
from repro.config import set_config
from repro.exceptions import ExecutionError
from repro.exec import LocalBackend, ShardedExecutor, get_sharded_executor
from repro.ir import gates as G
from repro.ir.builder import CircuitBuilder
from repro.ir.composite import CompositeInstruction
from repro.service import QuantumJobService
from repro.simulator.parallel_engine import ParallelSimulationEngine
from repro.simulator.plan_cache import cached_content_hash


def algorithm_suite():
    return {
        "bell": bell_circuit(2),
        "ghz": ghz_circuit(5),
        "qft": qft_circuit(4),
        "shor": period_finding_circuit(7, 2),
        "vqe": deuteron_ansatz_circuit(0.59),
    }


def random_circuit(rng, n_qubits, length):
    """Random mix over every kernel class, with all qubits measured."""
    circuit = CompositeInstruction("random", n_qubits)
    for _ in range(length):
        choice = int(rng.integers(0, 6))
        qs = [int(q) for q in rng.permutation(n_qubits)]
        if choice == 0:
            circuit.add(G.H([qs[0]]))
        elif choice == 1:
            circuit.add(G.RY([qs[0]], [float(rng.uniform(-3, 3))]))
        elif choice == 2:
            circuit.add(G.CX([qs[0], qs[1]]))
        elif choice == 3:
            circuit.add(G.CPhase([qs[0], qs[1]], [float(rng.uniform(-3, 3))]))
        elif choice == 4:
            circuit.add(G.Swap([qs[0], qs[1]]))
        else:
            circuit.add(G.T([qs[0]]))
    for q in range(n_qubits):
        circuit.add(G.Measure([q]))
    return circuit


@pytest.fixture(scope="module")
def sharded2():
    """One two-shard executor shared by the equivalence tests (forking a
    fresh pair of worker processes per test would dominate the runtime)."""
    executor = ShardedExecutor(2, name="test-shard")
    yield executor
    executor.close()


class TestDeterministicEquivalence:
    @pytest.mark.parametrize("algorithm", ["bell", "ghz", "qft", "shor", "vqe"])
    def test_shot_sharding_matches_two_thread_engine(self, sharded2, algorithm):
        circuit = algorithm_suite()[algorithm]
        local = LocalBackend(engine=ParallelSimulationEngine(num_threads=2))
        reference = local.execute(circuit, 512, seed=1234)
        sharded = sharded2.execute(circuit, 512, seed=1234)
        assert dict(sharded.counts) == dict(reference.counts)
        assert sharded.shards == 2
        assert sharded.depth == reference.depth
        assert sharded.n_gates == reference.n_gates

    @pytest.mark.parametrize("algorithm", ["bell", "qft", "vqe"])
    def test_key_affinity_matches_single_thread_engine(self, sharded2, algorithm):
        circuit = algorithm_suite()[algorithm]
        local = LocalBackend(engine=ParallelSimulationEngine(num_threads=1))
        reference = local.execute(circuit, 256, seed=77)
        sharded = sharded2.execute_for_key("f00d" * 16, circuit, 256, seed=77)
        assert dict(sharded.counts) == dict(reference.counts)
        assert sharded.shards == 1

    def test_randomized_circuits_fixed_seed_equivalence(self, sharded2):
        rng = np.random.default_rng(2026)
        local = LocalBackend(engine=ParallelSimulationEngine(num_threads=2))
        for trial in range(4):
            circuit = random_circuit(rng, 5, 20)
            seed = int(rng.integers(0, 2**31))
            reference = local.execute(circuit, 128, seed=seed)
            sharded = sharded2.execute(circuit, 128, seed=seed)
            assert dict(sharded.counts) == dict(reference.counts), f"trial {trial}"

    def test_expectation_bit_identical(self, sharded2):
        ansatz = deuteron_ansatz_circuit(0.59).without_measurements()
        observable = deuteron_hamiltonian()
        local = LocalBackend().expectation(ansatz, observable)
        remote = sharded2.expectation(ansatz, observable)
        assert remote == local  # exact float equality, not approx

    def test_parametric_execution_across_shards(self, sharded2):
        ansatz = deuteron_ansatz_circuit()  # symbolic
        local = LocalBackend(engine=ParallelSimulationEngine(num_threads=2))
        reference = local.execute(ansatz, 256, seed=5, params=[0.59])
        sharded = sharded2.execute(ansatz, 256, seed=5, params=[0.59])
        assert dict(sharded.counts) == dict(reference.counts)
        with pytest.raises(ExecutionError, match="unbound"):
            sharded2.execute(ansatz, 16, seed=5)

    def test_trajectory_process_mode_matches_threads(self, sharded2):
        builder = CircuitBuilder(3, name="reset_traj")
        builder.h(0)
        builder.cx(0, 1)
        builder.reset(1)
        builder.h(2)
        for q in range(3):
            builder.measure(q)
        circuit = builder.build()
        engine = ParallelSimulationEngine(num_threads=2)
        threaded = engine.run_trajectories(3, circuit, 300, seed=8)
        sharded = engine.run_trajectories(3, circuit, 300, seed=8, processes=2)
        assert sharded == threaded
        engine.close()

    def test_trajectory_process_mode_rejects_prepare(self):
        engine = ParallelSimulationEngine(num_threads=1)
        with pytest.raises(ExecutionError, match="prepare"):
            engine.run_trajectories(
                2, bell_circuit(2), 8, seed=0, prepare=lambda: None, processes=2
            )

    def test_trajectory_process_mode_rejects_precompiled_plan(self):
        # Plans cannot cross process boundaries; silently recompiling could
        # change the kernel sequence (and RNG draws) vs the caller's plan.
        from repro.simulator.execution_plan import compile_plan

        circuit = bell_circuit(2)
        plan = compile_plan(circuit, 2)
        engine = ParallelSimulationEngine(num_threads=1)
        with pytest.raises(ExecutionError, match="plan"):
            engine.run_trajectories(2, circuit, 8, seed=0, plan=plan, processes=2)


class TestAffinityAndCaching:
    def test_shard_for_is_stable_and_in_range(self, sharded2):
        import hashlib

        keys = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(32)]
        shards = [sharded2.shard_for(key) for key in keys]
        assert shards == [sharded2.shard_for(key) for key in keys]
        assert set(shards) <= {0, 1} and len(set(shards)) == 2

    def test_worker_plan_cache_warms_up(self):
        executor = ShardedExecutor(1, name="warm")
        try:
            circuit = ghz_circuit(4)
            first = executor.execute(circuit, 64, seed=0)
            second = executor.execute(circuit, 64, seed=0)
            assert first.plan_cached is False
            assert second.plan_cached is True
            assert dict(first.counts) == dict(second.counts)
        finally:
            executor.close()

    def test_compile_warms_the_owning_shard(self, sharded2):
        circuit = qft_circuit(3, name="warm_compile")
        plan = sharded2.compile(circuit)
        assert plan.n_qubits == 3
        # Route with the same key compile() used: the circuit content hash.
        result = sharded2.execute_for_key(
            cached_content_hash(circuit), circuit, 32, seed=0
        )
        assert result.plan_cached is True

    def test_shared_executor_registry_reuses_instances(self):
        a = get_sharded_executor(2)
        b = get_sharded_executor(2)
        assert a is b
        assert get_sharded_executor(3) is not a


class TestFailureRecovery:
    def test_worker_killed_mid_stream_job_retried_not_lost(self):
        executor = ShardedExecutor(2, name="kill-test")
        try:
            pids = executor.shard_pids()
            os.kill(pids[0], signal.SIGKILL)
            circuit = ghz_circuit(4)
            result = executor.execute(circuit, 512, seed=9)
            assert result.total_counts() == 512
            assert executor.total_retries >= 1
            # The shard respawned with a fresh worker.
            new_pids = executor.shard_pids()
            assert new_pids[0] != pids[0]
            # Determinism survives the retry: a pristine executor agrees.
            fresh = ShardedExecutor(2, name="kill-ref")
            try:
                assert dict(fresh.execute(circuit, 512, seed=9).counts) == dict(
                    result.counts
                )
            finally:
                fresh.close()
        finally:
            executor.close()

    def test_retry_budget_exhaustion_raises_execution_error(self):
        executor = ShardedExecutor(1, name="budget", max_retries=0)
        try:
            os.kill(executor.shard_pids()[0], signal.SIGKILL)
            with pytest.raises(ExecutionError, match="failed"):
                executor.execute(bell_circuit(2), 32, seed=0)
        finally:
            executor.close()


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_further_work(self):
        executor = ShardedExecutor(2, name="lifecycle")
        executor.close()
        executor.close()
        assert executor.closed
        with pytest.raises(ExecutionError, match="closed"):
            executor.execute(bell_circuit(2), 8, seed=0)

    def test_context_manager_closes(self):
        with ShardedExecutor(1, name="ctx") as executor:
            assert executor.execute(bell_circuit(2), 8, seed=0).total_counts() == 8
        assert executor.closed

    def test_invalid_construction(self):
        with pytest.raises(ExecutionError):
            ShardedExecutor(0)
        with pytest.raises(ExecutionError):
            ShardedExecutor(1, max_retries=-1)
        with pytest.raises(ExecutionError):
            get_sharded_executor(0)

    def test_shard_index_out_of_range(self, sharded2):
        with pytest.raises(ExecutionError, match="out of range"):
            sharded2.execute(bell_circuit(2), 8, seed=0, shard=7)


class TestShardedBroker:
    def test_sharded_service_counts_match_in_process(self):
        set_config(seed=4321)
        circuit = qft_circuit(4)
        with QuantumJobService(
            backend="qpp", workers=1, enable_cache=False,
            backend_options={"threads": 1}, name="ref",
        ) as service:
            reference = service.submit(circuit, shots=512).counts()
        with QuantumJobService(
            backend="qpp", workers=2, processes=2, enable_cache=False,
            backend_options={"threads": 1}, name="sharded",
        ) as service:
            sharded = service.submit(circuit, shots=512).counts()
            metrics = service.metrics()
        assert sharded == reference
        assert metrics.sharded_executions == 1
        assert metrics.process_shards == 2

    def test_sharded_service_honours_optimize_option(self):
        set_config(seed=2718)
        circuit = qft_circuit(4)
        with QuantumJobService(
            backend="qpp", workers=1, enable_cache=False,
            backend_options={"threads": 1, "optimize": False}, name="ref-noopt",
        ) as service:
            reference = service.submit(circuit, shots=256).counts()
        with QuantumJobService(
            backend="qpp", workers=2, processes=2, enable_cache=False,
            backend_options={"threads": 1, "optimize": False}, name="shard-noopt",
        ) as service:
            sharded = service.submit(circuit, shots=256).counts()
        assert sharded == reference

    def test_use_plans_false_rejected_with_processes(self):
        # The gate-by-gate A/B path has no plan form: forking shard workers
        # that could never serve it would be pure waste, so the combination
        # is rejected up front.
        with pytest.raises(ExecutionError, match="use-plans"):
            QuantumJobService(
                backend="qpp", workers=1, processes=2,
                backend_options={"use-plans": False}, name="legacy-ab",
            )

    def test_sharded_plan_hits_counter(self):
        set_config(seed=6)
        circuit = ghz_circuit(4)
        with QuantumJobService(
            backend="qpp", workers=1, processes=2, enable_cache=False,
            # Pin the dense lane: auto-routing would send this Clifford
            # circuit to the tableau and never warm a shard plan cache.
            backend_options={"threads": 1, "method": "statevector"},
            name="plan-hits",
        ) as service:
            service.submit(circuit, shots=32).counts()  # compiles in the worker
            service.submit(circuit, shots=32).counts()  # replays the warm plan
            metrics = service.metrics()
            executor = service.sharded_executor
            assert sum(executor.worker_plan_cache_sizes()) >= 1
        assert metrics.sharded_executions == 2
        assert metrics.sharded_plan_hits == 1

    def test_sharded_service_requires_qpp(self):
        with pytest.raises(ExecutionError, match="qpp"):
            QuantumJobService(backend="noisy-qpp", processes=2)

    def test_shutdown_closes_shard_executor(self):
        service = QuantumJobService(
            backend="qpp", workers=1, processes=2, name="teardown"
        )
        executor = service.sharded_executor
        assert executor is not None and not executor.closed
        service.shutdown()
        assert executor.closed
        service.shutdown()  # idempotent

    def test_key_affinity_routes_repeat_jobs_to_one_shard(self):
        set_config(seed=1)
        circuit = ghz_circuit(4)
        with QuantumJobService(
            backend="qpp", workers=2, processes=2, enable_cache=False,
            backend_options={"threads": 1}, name="affinity",
        ) as service:
            executor = service.sharded_executor
            for _ in range(3):
                service.submit(circuit, shots=64).counts()
            # All three executions landed on the key's shard; its worker
            # compiled once, so no other shard saw the circuit at all.
            from repro.service.keys import job_key

            key = job_key(circuit, "qpp", service.backend_options)
            shard = executor.shard_for(key)
            assert 0 <= shard < 2


class TestShardHealthMetrics:
    def test_queue_depths_idle_and_sized_per_shard(self, sharded2):
        depths = sharded2.shard_queue_depths()
        assert len(depths) == 2
        assert depths == [0, 0]  # nothing in flight between tests

    def test_queue_depths_return_to_zero_after_work(self, sharded2):
        sharded2.execute(algorithm_suite()["bell"], 64, seed=3)
        assert sharded2.shard_queue_depths() == [0, 0]

    def test_broker_snapshot_reports_shard_health(self):
        set_config(seed=11)
        with QuantumJobService(
            backend="qpp", workers=2, processes=2, name="health-metrics"
        ) as service:
            handle = service.submit(bell_circuit(2), shots=128)
            handle.result(timeout=30)
            snapshot = service.metrics()
        assert snapshot.process_shards == 2
        assert snapshot.shard_respawns == 0
        assert len(snapshot.shard_queue_depths) == 2

    def test_respawns_surface_in_queue_depth_accounting(self):
        """A killed worker is respawned; the retry shows up in total_retries
        (the snapshot's shard_respawns source) and in-flight counters drain
        back to zero despite the mid-flight failure."""
        with ShardedExecutor(2, name="health-respawn") as executor:
            circuit = algorithm_suite()["bell"]
            executor.execute(circuit, 32, seed=5)
            pids = executor.shard_pids()
            os.kill(pids[0], signal.SIGKILL)
            executor.execute(circuit, 32, seed=5)
            assert executor.total_retries >= 1
            assert executor.shard_queue_depths() == [0, 0]


class TestColdKeyWorkStealing:
    def _depths(self, executor, values):
        with executor._lock:
            executor._inflight[:] = values

    def test_cold_key_steered_away_from_busy_affine_shard(self, sharded2):
        key = "00" * 32  # shard_for -> 0
        assert sharded2.shard_for(key) == 0
        self._depths(sharded2, [5, 0])
        try:
            result = sharded2.execute_for_key(
                key, algorithm_suite()["bell"], 64, seed=9
            )
        finally:
            self._depths(sharded2, [0, 0])
        assert sum(result.counts.values()) == 64
        with sharded2._lock:
            assert sharded2._key_owners[key] == 1
        assert sharded2.total_steals >= 1

    def test_stolen_key_stays_affine_to_new_owner(self, sharded2):
        """Future hits follow the owner recorded at steal time even when the
        load situation has reversed — that worker's plan cache is the warm
        one now."""
        key = "02" * 32
        assert sharded2.shard_for(key) == 0
        self._depths(sharded2, [5, 0])
        try:
            sharded2.execute_for_key(key, algorithm_suite()["bell"], 32, seed=9)
            # Owner 1 is now the busy one; the key must not migrate back.
            self._depths(sharded2, [0, 5])
            sharded2.execute_for_key(key, algorithm_suite()["bell"], 32, seed=9)
        finally:
            self._depths(sharded2, [0, 0])
        with sharded2._lock:
            assert sharded2._key_owners[key] == 1

    def test_idle_executor_routes_pure_hash_affinity(self, sharded2):
        """All depths equal -> ties prefer the affine shard, no steal."""
        key = "04" * 32
        assert sharded2.shard_for(key) == 0
        steals_before = sharded2.total_steals
        sharded2.execute_for_key(key, algorithm_suite()["bell"], 32, seed=9)
        with sharded2._lock:
            assert sharded2._key_owners[key] == 0
        assert sharded2.total_steals == steals_before

    def test_stealing_never_changes_fixed_seed_counts(self, sharded2):
        """The chunk seed derivation is shard-agnostic, so a stolen job
        reduces to the identical histogram."""
        circuit = algorithm_suite()["ghz"]
        key = "06" * 32
        assert sharded2.shard_for(key) == 0
        affine = sharded2.execute(circuit, 128, seed=31, shard=0)
        self._depths(sharded2, [5, 0])
        try:
            stolen = sharded2.execute_for_key(key, circuit, 128, seed=31)
        finally:
            self._depths(sharded2, [0, 0])
        assert dict(stolen.counts) == dict(affine.counts)

    def test_owner_map_is_bounded(self):
        with ShardedExecutor(2, name="owner-bound", warm_start=False) as executor:
            executor._key_owner_capacity = 8
            for index in range(20):
                executor._owner_for_key(f"{index:064x}")
            assert len(executor._key_owners) == 8


class TestStartMethods:
    @pytest.mark.parametrize("method", ["spawn", "forkserver"])
    def test_start_method_lifecycle_and_determinism(self, method):
        """The macOS/Windows start methods (ROADMAP follow-up): workers are
        preloaded via the pool initializer, and fixed-seed counts stay
        bit-identical to the fork-started executor."""
        circuit = algorithm_suite()["bell"]
        with ShardedExecutor(2, name=f"shard-{method}", mp_context=method) as executor:
            counts = executor.execute(circuit, 128, seed=17)
        with ShardedExecutor(2, name="shard-fork-ref") as reference:
            expected = reference.execute(circuit, 128, seed=17)
        assert dict(counts.counts) == dict(expected.counts)
