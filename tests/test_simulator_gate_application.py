"""Tests for the low-level gate-application kernels."""

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.ir.gates import CCX, CPhase, CRZ, CX, CZ, H, RZ, Swap, X
from repro.simulator.gate_application import (
    apply_controlled_single_qubit,
    apply_diagonal,
    apply_gate,
    apply_matrix,
    apply_single_qubit,
)
from repro.simulator.unitary import embed_operator


def random_state(n_qubits: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    state = rng.normal(size=1 << n_qubits) + 1j * rng.normal(size=1 << n_qubits)
    return state / np.linalg.norm(state)


class TestSingleQubit:
    @pytest.mark.parametrize("target", [0, 1, 2])
    def test_matches_dense_embedding(self, target):
        state = random_state(3)
        expected = embed_operator(H([0]).matrix(), [target], 3) @ state
        result = apply_single_qubit(state.copy(), H([0]).matrix(), target)
        assert np.allclose(result, expected)

    def test_in_place_modification(self):
        state = random_state(2)
        out = apply_single_qubit(state, X([0]).matrix(), 0)
        assert out is state

    def test_norm_preserved(self):
        state = random_state(4)
        apply_single_qubit(state, H([0]).matrix(), 2)
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_invalid_target_rejected(self):
        with pytest.raises(ExecutionError):
            apply_single_qubit(random_state(2), H([0]).matrix(), 5)

    def test_invalid_matrix_shape_rejected(self):
        with pytest.raises(ExecutionError):
            apply_single_qubit(random_state(2), np.eye(4), 0)


class TestControlledSingleQubit:
    @pytest.mark.parametrize("control,target", [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2)])
    def test_matches_dense_embedding(self, control, target):
        state = random_state(3, seed=control * 10 + target)
        expected = embed_operator(CX([0, 1]).matrix(), [control, target], 3) @ state
        result = apply_controlled_single_qubit(state.copy(), X([0]).matrix(), control, target)
        assert np.allclose(result, expected)

    def test_control_zero_subspace_untouched(self):
        state = np.zeros(4, dtype=complex)
        state[0] = 1.0  # |q1=0, q0=0>
        apply_controlled_single_qubit(state, X([0]).matrix(), 0, 1)
        assert state[0] == pytest.approx(1.0)

    def test_control_one_applies_payload(self):
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0  # q0 (control) = 1
        apply_controlled_single_qubit(state, X([0]).matrix(), 0, 1)
        assert state[3] == pytest.approx(1.0)

    def test_duplicate_control_target_rejected(self):
        with pytest.raises(ExecutionError):
            apply_controlled_single_qubit(random_state(2), X([0]).matrix(), 1, 1)


class TestDiagonalAndGeneral:
    def test_diagonal_matches_dense(self):
        state = random_state(3)
        diag = np.exp(1j * np.array([0.1, 0.2, 0.3, 0.4]))
        expected = embed_operator(np.diag(diag), [0, 2], 3) @ state
        result = apply_diagonal(state.copy(), diag, [0, 2])
        assert np.allclose(result, expected)

    def test_diagonal_wrong_length_rejected(self):
        with pytest.raises(ExecutionError):
            apply_diagonal(random_state(2), np.ones(3), [0])

    @pytest.mark.parametrize("targets", [(0, 1), (1, 0), (0, 2), (2, 1)])
    def test_general_two_qubit_matches_dense(self, targets):
        state = random_state(3, seed=7)
        matrix = Swap([0, 1]).matrix()
        expected = embed_operator(matrix, targets, 3) @ state
        result = apply_matrix(state.copy(), matrix, targets)
        assert np.allclose(result, expected)

    def test_general_three_qubit_matches_dense(self):
        state = random_state(4, seed=3)
        matrix = CCX([0, 1, 2]).matrix()
        targets = (3, 1, 0)
        expected = embed_operator(matrix, targets, 4) @ state
        result = apply_matrix(state.copy(), matrix, targets)
        assert np.allclose(result, expected)

    def test_matrix_shape_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            apply_matrix(random_state(2), np.eye(2), [0, 1])


class TestApplyGateDispatch:
    @pytest.mark.parametrize(
        "instruction",
        [
            H([1]),
            X([0]),
            CX([0, 2]),
            CZ([2, 1]),
            CRZ([1, 0], [0.4]),
            CPhase([0, 1], [0.7]),
            RZ([2], [1.3]),
            Swap([0, 2]),
            CCX([0, 1, 2]),
        ],
        ids=lambda g: f"{g.name}{g.qubits}",
    )
    def test_dispatch_agrees_with_dense_embedding(self, instruction):
        state = random_state(3, seed=11)
        expected = embed_operator(instruction.matrix(), instruction.qubits, 3) @ state
        result = apply_gate(state.copy(), instruction)
        assert np.allclose(result, expected)

    def test_measure_rejected(self):
        from repro.ir.gates import Measure

        with pytest.raises(ExecutionError):
            apply_gate(random_state(1), Measure([0]))

    def test_gate_sequence_matches_circuit_unitary(self):
        from repro.ir.builder import CircuitBuilder
        from repro.simulator.unitary import circuit_unitary

        circuit = CircuitBuilder(3).h(0).cx(0, 1).t(1).ccx(0, 1, 2).rz(2, 0.3).swap(0, 2).build()
        state = np.zeros(8, dtype=complex)
        state[0] = 1.0
        for instruction in circuit:
            state = apply_gate(state, instruction)
        expected = circuit_unitary(circuit)[:, 0]
        assert np.allclose(state, expected, atol=1e-10)


class TestApplyMatrixOutBuffer:
    def test_out_receives_result_and_is_returned(self):
        from repro.ir.gates import ISwap

        state = random_state(4, seed=21)
        expected = apply_matrix(state.copy(), ISwap([0, 1]).matrix(), (1, 3))
        out = np.empty_like(state)
        result = apply_matrix(state.copy(), ISwap([0, 1]).matrix(), (1, 3), out=out)
        assert result is out
        assert np.array_equal(result, expected)

    def test_out_may_alias_the_state(self):
        from repro.ir.gates import ISwap

        state = random_state(4, seed=22)
        expected = apply_matrix(state.copy(), ISwap([0, 1]).matrix(), (2, 0))
        buffer = state.copy()
        result = apply_matrix(buffer, ISwap([0, 1]).matrix(), (2, 0), out=buffer)
        assert result is buffer
        assert np.array_equal(result, expected)

    def test_mismatched_out_rejected(self):
        from repro.ir.gates import ISwap

        with pytest.raises(ExecutionError):
            apply_matrix(
                random_state(3),
                ISwap([0, 1]).matrix(),
                (0, 1),
                out=np.empty(4, dtype=complex),
            )

    def test_apply_gate_routes_out_to_dense_path_only(self):
        from repro.ir.gates import ISwap

        state = random_state(3, seed=23)
        scratch = np.empty_like(state)
        # Dense gate: result lands in the scratch buffer.
        dense = apply_gate(state.copy(), ISwap([0, 2]), out=scratch)
        assert dense is scratch
        # In-place kernel: scratch is ignored and the state itself returns.
        buffer = state.copy()
        assert apply_gate(buffer, H([1]), out=scratch) is buffer

    def test_statevector_recycles_dense_scratch(self):
        """After the first dense gate, the displaced amplitude buffer ping-
        pongs as scratch: repeated dense gates allocate nothing new."""
        from repro.ir.gates import ISwap
        from repro.simulator.statevector import StateVector

        state = StateVector(4)
        assert state._spare is None
        state.apply(ISwap([0, 1]))
        first_spare = state._spare
        assert first_spare is not None
        first_data = state.data
        state.apply(ISwap([1, 2]))
        # The buffers swapped roles instead of allocating a third array.
        assert state.data is first_spare
        assert state._spare is first_data
