"""Parameter-sweep jobs through the broker (`repro.service.sweep`).

The contracts under test:

* **Bit-identity** — every binding of a sweep produces, at a fixed seed,
  exactly the histogram an equivalent independent submission of the
  pre-bound circuit would (compile-once fan-out amortises cost, never
  changes results).
* **Streaming & lifecycle** — results land per binding (``as_completed``),
  single bindings cancel without touching the rest, and per-binding
  deadlines triage at dequeue.
* **Cache reuse** — bindings cache under member keys, so repeated sweeps
  (and differently-shaped sweeps over the same angles) serve from cache.
* **Gradients** — ``service.gradient`` implements the parameter-shift rule
  as one ``2·P``-binding expectation sweep, agreeing with central finite
  differences to 1e-6 and with the serial ObjectiveFunction path exactly.
* **Tenancy** — per-tenant deadline/retry defaults apply to submissions
  (and every binding of a sweep) that do not carry their own.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.config import get_config, set_config
from repro.exceptions import DeadlineExceeded, ExecutionError, JobCancelled
from repro.exec.retry import RetryPolicy
from repro.ir.builder import CircuitBuilder
from repro.ir.parameter import Parameter
from repro.operators import X, Z
from repro.runtime.service_registry import reset_registry
from repro.service import QuantumJobService, binding_key, sweep_key
from repro.core.objective import createObjectiveFunction


@pytest.fixture(autouse=True)
def sweep_runtime_state():
    """Fixed seed and thread count, plus a clean accelerator registry.

    Bit-identity only exists at a fixed seed, and the sampled histogram
    additionally depends on the shot-chunking width (one RNG stream per
    thread), so the thread count is pinned too — both the config field and
    the ``OMP_NUM_THREADS`` env var that freshly-spawned shard workers
    derive their own default from.
    """
    previous_env = os.environ.get("OMP_NUM_THREADS")
    previous_threads = get_config().omp_num_threads
    os.environ["OMP_NUM_THREADS"] = "2"
    set_config(seed=20260808, omp_num_threads=2)
    reset_registry()
    yield
    if previous_env is None:
        os.environ.pop("OMP_NUM_THREADS", None)
    else:
        os.environ["OMP_NUM_THREADS"] = previous_env
    set_config(seed=None, omp_num_threads=previous_threads)
    reset_registry()


def layered_ansatz(n_qubits: int = 4, layers: int = 2, measured: bool = True):
    """Hardware-efficient RY/CX ansatz with zero-padded parameter names
    (name order == gate order, so positional bindings are unambiguous)."""
    builder = CircuitBuilder(n_qubits, name=f"sweep_ansatz_{n_qubits}q")
    index = 0
    for _ in range(layers):
        for qubit in range(n_qubits):
            builder.ry(qubit, Parameter(f"t{index:03d}"))
            index += 1
        for qubit in range(n_qubits - 1):
            builder.cx(qubit, qubit + 1)
    if measured:
        for qubit in range(n_qubits):
            builder.measure(qubit)
    return builder.build(), index


def random_bindings(n_bindings: int, n_params: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    return [list(rng.uniform(-np.pi, np.pi, n_params)) for _ in range(n_bindings)]


class TestSweepCountsIdentity:
    def test_bindings_bit_identical_to_independent_submits(self):
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(6, n_params)
        with QuantumJobService(workers=2, name="sweep-id") as service:
            table = service.submit_sweep(circuit, bindings, shots=512).result(timeout=60)
        assert [row.index for row in table] == list(range(6))
        with QuantumJobService(
            workers=2, enable_cache=False, name="independent"
        ) as independent:
            for row in table:
                expected = independent.submit(
                    circuit.bind(row.values), shots=512
                ).result(timeout=60)
                assert dict(row.counts) == dict(expected.counts)
                assert sum(row.counts.values()) == 512

    def test_sharded_sweep_matches_independent_sharded_submits(self):
        """Same contract on the process-sharded lane: the comparison runs
        through the same service shape (shard workers size their sampling
        pools from the host topology, so *cross*-lane histograms are not
        the guarantee — sweep-vs-independent within a lane is)."""
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(4, n_params)
        with QuantumJobService(
            workers=2, processes=2, enable_cache=False, name="sweep-sharded"
        ) as service:
            table = service.submit_sweep(circuit, bindings, shots=256).result(
                timeout=120
            )
            for row in table:
                expected = service.submit(
                    circuit.bind(row.values), shots=256
                ).result(timeout=120)
                assert dict(row.counts) == dict(expected.counts)
            metrics = service.metrics()
        assert metrics.sharded_executions >= 1

    def test_unparameterized_circuit_is_rejected(self):
        circuit, _ = layered_ansatz()
        bound = circuit.bind([0.1] * 8)
        with QuantumJobService(workers=1, name="sweep-reject") as service:
            with pytest.raises(ExecutionError, match="use submit"):
                service.submit_sweep(bound, [[0.1] * 8])
            with pytest.raises(ExecutionError, match="at least one binding"):
                service.submit_sweep(circuit, [])

    def test_plain_submit_of_parametric_circuit_points_at_sweeps(self):
        circuit, _ = layered_ansatz()
        with QuantumJobService(workers=1, name="sweep-hint") as service:
            with pytest.raises(ExecutionError, match="submit_sweep"):
                service.submit(circuit, shots=64)


class TestSweepStreamingAndCache:
    def test_as_completed_streams_every_binding(self):
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(5, n_params)
        with QuantumJobService(workers=2, name="sweep-stream") as service:
            handle = service.submit_sweep(circuit, bindings, shots=128)
            seen = sorted(row.index for row in handle.as_completed(timeout=60))
        assert seen == list(range(5))

    def test_repeat_sweep_serves_from_binding_cache(self):
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(4, n_params)
        with QuantumJobService(workers=2, name="sweep-cache") as service:
            first = service.submit_sweep(circuit, bindings, shots=256).result(timeout=60)
            again = service.submit_sweep(circuit, bindings, shots=256).result(timeout=60)
            metrics = service.metrics()
        assert not any(row.from_cache for row in first)
        assert all(row.from_cache for row in again)
        for a, b in zip(first, again):
            assert dict(a.counts) == dict(b.counts)
        # The second sweep fanned out nothing and executed nothing new.
        assert metrics.executed_shots == 4 * 256
        assert metrics.cache_hits == 4

    def test_subset_sweep_reuses_member_results(self):
        """Per-binding member keys make results reusable across
        differently-shaped sweeps of the same ansatz."""
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(4, n_params)
        with QuantumJobService(workers=2, name="sweep-subset") as service:
            service.submit_sweep(circuit, bindings, shots=256).result(timeout=60)
            subset = service.submit_sweep(
                circuit, [bindings[2], bindings[0]], shots=256
            ).result(timeout=60)
        assert all(row.from_cache for row in subset)

    def test_smaller_shot_request_subsamples_cached_binding(self):
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(2, n_params)
        with QuantumJobService(workers=2, name="sweep-subsample") as service:
            service.submit_sweep(circuit, bindings, shots=1024).result(timeout=60)
            small = service.submit_sweep(circuit, bindings, shots=100).result(timeout=60)
        assert all(row.from_cache for row in small)
        assert all(sum(row.counts.values()) == 100 for row in small)

    def test_metrics_count_bindings_and_fanout(self):
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(3, n_params)
        with QuantumJobService(workers=2, name="sweep-metrics") as service:
            service.submit_sweep(circuit, bindings, shots=64).result(timeout=60)
            metrics = service.metrics()
        assert metrics.sweep_bindings == 3
        assert 1 <= metrics.sweep_fanout <= 3
        assert metrics.submitted == 3
        assert metrics.completed == 3


class TestSweepLifecycle:
    def test_cancel_one_binding_leaves_the_rest(self):
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(4, n_params)
        # Deferred start (``with`` would call start()) so the cancel lands
        # while every binding is still queued.
        service = QuantumJobService(workers=1, auto_start=False, name="sweep-cancel")
        try:
            handle = service.submit_sweep(circuit, bindings, shots=128)
            assert handle.cancel_binding(2)
            service.start()
            for index in (0, 1, 3):
                row = handle.binding_result(index, timeout=60)
                assert sum(row.counts.values()) == 128
            with pytest.raises(JobCancelled):
                handle.binding_result(2, timeout=60)
        finally:
            service.shutdown()

    def test_cancel_whole_sweep(self):
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(3, n_params)
        service = QuantumJobService(
            workers=1, auto_start=False, name="sweep-cancel-all"
        )
        try:
            handle = service.submit_sweep(circuit, bindings, shots=128)
            handle.cancel()
            service.start()
            for index in range(3):
                with pytest.raises(JobCancelled):
                    handle.binding_result(index, timeout=30)
            assert handle.done()
        finally:
            service.shutdown()

    def test_expired_deadline_triages_at_dequeue(self):
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(2, n_params)
        service = QuantumJobService(
            workers=1, auto_start=False, name="sweep-deadline"
        )
        try:
            handle = service.submit_sweep(
                circuit, bindings, shots=128, deadline=0.05
            )
            time.sleep(0.15)
            service.start()
            for index in range(2):
                with pytest.raises(DeadlineExceeded):
                    handle.binding_result(index, timeout=30)
        finally:
            service.shutdown()

    def test_invalid_deadline_rejected(self):
        circuit, n_params = layered_ansatz()
        with QuantumJobService(workers=1, name="sweep-bad-deadline") as service:
            with pytest.raises(ExecutionError, match="deadline"):
                service.submit_sweep(
                    circuit, random_bindings(1, n_params), deadline=-1.0
                )


class TestGradients:
    def observable(self):
        return 1.5 * Z(0) + 0.7 * Z(1) * Z(2) + 0.4 * X(0) * X(1)

    def test_parameter_shift_matches_central_differences(self):
        circuit, n_params = layered_ansatz(n_qubits=3, measured=False)
        theta = np.asarray(random_bindings(1, n_params, seed=5)[0])
        observable = self.observable()
        with QuantumJobService(workers=2, name="grad-fd") as service:
            grad = service.gradient(circuit, observable, theta)
            step = 1e-4
            fd = np.zeros(n_params)
            for i in range(n_params):
                plus, minus = theta.copy(), theta.copy()
                plus[i] += step
                minus[i] -= step
                e_plus, e_minus = service.expectations(
                    circuit, observable, [list(plus), list(minus)]
                )
                fd[i] = (e_plus - e_minus) / (2 * step)
        assert np.max(np.abs(grad - fd)) < 1e-6

    def test_objective_function_routes_through_the_service(self):
        circuit, n_params = layered_ansatz(n_qubits=3, measured=False)
        theta = random_bindings(1, n_params, seed=9)[0]
        observable = self.observable()
        serial = createObjectiveFunction(
            circuit, observable, 3, n_params, {"gradient-strategy": "parameter-shift"}
        )
        expected = serial.gradient(theta)
        with QuantumJobService(workers=2, name="grad-obj") as service:
            routed = createObjectiveFunction(
                circuit,
                observable,
                3,
                n_params,
                {"gradient-strategy": "parameter-shift", "service": service},
            )
            grad = routed.gradient(theta)
            assert routed.evaluation_count == 2 * n_params
        assert np.allclose(grad, expected, atol=1e-9)

    def test_expectation_sweep_matches_serial_objective(self):
        circuit, n_params = layered_ansatz(n_qubits=3, measured=False)
        bindings = random_bindings(3, n_params, seed=4)
        observable = self.observable()
        objective = createObjectiveFunction(circuit, observable, 3, n_params)
        with QuantumJobService(workers=2, name="exp-sweep") as service:
            energies = service.expectations(circuit, observable, bindings)
        for energy, binding in zip(energies, bindings):
            assert energy == pytest.approx(objective(binding), abs=1e-12)

    def test_gradient_of_zero_parameters_is_empty(self):
        circuit, n_params = layered_ansatz(n_qubits=2, measured=False)
        with QuantumJobService(workers=1, name="grad-empty") as service:
            assert service.gradient(circuit, Z(0), []).size == 0


class TestTenantDefaults:
    def test_tenant_deadline_default_applies_to_sweeps(self):
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(2, n_params)
        service = QuantumJobService(
            workers=1,
            auto_start=False,
            name="tenant-deadline",
            tenant_defaults={"acme": {"deadline": 0.05}},
        )
        try:
            tenant_handle = service.submit_sweep(
                circuit, bindings, shots=64, tenant="acme"
            )
            free_handle = service.submit_sweep(
                circuit, [bindings[0]], shots=64
            )
            time.sleep(0.15)
            service.start()
            for index in range(2):
                with pytest.raises(DeadlineExceeded):
                    tenant_handle.binding_result(index, timeout=30)
            # The untenanted sweep has no default deadline and completes.
            row = free_handle.binding_result(0, timeout=60)
            assert sum(row.counts.values()) == 64
        finally:
            service.shutdown()

    def test_explicit_deadline_beats_the_tenant_default(self):
        circuit, n_params = layered_ansatz()
        service = QuantumJobService(
            workers=1,
            auto_start=False,
            name="tenant-override",
            tenant_defaults={"acme": {"deadline": 0.01}},
        )
        try:
            handle = service.submit_sweep(
                circuit,
                random_bindings(1, n_params),
                shots=64,
                deadline=60.0,
                tenant="acme",
            )
            time.sleep(0.05)
            service.start()
            row = handle.binding_result(0, timeout=60)
            assert sum(row.counts.values()) == 64
        finally:
            service.shutdown()

    def test_tenant_retry_policy_rides_on_the_spec(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.01)
        circuit, n_params = layered_ansatz()
        service = QuantumJobService(
            workers=1,
            auto_start=False,
            name="tenant-retry",
            tenant_defaults={"acme": {"retry_policy": policy}},
        )
        try:
            service.submit_sweep(
                circuit, random_bindings(1, n_params), shots=64, tenant="acme"
            )
            batch = service._queue.get(timeout=0)
            assert batch is not None
            assert batch.spec.retry_policy is policy
            assert batch.spec.tenant == "acme"
        finally:
            service.shutdown()

    def test_tenant_defaults_apply_to_plain_submits_too(self):
        from repro.algorithms.bell import bell_circuit

        service = QuantumJobService(
            workers=1,
            auto_start=False,
            name="tenant-submit",
            tenant_defaults={"acme": {"deadline": 0.05}},
        )
        try:
            handle = service.submit(bell_circuit(2), shots=64, tenant="acme")
            time.sleep(0.15)
            service.start()
            with pytest.raises(DeadlineExceeded):
                handle.result(timeout=30)
        finally:
            service.shutdown()


class TestSweepKeys:
    def test_sweep_key_is_semantic_in_bindings(self):
        circuit, n_params = layered_ansatz()
        a = random_bindings(2, n_params, seed=1)
        b = random_bindings(2, n_params, seed=2)
        key_a = sweep_key(circuit, "qpp", None, a)
        assert key_a == sweep_key(circuit, "qpp", None, [list(x) for x in a])
        assert key_a != sweep_key(circuit, "qpp", None, b)
        assert key_a != sweep_key(circuit, "qpp", None, list(reversed(a)))

    def test_binding_key_independent_of_sweep_shape(self):
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(3, n_params, seed=1)
        alone = binding_key(circuit, "qpp", None, bindings[0])
        assert alone == binding_key(circuit, "qpp", None, tuple(bindings[0]))
        assert alone != binding_key(circuit, "qpp", None, bindings[1])

    def test_routing_options_stay_out_of_sweep_identity(self):
        circuit, n_params = layered_ansatz()
        bindings = random_bindings(2, n_params, seed=1)
        base = sweep_key(circuit, "qpp", None, bindings)
        routed = sweep_key(
            circuit,
            "qpp",
            {"shm-states": 4, "chunk-threshold": 1 << 12, "processes": 8},
            bindings,
        )
        assert base == routed
        semantic = sweep_key(circuit, "qpp", {"precision": "single"}, bindings)
        assert base != semantic
