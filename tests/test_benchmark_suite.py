"""Tests for the benchmark workloads, harness, figures and reporting."""

import pytest

from repro.benchmark.figures import (
    PAPER_FIGURE3,
    PAPER_FIGURE4,
    PAPER_FIGURE5_ONE_BY_ONE,
    PAPER_FIGURE5_PARALLEL,
    figure3,
    figure4,
    figure5,
)
from repro.benchmark.harness import BenchmarkHarness
from repro.benchmark.reporting import figure_to_csv, format_figure, format_table
from repro.benchmark.workloads import (
    bell_workload,
    figure3_workload,
    figure4_workload,
    figure5_workload,
    shor_workload,
)
from repro.exceptions import ConfigurationError


class TestWorkloads:
    def test_bell_workload_structure(self):
        workload = figure3_workload()
        assert workload.n_tasks == 2
        for task in workload.tasks:
            assert task.n_qubits == 2
            assert task.shots == 1024

    def test_shor_figure4_workload(self):
        workload = figure4_workload()
        assert workload.n_tasks == 2
        assert {t.name for t in workload.tasks} == {"shor_N15_a2", "shor_N15_a7"}
        assert all(t.n_qubits == 12 for t in workload.tasks)
        assert all(t.shots == 10 for t in workload.tasks)

    def test_figure5_workload_has_unique_names(self):
        workload = figure5_workload()
        names = [t.name for t in workload.tasks]
        assert len(set(names)) == 2
        assert all(t.n_qubits == 9 for t in workload.tasks)

    def test_circuits_are_buildable(self):
        for workload in (bell_workload(), shor_workload([(15, 2)])):
            for circuit in workload.circuits():
                assert circuit.n_gates > 0


class TestHarnessModeled:
    def test_variants_produce_positive_durations(self):
        harness = BenchmarkHarness(mode="modeled")
        workload = figure3_workload()
        one_by_one, parallel = harness.compare(workload, total_threads=12)
        assert one_by_one.duration > 0
        assert parallel.duration > 0
        assert one_by_one.variant == "one-by-one"
        assert parallel.variant == "parallel"
        assert parallel.threads_per_task == 6

    def test_parallel_beats_one_by_one_at_equal_threads(self):
        harness = BenchmarkHarness(mode="modeled")
        for workload in (figure3_workload(), figure4_workload()):
            one_by_one, parallel = harness.compare(workload, total_threads=24)
            assert parallel.duration < one_by_one.duration

    def test_modeled_results_are_deterministic(self):
        harness = BenchmarkHarness(mode="modeled")
        a = harness.run_variant(figure3_workload(), "parallel", 24).duration
        b = harness.run_variant(figure3_workload(), "parallel", 24).duration
        assert a == b

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkHarness(mode="modeled").run_variant(figure3_workload(), "magic", 4)

    def test_invalid_thread_count_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkHarness(mode="modeled").run_variant(figure3_workload(), "parallel", 0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkHarness(mode="warp").run_variant(figure3_workload(), "parallel", 2)


class TestHarnessReal:
    def test_real_mode_runs_the_bell_workload(self):
        harness = BenchmarkHarness(mode="real")
        result = harness.run_variant(bell_workload(shots=32), "parallel", 2)
        assert result.mode == "real"
        assert result.duration > 0
        assert set(result.details["per_task_seconds"]) == {"bell_0", "bell_1"}


class TestFigures:
    def test_figure3_reproduces_the_paper_shape(self):
        series = figure3(mode="modeled")
        measured = series.measured()
        assert measured["one-by-one 12 threads"] == pytest.approx(1.0)
        # 24 threads does not help a single kernel ...
        assert measured["one-by-one 24 threads"] == pytest.approx(1.0, abs=0.15)
        # ... but parallel execution does, and more threads help it further.
        assert measured["parallel 2 x (6 threads/task)"] > 1.1
        assert measured["parallel 2 x (12 threads/task)"] > measured["parallel 2 x (6 threads/task)"]
        assert series.paper() == PAPER_FIGURE3

    def test_figure4_reproduces_the_paper_shape(self):
        series = figure4(mode="modeled")
        measured = series.measured()
        assert measured["one-by-one 24 threads"] == pytest.approx(1.0, abs=0.15)
        assert measured["parallel 2 x (6 threads/task)"] > 1.0
        assert measured["parallel 2 x (12 threads/task)"] > 1.0
        assert series.paper() == PAPER_FIGURE4

    def test_figure5_reproduces_the_paper_shape(self):
        series = figure5(mode="modeled")
        measured = series.measured()
        one_by_one = [
            measured[f"one-by-one {t} threads"] for t in PAPER_FIGURE5_ONE_BY_ONE
        ]
        parallel = [
            measured[f"parallel 2 x ({t // 2} threads/task)"] for t in PAPER_FIGURE5_PARALLEL
        ]
        # Strong scaling is monotone non-decreasing up to the physical cores.
        assert one_by_one[0] < one_by_one[1] < one_by_one[2] < one_by_one[3]
        # 24 threads is roughly flat vs 12 threads.
        assert one_by_one[4] == pytest.approx(one_by_one[3], rel=0.15)
        # Parallel beats one-by-one at every total thread count.
        for o, p in zip(one_by_one, parallel):
            assert p > o
        # Within ~25% of the paper's reported speed-ups everywhere.
        assert series.max_relative_error() < 0.25

    def test_figure_point_lookup_and_errors(self):
        series = figure3(mode="modeled")
        point = series.point("one-by-one 24 threads")
        assert point.paper_speedup == pytest.approx(0.96)
        with pytest.raises(ConfigurationError):
            series.point("nonexistent configuration")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bbb" in lines[0]

    def test_format_figure_contains_paper_and_measured(self):
        series = figure3(mode="modeled")
        text = format_figure(series)
        assert "Figure 3" in text
        assert "paper speed-up" in text
        assert "one-by-one 24 threads" in text

    def test_figure_to_csv(self):
        series = figure3(mode="modeled")
        csv = figure_to_csv(series)
        assert csv.startswith("configuration,paper_speedup,measured_speedup,duration")
        assert len(csv.strip().splitlines()) == 1 + len(series.points)

    def test_benchmark_cli_main(self, capsys):
        from repro.benchmark.__main__ import main

        assert main(["fig3"]) == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output
