"""Tests for the service registry — the heart of the paper's data-race analysis."""

import pytest

from repro.config import set_config
from repro.core.race_detector import get_race_detector
from repro.exceptions import ServiceNotFoundError
from repro.runtime.accelerator import Accelerator, Cloneable
from repro.runtime.qpp_accelerator import QppAccelerator
from repro.runtime.service_registry import (
    ServiceRegistry,
    get_accelerator,
    get_registry,
    get_service,
    register_service,
    reset_registry,
)


class _SharedService:
    """A non-cloneable service, like the original XACC accelerator."""


class _CloneableService(Cloneable):
    """A cloneable service (the paper's fix)."""


class TestRegistration:
    def test_builtin_accelerators_registered(self):
        registry = ServiceRegistry()
        assert set(registry.registered_names("accelerator")) >= {"qpp", "noisy-qpp", "remote-qpp"}

    def test_register_and_lookup_custom_service(self):
        registry = ServiceRegistry()
        registry.register("optimizer", "mine", _SharedService)
        assert registry.has_service("optimizer", "mine")
        assert isinstance(registry.get_service("optimizer", "mine"), _SharedService)

    def test_lookup_is_case_insensitive(self):
        registry = ServiceRegistry()
        assert isinstance(registry.get_service("Accelerator", "QPP"), QppAccelerator)

    def test_unknown_service_raises_with_known_names(self):
        registry = ServiceRegistry()
        with pytest.raises(ServiceNotFoundError) as excinfo:
            registry.get_service("accelerator", "nope")
        assert "qpp" in str(excinfo.value)

    def test_module_level_registry_helpers(self):
        reset_registry()
        register_service("widget", "w", _SharedService)
        assert isinstance(get_service("widget", "w"), _SharedService)
        assert get_registry().has_service("widget", "w")


class TestCloneableSemantics:
    def test_cloneable_services_get_fresh_instances_in_thread_safe_mode(self):
        registry = ServiceRegistry()
        registry.register("thing", "c", _CloneableService)
        first = registry.get_service("thing", "c")
        second = registry.get_service("thing", "c")
        assert first is not second

    def test_non_cloneable_services_are_shared_singletons(self):
        registry = ServiceRegistry()
        registry.register("thing", "s", _SharedService)
        assert registry.get_service("thing", "s") is registry.get_service("thing", "s")

    def test_legacy_mode_shares_even_cloneable_services(self):
        set_config(thread_safe=False)
        registry = ServiceRegistry()
        registry.register("thing", "c", _CloneableService)
        assert registry.get_service("thing", "c") is registry.get_service("thing", "c")

    def test_legacy_mode_lookups_are_recorded_as_unsafe(self):
        set_config(thread_safe=False)
        registry = ServiceRegistry()
        registry.get_service("accelerator", "qpp")
        assert get_race_detector().unsafe_entries.get("service_registry", 0) >= 1

    def test_thread_safe_lookups_not_recorded(self):
        registry = ServiceRegistry()
        registry.get_service("accelerator", "qpp")
        assert get_race_detector().unsafe_entries.get("service_registry", 0) == 0


class TestGetAccelerator:
    def test_default_accelerator_from_config(self):
        accelerator = get_accelerator()
        assert isinstance(accelerator, QppAccelerator)
        assert accelerator.is_initialized

    def test_options_forwarded(self):
        accelerator = get_accelerator("qpp", {"threads": 3})
        assert accelerator.num_threads == 3

    def test_each_call_returns_new_instance_for_cloneable_backend(self):
        assert get_accelerator("qpp") is not get_accelerator("qpp")

    def test_non_accelerator_service_rejected(self):
        registry = get_registry()
        registry.register("accelerator", "fake", _SharedService)
        with pytest.raises(ServiceNotFoundError):
            get_accelerator("fake")

    def test_accelerator_subclass_check(self):
        assert isinstance(get_accelerator("noisy-qpp"), Accelerator)
