"""Shared pytest fixtures.

Every test runs against a clean slate of the process-wide runtime state
(configuration, service registry, QPUManager, race detector, allocation
map): the paper's whole subject is shared mutable runtime state, so leaking
it between tests would make failures order-dependent.
"""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the suite from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

def pytest_configure(config):
    """Register the ``slow`` marker used to keep tier-1 runs fast."""
    config.addinivalue_line(
        "markers",
        "slow: long-running integration/benchmark test; deselected by default, "
        "run with `-m slow` (or `-m 'slow or not slow'` for everything)",
    )


def pytest_collection_modifyitems(config, items):
    """Skip ``slow``-marked tests unless the user opted in via ``-m``.

    Tier-1 (`pytest -x -q`) must finish fast; the full suite stays reachable
    with ``-m slow`` without anyone having to remember a custom flag.
    """
    markexpr = config.getoption("markexpr", default="") or ""
    if "slow" in markexpr:
        return
    skip_slow = pytest.mark.skip(reason="slow test: run with -m slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


from repro.config import reset_config, set_config  # noqa: E402
from repro.core.qpu_manager import QPUManager  # noqa: E402
from repro.core.race_detector import reset_race_detector  # noqa: E402
from repro.obs import disable_profiler, disable_tracing, get_tracer  # noqa: E402
from repro.runtime.allocation import clear_allocated_buffers  # noqa: E402
from repro.runtime.service_registry import reset_registry  # noqa: E402


def _reset_observability():
    """Tracing and profiling are process-global switches; never leak them."""
    disable_tracing()
    disable_profiler()
    get_tracer().clear()


@pytest.fixture(autouse=True)
def clean_runtime_state():
    """Reset every piece of process-global state before and after each test."""
    reset_config()
    set_config(seed=1234)
    reset_registry()
    QPUManager.reset_instance()
    reset_race_detector()
    clear_allocated_buffers()
    _reset_observability()
    yield
    reset_config()
    reset_registry()
    QPUManager.reset_instance()
    reset_race_detector()
    clear_allocated_buffers()
    _reset_observability()


@pytest.fixture
def small_shots():
    """Configure a small shot count for tests that only need rough statistics."""
    set_config(shots=128)
    return 128
