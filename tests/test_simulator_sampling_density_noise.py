"""Tests for sampling, the density-matrix simulator and noise channels."""

import numpy as np
import pytest

from repro.exceptions import ExecutionError, NoiseModelError
from repro.ir.builder import CircuitBuilder
from repro.ir.gates import CX, H, X
from repro.simulator.density import DensityMatrix
from repro.simulator.noise import (
    KrausChannel,
    NoiseModel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_flip_channel,
)
from repro.simulator.sampling import (
    format_bitstring,
    marginal_probabilities,
    sample_counts,
)
from repro.simulator.statevector import StateVector


class TestSampling:
    def test_format_bitstring(self):
        assert format_bitstring(0b101, (0, 1, 2)) == "101"
        assert format_bitstring(0b101, (2, 0)) == "11"

    def test_marginals_sum_to_one(self):
        probs = np.full(8, 1 / 8)
        marginals = marginal_probabilities(probs, (0, 2), 3)
        assert sum(marginals.values()) == pytest.approx(1.0)
        assert set(marginals) == {"00", "01", "10", "11"}

    def test_marginals_of_correlated_state(self):
        probs = np.zeros(4)
        probs[0] = probs[3] = 0.5
        marginals = marginal_probabilities(probs, (0,), 2)
        assert marginals == pytest.approx({"0": 0.5, "1": 0.5})

    def test_sample_counts_total_matches_shots(self):
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        counts = sample_counts(probs, 1000, (0, 1), 2, np.random.default_rng(0))
        assert sum(counts.values()) == 1000

    def test_deterministic_distribution(self):
        probs = np.zeros(4)
        probs[2] = 1.0  # |q1=1, q0=0>
        counts = sample_counts(probs, 50, (0, 1), 2, np.random.default_rng(0))
        assert counts == {"01": 50}

    def test_zero_shots_rejected(self):
        with pytest.raises(ExecutionError):
            sample_counts(np.array([1.0, 0.0]), 0, (0,), 1)

    def test_no_measured_qubits_rejected(self):
        with pytest.raises(ExecutionError):
            sample_counts(np.array([1.0, 0.0]), 10, (), 1)

    def test_reproducible_with_seeded_rng(self):
        probs = np.full(4, 0.25)
        a = sample_counts(probs, 100, (0, 1), 2, np.random.default_rng(42))
        b = sample_counts(probs, 100, (0, 1), 2, np.random.default_rng(42))
        assert a == b


class TestDensityMatrix:
    def test_initial_state_pure(self):
        rho = DensityMatrix(2)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)

    def test_unitary_evolution_matches_statevector(self):
        circuit = CircuitBuilder(2).h(0).cx(0, 1).t(1).build()
        rho = DensityMatrix(2)
        rho.apply_circuit(circuit)
        sv = StateVector(2)
        sv.apply_circuit(circuit)
        assert np.allclose(rho.probabilities(), sv.probabilities(), atol=1e-10)

    def test_from_statevector(self):
        sv = StateVector(1)
        sv.apply(H([0]))
        rho = DensityMatrix.from_statevector(sv)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.probabilities() == pytest.approx([0.5, 0.5])

    def test_sampling(self):
        rho = DensityMatrix(2)
        rho.apply(H([0]))
        rho.apply(CX([0, 1]))
        counts = rho.sample(500, rng=np.random.default_rng(3))
        assert set(counts) == {"00", "11"}

    def test_expectation(self):
        from repro.operators.pauli import Z

        rho = DensityMatrix(1)
        rho.apply(X([0]))
        assert rho.expectation(Z(0)) == pytest.approx(-1.0)

    def test_size_guard(self):
        with pytest.raises(ExecutionError):
            DensityMatrix(14)

    def test_invalid_data_rejected(self):
        with pytest.raises(ExecutionError):
            DensityMatrix(1, data=np.array([[1.0, 0.0], [0.0, 1.0]]))  # trace 2


class TestNoiseChannels:
    @pytest.mark.parametrize(
        "factory,p",
        [
            (depolarizing_channel, 0.1),
            (bit_flip_channel, 0.2),
            (phase_flip_channel, 0.3),
            (amplitude_damping_channel, 0.25),
        ],
    )
    def test_channels_are_trace_preserving(self, factory, p):
        channel = factory(p)
        total = sum(op.conj().T @ op for op in channel.kraus_operators)
        assert np.allclose(total, np.eye(2), atol=1e-10)

    def test_invalid_probability_rejected(self):
        with pytest.raises(NoiseModelError):
            depolarizing_channel(1.5)
        with pytest.raises(NoiseModelError):
            bit_flip_channel(-0.1)

    def test_non_cptp_kraus_rejected(self):
        with pytest.raises(NoiseModelError):
            KrausChannel("bad", (np.eye(2) * 2,))

    def test_bit_flip_flips_population(self):
        rho = DensityMatrix(1)
        rho.apply_channel(bit_flip_channel(0.3), [0])
        assert rho.probabilities() == pytest.approx([0.7, 0.3])

    def test_depolarizing_reduces_purity(self):
        rho = DensityMatrix(1)
        rho.apply(H([0]))
        before = rho.purity()
        rho.apply_channel(depolarizing_channel(0.2), [0])
        assert rho.purity() < before

    def test_amplitude_damping_decays_excited_state(self):
        rho = DensityMatrix(1)
        rho.apply(X([0]))
        rho.apply_channel(amplitude_damping_channel(0.4), [0])
        assert rho.probabilities() == pytest.approx([0.4, 0.6])


class TestNoiseModel:
    def test_default_channel_applied_per_gate(self):
        model = NoiseModel(default_single_qubit=bit_flip_channel(0.5))
        circuit = CircuitBuilder(1).x(0).build()
        rho = DensityMatrix(1)
        rho.apply_circuit(circuit, noise_model=model)
        # X then 50% bit flip -> 50/50.
        assert rho.probabilities() == pytest.approx([0.5, 0.5])

    def test_per_gate_channel_overrides_default(self):
        model = NoiseModel(default_single_qubit=bit_flip_channel(0.0))
        model.add_channel("X", bit_flip_channel(1.0))
        circuit = CircuitBuilder(1).x(0).build()
        rho = DensityMatrix(1)
        rho.apply_circuit(circuit, noise_model=model)
        # X then a certain flip back -> ground state.
        assert rho.probabilities() == pytest.approx([1.0, 0.0])

    def test_single_qubit_channel_broadcast_over_two_qubit_gate(self):
        model = NoiseModel(default_two_qubit=depolarizing_channel(0.1))
        bound = model.channels_for(CX([0, 1]))
        assert len(bound) == 2
        assert {b.qubits for b in bound} == {(0,), (1,)}

    def test_trivial_model(self):
        assert NoiseModel().is_trivial
        assert not NoiseModel(default_single_qubit=bit_flip_channel(0.1)).is_trivial
