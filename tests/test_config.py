"""Tests for the global configuration."""

import os

import pytest

from repro.config import (
    Configuration,
    configure,
    default_num_threads,
    get_config,
    reset_config,
    set_config,
)
from repro.exceptions import ConfigurationError


class TestConfiguration:
    def test_defaults(self):
        config = Configuration()
        assert config.default_accelerator == "qpp"
        assert config.shots == 1024
        assert config.thread_safe is True
        assert config.execution_mode == "real"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Configuration(shots=0).validate()
        with pytest.raises(ConfigurationError):
            Configuration(omp_num_threads=0).validate()
        with pytest.raises(ConfigurationError):
            Configuration(execution_mode="quantum").validate()
        with pytest.raises(ConfigurationError):
            Configuration(seed=-1).validate()

    def test_replace_returns_validated_copy(self):
        config = Configuration().replace(shots=10)
        assert config.shots == 10
        with pytest.raises(ConfigurationError):
            Configuration().replace(shots=-1)


class TestGlobalConfig:
    def test_set_config_updates_global(self):
        set_config(shots=77)
        assert get_config().shots == 77

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            set_config(bogus=1)
        with pytest.raises(ConfigurationError):
            with configure(bogus=1):
                pass

    def test_reset_restores_defaults(self):
        set_config(shots=5)
        reset_config()
        assert get_config().shots == 1024

    def test_configure_context_manager_restores(self):
        set_config(shots=200)
        with configure(shots=8, execution_mode="modeled") as config:
            assert config.shots == 8
            assert get_config().execution_mode == "modeled"
        assert get_config().shots == 200
        assert get_config().execution_mode == "real"

    def test_configure_restores_on_exception(self):
        set_config(shots=200)
        with pytest.raises(RuntimeError):
            with configure(shots=8):
                raise RuntimeError("boom")
        assert get_config().shots == 200

    def test_default_num_threads_honours_env(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "9")
        assert default_num_threads() == 9
        monkeypatch.setenv("OMP_NUM_THREADS", "not-a-number")
        assert default_num_threads() == (os.cpu_count() or 1)
        monkeypatch.delenv("OMP_NUM_THREADS")
        assert default_num_threads() == (os.cpu_count() or 1)
