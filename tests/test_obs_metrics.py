"""Tests for latency histograms, backend-label validation, and exporters.

Covers :mod:`repro.obs.metrics` (bucket placement, quantile interpolation,
merging), the satellite fix making ``ServiceMetrics.observe_latency``
validate its backend label the way ``increment`` always has, and the
Prometheus / JSON / Chrome-trace renderers in :mod:`repro.obs.export`.
"""

import json

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    LatencyHistogram,
    Tracer,
    chrome_trace_events,
    to_chrome_trace,
    to_json,
    to_prometheus,
)
from repro.service.metrics import (
    BackendLatency,
    ServiceMetrics,
    normalize_backend_label,
)


class TestLatencyHistogram:
    def test_observation_lands_in_the_le_bucket(self):
        hist = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
        hist.observe(0.001)  # exactly on a bound -> that bucket (le semantics)
        hist.observe(0.0005)
        hist.observe(0.05)
        hist.observe(5.0)  # overflow
        snap = hist.snapshot()
        assert snap.counts == (2, 0, 1, 1)
        assert snap.count == 4
        assert snap.total_seconds == pytest.approx(5.0515)
        assert snap.min_seconds == 0.0005
        assert snap.max_seconds == 5.0

    def test_quantiles_interpolate_within_buckets(self):
        hist = LatencyHistogram(bounds=(1.0, 2.0))
        for _ in range(100):
            hist.observe(1.5)
        snap = hist.snapshot()
        # All mass in the (1, 2] bucket: every quantile lands inside it.
        assert 1.0 <= snap.p50_seconds <= 2.0
        assert 1.0 <= snap.p99_seconds <= 2.0
        assert snap.mean_seconds == pytest.approx(1.5)

    def test_quantiles_clamped_to_observed_range(self):
        hist = LatencyHistogram()
        hist.observe(0.003)
        snap = hist.snapshot()
        # One sample: every quantile IS that sample, not a bucket edge.
        assert snap.p50_seconds == pytest.approx(0.003)
        assert snap.p99_seconds == pytest.approx(0.003)

    def test_overflow_quantile_reports_observed_max(self):
        hist = LatencyHistogram(bounds=(0.001,))
        hist.observe(42.0)
        assert hist.snapshot().p99_seconds == pytest.approx(42.0)

    def test_empty_histogram(self):
        snap = LatencyHistogram().snapshot()
        assert snap.count == 0
        assert snap.mean_seconds == 0.0
        assert snap.p95_seconds == 0.0

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().snapshot().quantile(1.5)

    def test_merge_folds_counts_and_extrema(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        a.observe(0.001)
        b.observe(1.0)
        b.observe(0.0001)
        a.merge(b)
        snap = a.snapshot()
        assert snap.count == 3
        assert snap.min_seconds == 0.0001
        assert snap.max_seconds == 1.0

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            LatencyHistogram(bounds=(1.0,)).merge(LatencyHistogram(bounds=(2.0,)))

    def test_cumulative_counts_end_at_total(self):
        hist = LatencyHistogram(bounds=(0.01, 0.1))
        for s in (0.005, 0.05, 0.5):
            hist.observe(s)
        assert hist.snapshot().cumulative_counts() == (1, 2, 3)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=())
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(0.0, 1.0))

    def test_default_buckets_are_sorted_and_positive(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert all(b > 0 for b in DEFAULT_LATENCY_BUCKETS)


class TestBackendLabelValidation:
    """Satellite fix: observe_latency now mirrors increment's strictness."""

    def test_labels_are_trimmed_and_lowercased(self):
        assert normalize_backend_label("  QPP ") == "qpp"
        assert normalize_backend_label("shard-2.local:9") == "shard-2.local:9"

    @pytest.mark.parametrize(
        "junk", ["", "   ", "-leading", "has space", "semi;colon", 'quo"te', None, 7]
    )
    def test_junk_labels_raise_key_error(self, junk):
        with pytest.raises(KeyError):
            normalize_backend_label(junk)

    def test_observe_latency_rejects_unknown_junk_like_increment(self):
        metrics = ServiceMetrics()
        with pytest.raises(KeyError):
            metrics.increment("no_such_counter")
        with pytest.raises(KeyError):
            metrics.observe_latency("", 0.1)
        with pytest.raises(KeyError):
            metrics.observe_latency(None, 0.1)
        # No phantom backend was minted by the failed observations.
        assert metrics.snapshot().backend_latency == {}

    def test_observe_latency_normalises_before_bucketing(self):
        metrics = ServiceMetrics()
        metrics.observe_latency("QPP", 0.01)
        metrics.observe_latency(" qpp ", 0.02)
        snap = metrics.snapshot()
        assert list(snap.backend_latency) == ["qpp"]
        assert snap.backend_latency["qpp"].executions == 2


class TestBackendLatencyQuantiles:
    def test_snapshot_reports_quantiles_per_backend(self):
        metrics = ServiceMetrics()
        for ms in (1, 2, 3, 4, 200):
            metrics.observe_latency("local", ms / 1000.0)
        agg = metrics.snapshot().backend_latency["local"]
        assert agg.executions == 5
        assert agg.histogram is not None
        assert agg.p50_seconds < agg.p95_seconds <= agg.p99_seconds
        assert agg.p99_seconds <= 0.2 + 1e-9
        assert agg.mean_seconds == pytest.approx(0.042)

    def test_legacy_construction_falls_back_to_mean(self):
        agg = BackendLatency(executions=4, total_seconds=2.0)
        assert agg.histogram is None
        assert agg.p50_seconds == agg.p95_seconds == agg.mean_seconds == 0.5


class TestExporters:
    def _snapshot(self):
        metrics = ServiceMetrics()
        metrics.increment("submitted", 3)
        metrics.increment("completed", 2)
        metrics.observe_latency("local", 0.004)
        metrics.observe_latency("local", 0.040)
        return metrics.snapshot(queue_depth=1, active_workers=2, shm_workers=4)

    def test_prometheus_text_structure(self):
        text = to_prometheus(self._snapshot())
        assert "# TYPE repro_jobs_submitted_total counter" in text
        assert "repro_jobs_submitted_total 3" in text
        assert "repro_queue_depth 1" in text
        assert "repro_shm_workers 4" in text
        # Histogram exposition: cumulative buckets, +Inf, sum and count.
        assert '_bucket{backend="local",le="+Inf"} 2' in text
        assert 'repro_backend_latency_seconds_count{backend="local"} 2' in text
        # Every sample line is "name{labels} value" with a float-parsable value.
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part.startswith("repro_")

    def test_prometheus_cumulative_buckets_are_monotonic(self):
        text = to_prometheus(self._snapshot())
        running = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_backend_latency_seconds_bucket")
        ]
        assert running == sorted(running)
        assert running[-1] == 2

    def test_json_export_round_trips(self):
        doc = json.loads(to_json(self._snapshot()))
        assert doc["submitted"] == 3
        assert doc["shm_workers"] == 4
        hist = doc["backend_latency"]["local"]["histogram"]
        assert hist["count"] == 2
        assert hist["p95_seconds"] >= hist["p50_seconds"]

    def test_chrome_trace_is_loadable_json_with_lane_metadata(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("job", attrs={"shots": 8}) as root:
            with tracer.span("replay") as child:
                child.mark_error("boom")
        doc = json.loads(to_chrome_trace(tracer.spans(root.trace_id)))
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert metas and metas[0]["name"] == "thread_name"
        assert len(slices) == 2
        for e in slices:
            assert isinstance(e["tid"], int)
            assert e["dur"] >= 0
        by_name = {e["name"]: e for e in slices}
        assert by_name["job"]["args"]["shots"] == 8
        assert by_name["replay"]["cat"] == "error"
        assert by_name["replay"]["args"]["parent_id"] == root.span_id

    def test_chrome_trace_accepts_raw_dict_payloads(self):
        payload = {
            "name": "remote",
            "trace_id": "t",
            "span_id": "s",
            "parent_id": None,
            "start_wall": 2.0,
            "duration": 0.001,
            "pid": 99,
            "thread": "shm-0",
        }
        events = chrome_trace_events([payload])
        slices = [e for e in events if e["ph"] == "X"]
        assert slices[0]["pid"] == 99
        assert slices[0]["ts"] == pytest.approx(2.0e6)
