"""Property-based tests for the Pauli algebra, sampling and the scheduler."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.operators.pauli import PauliOperator, PauliTerm
from repro.parallel.contention import ContentionModel
from repro.parallel.scheduler import SimTask, TaskScheduler
from repro.simulator.parallel_engine import merge_counts, split_shots
from repro.simulator.sampling import marginal_probabilities

_SETTINGS = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def pauli_terms(draw, max_qubits: int = 4):
    n_factors = draw(st.integers(min_value=0, max_value=max_qubits))
    qubits = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_qubits - 1),
            min_size=n_factors,
            max_size=n_factors,
            unique=True,
        )
    )
    labels = [draw(st.sampled_from(["X", "Y", "Z"])) for _ in qubits]
    coefficient = draw(
        st.floats(min_value=-5, max_value=5, allow_nan=False).filter(lambda c: abs(c) > 1e-6)
    )
    return PauliTerm(dict(zip(qubits, labels)), coefficient)


class TestPauliAlgebraProperties:
    @_SETTINGS
    @given(pauli_terms(), pauli_terms())
    def test_term_product_matches_matrix_product(self, a, b):
        n = 4
        product = a * b
        assert np.allclose(
            product.to_matrix(n), a.to_matrix(n) @ b.to_matrix(n), atol=1e-9
        )

    @_SETTINGS
    @given(pauli_terms(), pauli_terms())
    def test_commutation_predicate_matches_matrices(self, a, b):
        n = 4
        commutator = a.to_matrix(n) @ b.to_matrix(n) - b.to_matrix(n) @ a.to_matrix(n)
        # Scale the tolerance by the coefficient product: two ~1e-6
        # coefficients shrink a genuine non-zero commutator (entries
        # 2*|c_a*c_b|) below any fixed atol, which would wrongly read as
        # "commutes".  Relative to the scale, zero and non-zero are
        # cleanly separated.
        scale = abs(a.coefficient) * abs(b.coefficient)
        assert a.commutes_with(b) == np.allclose(commutator, 0, atol=1e-9 * scale)

    @_SETTINGS
    @given(st.lists(pauli_terms(), min_size=1, max_size=5))
    def test_operator_sum_matches_matrix_sum(self, terms):
        n = 4
        operator = PauliOperator(terms)
        expected = sum(t.to_matrix(n) for t in terms)
        assert np.allclose(operator.to_matrix(n), expected, atol=1e-9)

    @_SETTINGS
    @given(st.lists(pauli_terms(), min_size=1, max_size=4))
    def test_real_weighted_operators_are_hermitian(self, terms):
        operator = PauliOperator(terms)
        matrix = operator.to_matrix(4)
        assert np.allclose(matrix, matrix.conj().T, atol=1e-9)


class TestSamplingProperties:
    @_SETTINGS
    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=32),
    )
    def test_split_shots_partitions_exactly(self, shots, workers):
        chunks = split_shots(shots, workers)
        assert sum(chunks) == shots
        assert all(c > 0 for c in chunks)
        assert max(chunks) - min(chunks) <= 1

    @_SETTINGS
    @given(st.lists(st.dictionaries(st.sampled_from(["00", "01", "10", "11"]),
                                    st.integers(min_value=0, max_value=100)),
                    min_size=0, max_size=6))
    def test_merge_counts_preserves_totals(self, histograms):
        merged = merge_counts(histograms)
        assert sum(merged.values()) == sum(sum(h.values()) for h in histograms)

    @_SETTINGS
    @given(st.integers(min_value=1, max_value=5), st.data())
    def test_marginals_always_sum_to_one(self, n_qubits, data):
        raw = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=1 << n_qubits,
                max_size=1 << n_qubits,
            ).filter(lambda xs: sum(xs) > 1e-9)
        )
        probs = np.array(raw) / np.sum(raw)
        qubits = tuple(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_qubits - 1),
                    min_size=1,
                    max_size=n_qubits,
                    unique=True,
                )
            )
        )
        marginals = marginal_probabilities(probs, qubits, n_qubits)
        assert sum(marginals.values()) == pytest.approx(1.0, abs=1e-9)


@st.composite
def sim_tasks(draw, index: int):
    parallel = draw(st.floats(min_value=0.0, max_value=500.0, allow_nan=False))
    serial = draw(st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
    locked = draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
    threads = draw(st.integers(min_value=1, max_value=24))
    return SimTask.from_cost(
        f"task{index}", parallel_work=parallel, serial_work=serial,
        locked_work=locked, threads=threads, n_chunks=4
    )


class TestSchedulerProperties:
    @_SETTINGS
    @given(st.data())
    def test_parallel_never_slower_than_one_by_one(self, data):
        n_tasks = data.draw(st.integers(min_value=1, max_value=4))
        tasks = [data.draw(sim_tasks(i)) for i in range(n_tasks)]
        scheduler = TaskScheduler(contention=ContentionModel())
        one_by_one = scheduler.run_one_by_one(tasks).makespan
        parallel = scheduler.run_parallel(tasks).makespan
        assert parallel <= one_by_one * (1.0 + 1e-9)

    @_SETTINGS
    @given(st.data())
    def test_makespan_bounded_below_by_critical_path(self, data):
        tasks = [data.draw(sim_tasks(i)) for i in range(data.draw(st.integers(1, 3)))]
        scheduler = TaskScheduler(contention=ContentionModel())
        result = scheduler.run_parallel(tasks)
        slowest_alone = max(scheduler.run([t]).makespan for t in tasks)
        assert result.makespan >= slowest_alone * (1.0 - 1e-9)

    @_SETTINGS
    @given(st.data())
    def test_completion_times_never_exceed_makespan(self, data):
        tasks = [data.draw(sim_tasks(i)) for i in range(data.draw(st.integers(1, 4)))]
        result = TaskScheduler().run_parallel(tasks)
        assert set(result.completion_times) == {t.name for t in tasks}
        assert all(t <= result.makespan + 1e-9 for t in result.completion_times.values())
