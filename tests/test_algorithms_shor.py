"""Tests for Shor's algorithm (kernel construction, post-processing, drivers)."""

import math

import numpy as np
import pytest

from repro.algorithms.parallel_shor import parallel_shor_factor
from repro.algorithms.shor import (
    continued_fraction_period,
    modular_exponentiation_permutation,
    period_finding_circuit,
    run_order_finding,
    shor_factor,
)
from repro.config import set_config
from repro.exceptions import ConfigurationError


class TestModularExponentiationPermutation:
    def test_permutation_multiplies_modulo_n(self):
        perm = modular_exponentiation_permutation(a=2, power=1, N=15, n_bits=4)
        for y in range(15):
            assert perm[y] == (2 * y) % 15
        assert perm[15] == 15  # padding value untouched

    def test_power_is_applied(self):
        perm = modular_exponentiation_permutation(a=2, power=3, N=15, n_bits=4)
        for y in range(15):
            assert perm[y] == (pow(2, 3, 15) * y) % 15

    def test_result_is_a_bijection(self):
        perm = modular_exponentiation_permutation(a=7, power=2, N=15, n_bits=4)
        assert sorted(perm) == list(range(16))

    def test_insufficient_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            modular_exponentiation_permutation(a=2, power=1, N=15, n_bits=3)

    def test_non_coprime_base_rejected(self):
        with pytest.raises(ConfigurationError):
            modular_exponentiation_permutation(a=5, power=1, N=15, n_bits=4)


class TestPeriodFindingCircuit:
    def test_register_layout(self):
        circuit = period_finding_circuit(15, 2)
        n = 4
        t = 8
        assert circuit.n_qubits == n + t
        # Only the counting register is measured.
        assert set(circuit.measured_qubits()) == set(range(n, n + t))

    def test_custom_counting_register(self):
        circuit = period_finding_circuit(15, 2, counting_qubits=4)
        assert circuit.n_qubits == 8

    def test_contains_one_controlled_multiplication_per_counting_qubit(self):
        circuit = period_finding_circuit(7, 2)
        cmults = [i for i in circuit if i.name.startswith("CMULT")]
        assert len(cmults) == 6  # t = 2 * ceil(log2(7)) = 6

    def test_invalid_base_rejected(self):
        with pytest.raises(ConfigurationError):
            period_finding_circuit(15, 1)
        with pytest.raises(ConfigurationError):
            period_finding_circuit(15, 5)  # gcd(5, 15) != 1

    def test_measurement_distribution_peaks_at_multiples_of_2t_over_r(self):
        """The counting register concentrates near k * 2^t / r (r = 4 for 2 mod 15)."""
        from repro.simulator.statevector import StateVector

        circuit = period_finding_circuit(15, 2)
        state = StateVector(circuit.n_qubits)
        state.apply_circuit(circuit.without_measurements())
        counts = state.sample(2000, measured_qubits=circuit.measured_qubits(),
                              rng=np.random.default_rng(0))
        t = 8
        peaks = {0, 64, 128, 192}  # k * 256 / 4
        observed = 0
        for bitstring, count in counts.items():
            value = sum((1 << i) for i, bit in enumerate(bitstring) if bit == "1")
            if value in peaks:
                observed += count
        assert observed / 2000 > 0.95


class TestClassicalPostProcessing:
    def test_continued_fraction_recovers_period(self):
        # measured / 2^t = 192/256 = 3/4 -> denominator 4.
        assert continued_fraction_period(192, 8, 15) == 4
        assert continued_fraction_period(64, 8, 15) == 4

    def test_zero_measurement_is_uninformative(self):
        assert continued_fraction_period(0, 8, 15) is None

    def test_half_measurement_gives_divisor_of_period(self):
        # 128/256 = 1/2: denominator 2 divides the true period 4.
        assert continued_fraction_period(128, 8, 15) == 2

    def test_invalid_t_bits(self):
        with pytest.raises(ConfigurationError):
            continued_fraction_period(1, 0, 15)


class TestOrderFindingAndFactoring:
    def test_order_finding_n15_a7(self):
        set_config(seed=11)
        result = run_order_finding(15, 7, shots=10)
        assert result.period == 4
        assert result.factors == (3, 5)
        assert result.succeeded

    def test_order_finding_n15_a2(self):
        set_config(seed=3)
        result = run_order_finding(15, 2, shots=10)
        assert result.period == 4
        assert result.factors == (3, 5)

    def test_order_finding_n7_a2_finds_odd_period(self):
        """The Figure 5 workload: N=7, a=2 has period 3 (odd, so no factors)."""
        set_config(seed=5)
        result = run_order_finding(7, 2, shots=10)
        assert result.period == 3
        assert not result.succeeded

    def test_shor_factor_even_number_short_circuits(self):
        result = shor_factor(12)
        assert result.factors == (2, 6)

    def test_shor_factor_with_lucky_gcd_base(self):
        result = shor_factor(15, bases=[5])
        assert set(result.factors) == {3, 5}

    def test_shor_factor_full_quantum_path(self):
        set_config(seed=21)
        result = shor_factor(15, shots=10, bases=[7, 2])
        assert result.factors == (3, 5)

    def test_shor_factor_rejects_tiny_n(self):
        with pytest.raises(ConfigurationError):
            shor_factor(3)

    def test_parallel_shor_factor(self):
        set_config(seed=13)
        result = parallel_shor_factor(15, n_tasks=2, shots=10, bases=[2, 7])
        assert result.factors == (3, 5)

    def test_parallel_shor_lucky_base_short_circuits_without_kernels(self):
        result = parallel_shor_factor(15, bases=[6, 2])
        assert set(result.factors) == {3, 5}

    def test_parallel_shor_validation(self):
        with pytest.raises(ConfigurationError):
            parallel_shor_factor(15, n_tasks=0)
        with pytest.raises(ConfigurationError):
            parallel_shor_factor(2)

    def test_gcd_consistency_of_returned_factors(self):
        set_config(seed=29)
        result = shor_factor(21, shots=12, bases=[2, 5])
        if result.succeeded:
            for factor in result.factors:
                assert 21 % factor == 0
                assert 1 < factor < 21
