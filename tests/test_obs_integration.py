"""End-to-end observability across the broker/shard/shm execution stack.

The acceptance property for the tracing subsystem: one traced job submitted
to :class:`QuantumJobService` yields a *single* stitched span tree — from
queue-wait through compile, replay (including spans recorded inside shard
worker *processes* and shm replay workers) to result reconcile — that
exports as valid Prometheus text and Chrome trace-event JSON.  Failure
propagation matters as much: a shard worker SIGKILLed mid-batch must leave
a complete parent trace with an error-tagged attempt span and the
respawn/retry spans under the same trace id.
"""

import json
import os
import signal

import numpy as np
import pytest

from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.exec import LocalBackend, ShardedExecutor
from repro.exec.shm import SharedStatePool
from repro.obs import (
    enable_profiler,
    enable_tracing,
    get_tracer,
    to_chrome_trace,
    to_prometheus,
)
from repro.service import QuantumJobService
from repro.simulator.execution_plan import compile_plan


def span_names(tracer, trace_id):
    return {s.name for s in tracer.spans(trace_id)}


def assert_single_rooted_tree(spans):
    """Every span's parent is in the trace (or it is the unique root)."""
    ids = {s.span_id for s in spans}
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == 1, f"expected one root, got {[s.name for s in roots]}"
    for span in spans:
        if span.parent_id is not None:
            assert span.parent_id in ids, f"dangling parent on {span.name!r}"
    assert len({s.trace_id for s in spans}) == 1


class TestServiceTrace:
    def test_untraced_job_has_no_trace_id_and_records_nothing(self):
        with QuantumJobService(workers=1) as service:
            handle = service.submit(ghz_circuit(3), shots=64)
            handle.result(timeout=60)
            assert handle.trace_id is None
        assert get_tracer().spans() == []

    def test_in_process_job_yields_one_stitched_tree(self):
        tracer = enable_tracing()
        # Pin the dense lane: this test asserts the statevector span shape
        # (compile/replay/sample), which auto-routing would bypass for GHZ.
        with QuantumJobService(
            workers=2, backend_options={"method": "statevector"}
        ) as service:
            handle = service.submit(ghz_circuit(4), shots=128)
            handle.result(timeout=60)
            trace_id = handle.trace_id
        assert trace_id is not None
        spans = tracer.spans(trace_id)
        assert_single_rooted_tree(spans)
        names = span_names(tracer, trace_id)
        # The full in-process lifecycle, submit thread + dispatcher thread.
        assert {
            "job",
            "queue-wait",
            "cache-lookup",
            "backend-execute",
            "compile",
            "replay",
            "sample",
            "reconcile",
        } <= names

    def test_cache_hit_closes_the_root_with_a_cache_span(self):
        tracer = enable_tracing()
        with QuantumJobService(workers=1) as service:
            first = service.submit(ghz_circuit(3), shots=64)
            first.result(timeout=60)
            second = service.submit(ghz_circuit(3), shots=32)
            result = second.result(timeout=60)
            assert result.from_cache
        spans = tracer.spans(second.trace_id)
        assert_single_rooted_tree(spans)
        assert span_names(tracer, second.trace_id) == {"job", "cache-hit"}
        (root,) = [s for s in spans if s.name == "job"]
        assert root.attributes.get("from_cache") is True

    def test_two_jobs_get_two_distinct_traces(self):
        tracer = enable_tracing()
        with QuantumJobService(workers=1, enable_cache=False) as service:
            a = service.submit(ghz_circuit(3), shots=32)
            b = service.submit(qft_circuit(3), shots=32)
            a.result(timeout=60)
            b.result(timeout=60)
        assert a.trace_id != b.trace_id
        for handle in (a, b):
            assert_single_rooted_tree(tracer.spans(handle.trace_id))

    def test_sampled_out_job_records_nothing(self):
        tracer = enable_tracing(sample_rate=0.0)
        with QuantumJobService(workers=1) as service:
            handle = service.submit(ghz_circuit(3), shots=32)
            handle.result(timeout=60)
            assert handle.trace_id is None
        assert tracer.spans() == []


class TestCrossProcessTrace:
    def test_sharded_job_stitches_worker_process_spans(self):
        tracer = enable_tracing()
        # Pin the dense lane: the shard-dispatch spans under test only
        # exist on the statevector path.
        with QuantumJobService(
            workers=1, processes=2,
            backend_options={"method": "statevector"},
        ) as service:
            handle = service.submit(ghz_circuit(4), shots=256)
            handle.result(timeout=120)
            trace_id = handle.trace_id
        spans = tracer.spans(trace_id)
        assert_single_rooted_tree(spans)
        names = span_names(tracer, trace_id)
        assert {"job", "shard-dispatch", "shard-attempt", "shard-replay"} <= names
        # Worker-side spans really crossed the process boundary.
        parent_pid = os.getpid()
        worker_spans = [s for s in spans if s.name == "shard-replay"]
        assert worker_spans and all(s.pid != parent_pid for s in worker_spans)
        # And they carry the worker's own execution stages underneath.
        assert {"compile", "replay", "sample"} <= names

    def test_service_shm_lane_barrier_spans_reach_the_root_trace(self):
        """The acceptance scenario: a traced job through the service with
        the shared-memory replay lane active produces ONE tree containing
        queue-wait, compile, replay, per-worker shm spans and barrier
        waits — exportable as valid Prometheus text and Chrome trace JSON."""
        from repro.exec.shm import shutdown_shared_state_pools

        shutdown_shared_state_pools()  # leave exactly this service's pool open
        tracer = enable_tracing()
        profiler = enable_profiler()
        options = {"shm-processes": 2, "chunk-threshold": 2}
        with QuantumJobService(workers=1, backend_options=options) as service:
            handle = service.submit(qft_circuit(6), shots=64)
            handle.result(timeout=120)
            trace_id = handle.trace_id
            snapshot = service.metrics()
        spans = tracer.spans(trace_id)
        assert_single_rooted_tree(spans)
        names = span_names(tracer, trace_id)
        assert {
            "job",
            "queue-wait",
            "compile",
            "replay",
            "shm-worker-replay",
            "barrier-wait",
            "reconcile",
        } <= names
        shm_spans = [s for s in spans if s.name == "shm-worker-replay"]
        assert len(shm_spans) == 2  # one per shm worker process
        assert all(s.pid != os.getpid() for s in shm_spans)
        # Satellite: shm-lane health is visible in the broker's snapshot.
        assert snapshot.shm_workers == 2
        assert snapshot.shm_resident_bytes > 0
        # The worker profiles merged into the parent's active profiler.
        assert profiler.snapshot().barrier_waits > 0
        # Both exporters accept the run's artefacts.
        chrome = json.loads(to_chrome_trace(spans))
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])
        prom = to_prometheus(snapshot, profile=profiler.snapshot())
        assert "repro_shm_workers 2" in prom
        assert "repro_replay_barrier_wait_seconds_total" in prom

    def test_sharded_profile_merges_into_parent_profiler(self):
        profiler = enable_profiler()
        with ShardedExecutor(2, name="obs-profile") as executor:
            executor.execute(qft_circuit(4), 128, seed=5)
        snap = profiler.snapshot()
        # Shot sharding replays the plan on every shard; both workers'
        # kernel counts fold into one profile.
        assert snap.total_calls > 0
        assert snap.total_kernel_seconds > 0.0

    def test_tracing_does_not_perturb_sharded_results(self):
        circuit = qft_circuit(4)
        with ShardedExecutor(2, name="obs-bits-ref") as executor:
            reference = executor.execute(circuit, 512, seed=11)
        enable_tracing()
        tracer = get_tracer()
        with ShardedExecutor(2, name="obs-bits-traced") as executor:
            with tracer.span("job"):
                traced = executor.execute(circuit, 512, seed=11)
        assert dict(traced.counts) == dict(reference.counts)


class TestFailureTrace:
    def test_sigkilled_shard_worker_leaves_a_complete_error_tagged_trace(self):
        """Kill a shard worker mid-batch: the job must still resolve, and
        its trace must be a complete tree containing the error-tagged
        attempt span plus the respawned retry under the same trace id."""
        tracer = enable_tracing()
        executor = ShardedExecutor(2, name="obs-kill")
        try:
            pids = executor.shard_pids()
            os.kill(pids[0], signal.SIGKILL)
            with tracer.span("job") as root:
                result = executor.execute(ghz_circuit(4), 512, seed=9)
            assert result.total_counts() == 512
            trace_id = root.trace_id
        finally:
            executor.close()
        spans = tracer.spans(trace_id)
        assert_single_rooted_tree(spans)
        attempts = [s for s in spans if s.name == "shard-attempt"]
        failed = [s for s in attempts if s.error]
        retried = [s for s in attempts if not s.error]
        assert failed, "the killed attempt must appear as an error-tagged span"
        assert failed[0].attributes.get("respawned") is True
        assert "died" in failed[0].error
        assert retried, "the respawned retry must appear under the same trace"
        assert {s.trace_id for s in attempts} == {trace_id}
        # The retry executed: its worker spans are in the tree too.
        assert "shard-replay" in span_names(tracer, trace_id)

    def test_shm_worker_death_marks_the_replay_span_as_error(self):
        tracer = enable_tracing()
        plan = compile_plan(qft_circuit(6), 6, chunk_threshold=2)
        pool = SharedStatePool(2, name="obs-shm-kill")
        try:
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            with tracer.span("job") as root:
                with pytest.raises(Exception, match="mid-replay"):
                    plan.execute(plan.new_state(), pool=pool)
            trace_id = root.trace_id
            # The pool recovered; a traced retry on the same trace works.
            with tracer.activate(root.context()):
                data = plan.execute(plan.new_state(), pool=pool)
            assert np.array_equal(data, plan.execute(plan.new_state()))
        finally:
            pool.close()
        spans = tracer.spans(trace_id)
        errored = [s for s in spans if s.error]
        assert errored, "the failed replay must be visible in the trace"
        # After recovery the shm worker spans appear under the same trace.
        assert "shm-worker-replay" in {s.name for s in spans}


class TestServiceMetricsIntegration:
    def test_snapshot_reports_quantiles_and_shm_health_fields(self):
        # The shm health gauges aggregate every open pool in the process;
        # drop pools left warm by earlier tests so "no shm lane" reads zero.
        from repro.exec.shm import shutdown_shared_state_pools

        shutdown_shared_state_pools()
        with QuantumJobService(workers=1, enable_cache=False) as service:
            for _ in range(3):
                service.submit(ghz_circuit(3), shots=32).result(timeout=60)
            snapshot = service.metrics()
        agg = snapshot.backend_latency[service.backend]
        assert agg.executions == 3
        assert agg.histogram is not None
        assert 0.0 < agg.p50_seconds <= agg.p95_seconds <= agg.p99_seconds
        # shm fields exist and are zero without the shm lane.
        assert snapshot.shm_workers == 0
        assert snapshot.shm_respawns == 0
        assert snapshot.shm_barrier_aborts == 0
        assert snapshot.shm_resident_bytes == 0
        # The snapshot renders as Prometheus text without a profile too.
        text = to_prometheus(snapshot)
        assert "repro_backend_latency_seconds_bucket" in text
