"""Tests for gate definitions: matrices, unitarity, inverses and the registry."""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidGateError
from repro.ir.gates import (
    CCX,
    CH,
    CPhase,
    CRZ,
    CSwap,
    CX,
    CY,
    CZ,
    GATE_REGISTRY,
    H,
    Identity,
    ISwap,
    Measure,
    PermutationGate,
    RX,
    RY,
    RZ,
    S,
    Sdg,
    Swap,
    T,
    Tdg,
    U3,
    UnitaryGate,
    X,
    Y,
    Z,
    create_gate,
)
from repro.ir.parameter import Parameter

_FIXED_GATES = [
    Identity([0]),
    H([0]),
    X([0]),
    Y([0]),
    Z([0]),
    S([0]),
    Sdg([0]),
    T([0]),
    Tdg([0]),
    CX([0, 1]),
    CY([0, 1]),
    CZ([0, 1]),
    CH([0, 1]),
    Swap([0, 1]),
    ISwap([0, 1]),
    CCX([0, 1, 2]),
    CSwap([0, 1, 2]),
]

_PARAMETERIZED_GATES = [
    RX([0], [0.7]),
    RY([0], [1.1]),
    RZ([0], [-0.4]),
    U3([0], [0.3, 0.8, -1.2]),
    CRZ([0, 1], [0.5]),
    CPhase([0, 1], [0.9]),
]


@pytest.mark.parametrize("gate", _FIXED_GATES + _PARAMETERIZED_GATES, ids=lambda g: g.name)
def test_gate_matrices_are_unitary(gate):
    matrix = gate.matrix()
    dim = 2 ** len(gate.qubits)
    assert matrix.shape == (dim, dim)
    assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)


@pytest.mark.parametrize("gate", _FIXED_GATES + _PARAMETERIZED_GATES, ids=lambda g: g.name)
def test_gate_inverse_composes_to_identity(gate):
    dim = 2 ** len(gate.qubits)
    product = gate.inverse().matrix() @ gate.matrix()
    assert np.allclose(product, np.eye(dim), atol=1e-10)


class TestSpecificMatrices:
    def test_hadamard_entries(self):
        expected = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        assert np.allclose(H([0]).matrix(), expected)

    def test_x_flips_basis_states(self):
        assert np.allclose(X([0]).matrix(), [[0, 1], [1, 0]])

    def test_s_squared_is_z(self):
        assert np.allclose(S([0]).matrix() @ S([0]).matrix(), Z([0]).matrix())

    def test_t_squared_is_s(self):
        assert np.allclose(T([0]).matrix() @ T([0]).matrix(), S([0]).matrix())

    def test_rz_is_diagonal_phase(self):
        theta = 0.37
        mat = RZ([0], [theta]).matrix()
        assert mat[0, 1] == 0 and mat[1, 0] == 0
        assert np.isclose(mat[1, 1] / mat[0, 0], np.exp(1j * theta))

    def test_rx_pi_equals_x_up_to_phase(self):
        mat = RX([0], [math.pi]).matrix()
        assert np.allclose(mat, -1j * X([0]).matrix(), atol=1e-10)

    def test_ry_pi_over_2_creates_superposition(self):
        mat = RY([0], [math.pi / 2]).matrix()
        column = mat[:, 0]
        assert np.allclose(np.abs(column) ** 2, [0.5, 0.5])

    def test_cx_maps_11_to_10_in_local_ordering(self):
        # Local ordering |q1 q0>, control = q0.  Control=1, target=0 -> index 1
        # must map to control=1, target=1 -> index 3.
        mat = CX([0, 1]).matrix()
        state = np.zeros(4)
        state[1] = 1.0
        assert np.allclose(mat @ state, np.eye(4)[3])

    def test_cz_is_diagonal(self):
        mat = CZ([0, 1]).matrix()
        assert np.allclose(mat, np.diag([1, 1, 1, -1]))

    def test_cphase_angle_pi_equals_cz(self):
        assert np.allclose(CPhase([0, 1], [math.pi]).matrix(), CZ([0, 1]).matrix())

    def test_swap_exchanges_01_and_10(self):
        mat = Swap([0, 1]).matrix()
        assert mat[1, 2] == 1 and mat[2, 1] == 1

    def test_ccx_flips_target_only_when_both_controls_set(self):
        mat = CCX([0, 1, 2]).matrix()
        # controls q0, q1 set, target q2 = 0 -> local index 3 maps to 7.
        assert mat[7, 3] == 1 and mat[3, 7] == 1
        # only one control set: unchanged.
        assert mat[1, 1] == 1 and mat[2, 2] == 1


class TestU3Decomposition:
    @pytest.mark.parametrize(
        "gate",
        [H([0]), X([0]), Y([0]), Z([0]), S([0]), T([0]), RX([0], [0.3]), RY([0], [1.2]), RZ([0], [2.2])],
        ids=lambda g: g.name,
    )
    def test_from_matrix_reproduces_gate_up_to_phase(self, gate):
        u3 = U3.from_matrix(gate.matrix(), qubit=0)
        original = gate.matrix()
        recovered = u3.matrix()
        # Compare up to global phase.
        index = np.unravel_index(np.argmax(np.abs(original)), original.shape)
        phase = original[index] / recovered[index]
        assert np.isclose(abs(phase), 1.0, atol=1e-9)
        assert np.allclose(original, phase * recovered, atol=1e-9)

    def test_from_matrix_rejects_wrong_shape(self):
        with pytest.raises(InvalidGateError):
            U3.from_matrix(np.eye(4), qubit=0)


class TestMatrixGates:
    def test_unitary_gate_requires_unitary_matrix(self):
        with pytest.raises(InvalidGateError):
            UnitaryGate(np.array([[1, 0], [0, 2]]), [0])

    def test_unitary_gate_shape_must_match_qubits(self):
        with pytest.raises(InvalidGateError):
            UnitaryGate(np.eye(2), [0, 1])

    def test_unitary_gate_inverse(self):
        gate = UnitaryGate(H([0]).matrix(), [3], name="MYH")
        assert np.allclose(gate.inverse().matrix() @ gate.matrix(), np.eye(2))

    def test_permutation_gate_matrix_maps_src_to_dst(self):
        gate = PermutationGate([1, 0, 2, 3], [0, 1])
        state = np.zeros(4)
        state[0] = 1.0
        assert np.allclose(gate.matrix() @ state, np.eye(4)[1])

    def test_permutation_must_be_bijective(self):
        with pytest.raises(InvalidGateError):
            PermutationGate([0, 0, 1, 2], [0, 1])

    def test_permutation_length_must_match_qubits(self):
        with pytest.raises(InvalidGateError):
            PermutationGate([0, 1], [0, 1])


class TestValidationAndRegistry:
    def test_wrong_qubit_count_rejected(self):
        with pytest.raises(InvalidGateError):
            H([0, 1])

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(InvalidGateError):
            CX([1, 1])

    def test_negative_qubits_rejected(self):
        with pytest.raises(InvalidGateError):
            X([-1])

    def test_wrong_parameter_count_rejected(self):
        with pytest.raises(InvalidGateError):
            RX([0], [])

    def test_measure_has_no_matrix_and_no_inverse(self):
        measure = Measure([0])
        with pytest.raises(InvalidGateError):
            measure.matrix()
        with pytest.raises(InvalidGateError):
            measure.inverse()

    def test_registry_contains_common_aliases(self):
        for alias in ("CNOT", "TOFFOLI", "CP", "MZ", "NOT"):
            assert alias in GATE_REGISTRY

    def test_create_gate_is_case_insensitive(self):
        gate = create_gate("cx", [0, 1])
        assert gate.name == "CX"

    def test_create_gate_unknown_name(self):
        with pytest.raises(InvalidGateError):
            create_gate("FROBNICATE", [0])

    def test_symbolic_parameter_blocks_matrix(self):
        gate = RX([0], [Parameter("theta")])
        assert gate.is_parameterized
        with pytest.raises(Exception):
            gate.matrix()

    def test_bind_produces_concrete_gate(self):
        gate = RX([0], [Parameter("theta")]).bind({"theta": 0.5})
        assert not gate.is_parameterized
        assert np.allclose(gate.matrix(), RX([0], [0.5]).matrix())

    def test_with_qubits_remaps(self):
        gate = CX([0, 1]).with_qubits([3, 5])
        assert gate.qubits == (3, 5)

    def test_to_xasm_rendering(self):
        assert CX([0, 1]).to_xasm() == "CX(q[0], q[1]);"
        assert "RY" in RY([1], [0.5]).to_xasm()
