"""Tests for IR transformation passes."""

import math

import numpy as np
import pytest

from repro.exceptions import TransformError
from repro.ir.builder import CircuitBuilder
from repro.ir.parameter import Parameter
from repro.ir.transforms import (
    InverseCancellationPass,
    PassManager,
    RotationMergingPass,
    SingleQubitFusionPass,
    default_pass_manager,
)


class TestInverseCancellation:
    def test_adjacent_hadamards_cancel(self):
        circuit = CircuitBuilder(1).h(0).h(0).x(0).build()
        out = InverseCancellationPass().run(circuit)
        assert [i.name for i in out] == ["X"]

    def test_cx_pairs_cancel(self):
        circuit = CircuitBuilder(2).cx(0, 1).cx(0, 1).build()
        assert len(InverseCancellationPass().run(circuit)) == 0

    def test_s_sdg_pairs_cancel(self):
        circuit = CircuitBuilder(1).s(0).sdg(0).t(0).tdg(0).build()
        assert len(InverseCancellationPass().run(circuit)) == 0

    def test_different_qubits_do_not_cancel(self):
        circuit = CircuitBuilder(2).h(0).h(1).build()
        assert len(InverseCancellationPass().run(circuit)) == 2

    def test_intervening_disjoint_gates_do_not_block_cancellation(self):
        circuit = CircuitBuilder(2).h(0).x(1).h(0).build()
        out = InverseCancellationPass().run(circuit)
        assert [i.name for i in out] == ["X"]

    def test_intervening_gate_on_same_qubit_blocks_cancellation(self):
        circuit = CircuitBuilder(1).h(0).x(0).h(0).build()
        assert len(InverseCancellationPass().run(circuit)) == 3

    def test_cascading_cancellation(self):
        circuit = CircuitBuilder(1).h(0).x(0).x(0).h(0).build()
        assert len(InverseCancellationPass().run(circuit)) == 0

    def test_measurements_preserved(self):
        circuit = CircuitBuilder(1).h(0).h(0).measure(0).build()
        out = InverseCancellationPass().run(circuit)
        assert [i.name for i in out] == ["MEASURE"]

    def test_semantics_preserved(self):
        circuit = CircuitBuilder(2).h(0).t(0).tdg(0).cx(0, 1).cx(0, 1).ry(1, 0.4).build()
        out = InverseCancellationPass().run(circuit)
        assert np.allclose(circuit.to_unitary(), out.to_unitary(), atol=1e-10)


class TestRotationMerging:
    def test_adjacent_rz_merge(self):
        circuit = CircuitBuilder(1).rz(0, 0.3).rz(0, 0.4).build()
        out = RotationMergingPass().run(circuit)
        assert len(out) == 1
        assert out[0].parameters[0] == pytest.approx(0.7)

    def test_opposite_rotations_vanish(self):
        circuit = CircuitBuilder(1).rx(0, 0.5).rx(0, -0.5).build()
        assert len(RotationMergingPass().run(circuit)) == 0

    def test_full_period_rotation_vanishes(self):
        circuit = CircuitBuilder(1).ry(0, 4 * math.pi).build()
        assert len(RotationMergingPass().run(circuit)) == 0

    def test_different_axes_not_merged(self):
        circuit = CircuitBuilder(1).rx(0, 0.3).rz(0, 0.4).build()
        assert len(RotationMergingPass().run(circuit)) == 2

    def test_different_qubits_not_merged(self):
        circuit = CircuitBuilder(2).rz(0, 0.3).rz(1, 0.4).build()
        assert len(RotationMergingPass().run(circuit)) == 2

    def test_symbolic_rotations_left_alone(self):
        circuit = CircuitBuilder(1).rz(0, Parameter("a")).rz(0, 0.5).build()
        assert len(RotationMergingPass().run(circuit)) == 2

    def test_semantics_preserved(self):
        circuit = CircuitBuilder(1).rz(0, 0.2).rz(0, 0.7).rx(0, 1.1).rx(0, -0.4).build()
        out = RotationMergingPass().run(circuit)
        assert np.allclose(circuit.to_unitary(), out.to_unitary(), atol=1e-10)


class TestSingleQubitFusion:
    def test_run_of_gates_becomes_one_u3(self):
        circuit = CircuitBuilder(1).h(0).t(0).s(0).x(0).build()
        out = SingleQubitFusionPass().run(circuit)
        assert len(out) == 1
        assert out[0].name == "U3"

    def test_fusion_preserves_semantics_up_to_phase(self):
        circuit = CircuitBuilder(2).h(0).t(0).rx(0, 0.4).x(1).z(1).cx(0, 1).h(1).s(1).build()
        out = SingleQubitFusionPass().run(circuit)
        original = circuit.to_unitary()
        fused = out.to_unitary()
        index = np.unravel_index(np.argmax(np.abs(original)), original.shape)
        phase = original[index] / fused[index]
        assert np.allclose(original, phase * fused, atol=1e-9)

    def test_two_qubit_gate_breaks_the_run(self):
        circuit = CircuitBuilder(2).h(0).cx(0, 1).h(0).build()
        out = SingleQubitFusionPass().run(circuit)
        assert [i.name for i in out] == ["H", "CX", "H"]

    def test_single_gates_left_unfused(self):
        circuit = CircuitBuilder(2).h(0).cx(0, 1).build()
        out = SingleQubitFusionPass().run(circuit)
        assert [i.name for i in out] == ["H", "CX"]

    def test_symbolic_gate_breaks_the_run(self):
        circuit = CircuitBuilder(1).h(0).rx(0, Parameter("a")).h(0).build()
        out = SingleQubitFusionPass().run(circuit)
        assert len(out) == 3


class TestPassManager:
    def test_runs_passes_in_order_to_fixed_point(self):
        circuit = CircuitBuilder(1).rz(0, 0.5).rz(0, -0.5).h(0).h(0).build()
        manager = PassManager([RotationMergingPass(), InverseCancellationPass()])
        assert len(manager.run(circuit)) == 0

    def test_single_iteration_mode(self):
        circuit = CircuitBuilder(1).h(0).h(0).build()
        manager = PassManager([InverseCancellationPass()])
        assert len(manager.run(circuit, to_fixed_point=False)) == 0

    def test_invalid_max_iterations(self):
        with pytest.raises(TransformError):
            PassManager(max_iterations=0)

    def test_default_pass_manager_cleans_bell_with_redundancy(self):
        circuit = CircuitBuilder(2).h(0).h(0).h(0).cx(0, 1).rz(1, 0.0).measure_all().build()
        out = default_pass_manager().run(circuit)
        assert [i.name for i in out] == ["H", "CX", "MEASURE", "MEASURE"]

    def test_append_and_len(self):
        manager = PassManager()
        manager.append(InverseCancellationPass())
        assert len(manager) == 1
