"""Property-based tests (hypothesis) for the simulator and IR invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir.builder import CircuitBuilder
from repro.ir.composite import CompositeInstruction
from repro.ir.gates import create_gate
from repro.ir.serialization import circuit_from_json, circuit_to_json
from repro.ir.transforms import (
    InverseCancellationPass,
    PassManager,
    RotationMergingPass,
    SingleQubitFusionPass,
)
from repro.simulator.statevector import StateVector
from repro.simulator.unitary import circuit_unitary

_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: Gate vocabulary used by the random-circuit strategy: (name, arity, n_params).
_GATE_POOL = [
    ("H", 1, 0),
    ("X", 1, 0),
    ("Y", 1, 0),
    ("Z", 1, 0),
    ("S", 1, 0),
    ("SDG", 1, 0),
    ("T", 1, 0),
    ("TDG", 1, 0),
    ("RX", 1, 1),
    ("RY", 1, 1),
    ("RZ", 1, 1),
    ("CX", 2, 0),
    ("CZ", 2, 0),
    ("SWAP", 2, 0),
    ("CPHASE", 2, 1),
    ("CCX", 3, 0),
]


@st.composite
def random_circuits(draw, max_qubits: int = 4, max_gates: int = 12) -> CompositeInstruction:
    """Generate random concrete (parameter-free symbolically) circuits."""
    n_qubits = draw(st.integers(min_value=1, max_value=max_qubits))
    n_gates = draw(st.integers(min_value=0, max_value=max_gates))
    circuit = CompositeInstruction("random", n_qubits)
    eligible = [g for g in _GATE_POOL if g[1] <= n_qubits]
    for _ in range(n_gates):
        name, arity, n_params = draw(st.sampled_from(eligible))
        qubits = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_qubits - 1),
                min_size=arity,
                max_size=arity,
                unique=True,
            )
        )
        params = [
            draw(st.floats(min_value=-2 * math.pi, max_value=2 * math.pi, allow_nan=False))
            for _ in range(n_params)
        ]
        circuit.add(create_gate(name, qubits, params))
    return circuit


class TestSimulatorInvariants:
    @_SETTINGS
    @given(random_circuits())
    def test_norm_is_preserved_by_any_circuit(self, circuit):
        state = StateVector(circuit.n_qubits)
        state.apply_circuit(circuit)
        assert state.norm() == pytest.approx(1.0, abs=1e-9)

    @_SETTINGS
    @given(random_circuits())
    def test_probabilities_form_a_distribution(self, circuit):
        state = StateVector(circuit.n_qubits)
        state.apply_circuit(circuit)
        probs = state.probabilities()
        assert np.all(probs >= -1e-12)
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)

    @_SETTINGS
    @given(random_circuits(max_qubits=3, max_gates=8))
    def test_statevector_matches_dense_unitary(self, circuit):
        state = StateVector(circuit.n_qubits)
        state.apply_circuit(circuit)
        expected = circuit_unitary(circuit)[:, 0]
        assert np.allclose(state.data, expected, atol=1e-9)

    @_SETTINGS
    @given(random_circuits(max_qubits=3, max_gates=8))
    def test_inverse_circuit_restores_initial_state(self, circuit):
        state = StateVector(circuit.n_qubits)
        state.apply_circuit(circuit)
        state.apply_circuit(circuit.inverse())
        assert abs(state.amplitude(0)) == pytest.approx(1.0, abs=1e-8)

    @_SETTINGS
    @given(random_circuits(max_qubits=3, max_gates=8))
    def test_circuit_unitary_is_unitary(self, circuit):
        unitary = circuit_unitary(circuit)
        dim = unitary.shape[0]
        assert np.allclose(unitary @ unitary.conj().T, np.eye(dim), atol=1e-9)

    @_SETTINGS
    @given(random_circuits(), st.integers(min_value=1, max_value=512))
    def test_sampling_returns_exactly_the_requested_shots(self, circuit, shots):
        state = StateVector(circuit.n_qubits)
        state.apply_circuit(circuit)
        counts = state.sample(shots, rng=np.random.default_rng(0))
        assert sum(counts.values()) == shots
        assert all(len(key) == circuit.n_qubits for key in counts)


class TestTransformInvariants:
    @_SETTINGS
    @given(random_circuits(max_qubits=3, max_gates=10))
    def test_optimisation_passes_preserve_semantics_up_to_phase(self, circuit):
        manager = PassManager(
            [RotationMergingPass(), InverseCancellationPass(), SingleQubitFusionPass()]
        )
        optimised = manager.run(circuit)
        original = circuit_unitary(circuit)
        transformed = circuit_unitary(optimised)
        # Compare as channels (up to a global phase).
        overlap = abs(np.trace(original.conj().T @ transformed)) / original.shape[0]
        assert overlap == pytest.approx(1.0, abs=1e-8)

    @_SETTINGS
    @given(random_circuits(max_qubits=3, max_gates=10))
    def test_passes_never_increase_gate_count(self, circuit):
        manager = PassManager([RotationMergingPass(), InverseCancellationPass()])
        assert manager.run(circuit).n_instructions <= circuit.n_instructions


class TestSerializationInvariants:
    @_SETTINGS
    @given(random_circuits())
    def test_json_round_trip_is_lossless(self, circuit):
        assert circuit_from_json(circuit_to_json(circuit)) == circuit


class TestBuilderInvariants:
    @_SETTINGS
    @given(st.integers(min_value=1, max_value=6))
    def test_measure_all_measures_each_qubit_once(self, n):
        builder = CircuitBuilder(n)
        builder.h(0)
        circuit = builder.measure_all().build()
        assert circuit.n_measurements == n
        assert circuit.measured_qubits() == tuple(range(n))
