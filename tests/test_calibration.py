"""Calibration profiles: persistence, fingerprint gating, model construction.

The contract: a persisted profile round-trips losslessly; a profile from a
different host or an older schema must *never* steer the cost model (warn,
fall back to the hand-set defaults); a partial profile (1-core host: no
thread/shm measurements) merges over the defaults into a complete model;
and the harness itself produces a usable profile on any host.
"""

import json
import time

import numpy as np
import pytest

from repro.calibrate import (
    KERNEL_KINDS,
    PROFILE_VERSION,
    CalibrationError,
    CalibrationProfile,
    host_fingerprint,
    kernel_microbench_circuit,
    load_calibrated_model,
    run_calibration,
)
from repro.simulator.cost_model import (
    DEFAULT_KERNEL_COST_FACTORS,
    EXECUTION_LANES,
    SimulationCostModel,
)
from repro.simulator.execution_plan import compile_plan


def created_days_ago(days: float) -> str:
    return time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime(time.time() - days * 86400.0)
    )


def make_profile(**overrides) -> CalibrationProfile:
    base = dict(
        created=created_days_ago(0),
        seconds_per_unit=2.5e-9,
        kernel_cost_factors={"single": 1.0, "diagonal": 0.3, "dense": 1.4},
        kernel_parallel_efficiency={"single": 0.9},
        plan_step_dispatch_cost=40.0,
        shm_step_barrier_cost=75.0,
        chunk_threshold=1 << 14,
        recommended_threads=4,
        measurements={"quick": True},
    )
    base.update(overrides)
    return CalibrationProfile(**base)


class TestPersistence:
    def test_round_trip_preserves_every_field(self, tmp_path):
        profile = make_profile()
        target = profile.save(tmp_path / "cal.json")
        loaded = CalibrationProfile.load(target)
        assert loaded == profile

    def test_save_creates_parent_directories(self, tmp_path):
        target = make_profile().save(tmp_path / "deep" / "nested" / "cal.json")
        assert target.exists()

    def test_stale_schema_version_is_rejected(self, tmp_path):
        target = make_profile(version=PROFILE_VERSION + 1).save(tmp_path / "cal.json")
        with pytest.raises(CalibrationError, match="schema version"):
            CalibrationProfile.load(target)

    def test_malformed_json_is_rejected_typed(self, tmp_path):
        target = tmp_path / "cal.json"
        target.write_text("{not json")
        with pytest.raises(CalibrationError, match="malformed"):
            CalibrationProfile.load(target)

    def test_unknown_keys_are_ignored_for_forward_compat(self, tmp_path):
        target = make_profile().save(tmp_path / "cal.json")
        payload = json.loads(target.read_text())
        payload["some_future_field"] = {"x": 1}
        target.write_text(json.dumps(payload))
        loaded = CalibrationProfile.load(target)
        assert loaded.seconds_per_unit == pytest.approx(2.5e-9)


class TestLoadCalibratedModel:
    def test_matching_profile_steers_the_model(self, tmp_path):
        target = make_profile().save(tmp_path / "cal.json")
        model = load_calibrated_model(target)
        assert model.plan_step_dispatch_cost == 40.0
        assert model.chunk_threshold == 1 << 14
        assert model.kernel_cost_factors["diagonal"] == 0.3

    def test_missing_file_falls_back_silently(self, tmp_path):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            model = load_calibrated_model(tmp_path / "absent.json")
        assert model == SimulationCostModel()

    def test_fingerprint_mismatch_warns_and_keeps_defaults(self, tmp_path):
        foreign = dict(host_fingerprint())
        foreign["cpu_count"] = (foreign["cpu_count"] or 1) + 64
        target = make_profile(fingerprint=foreign).save(tmp_path / "cal.json")
        with pytest.warns(RuntimeWarning, match="different host"):
            model = load_calibrated_model(target)
        assert model == SimulationCostModel()

    def test_stale_version_warns_and_keeps_defaults(self, tmp_path):
        target = make_profile(version=PROFILE_VERSION + 3).save(tmp_path / "cal.json")
        with pytest.warns(RuntimeWarning, match="schema version"):
            model = load_calibrated_model(target)
        assert model == SimulationCostModel()

    def test_malformed_file_warns_and_keeps_defaults(self, tmp_path):
        target = tmp_path / "cal.json"
        target.write_text("not json at all")
        with pytest.warns(RuntimeWarning, match="ignoring calibration profile"):
            model = load_calibrated_model(target)
        assert model == SimulationCostModel()


class TestProfileTTL:
    def test_stale_profile_warns_with_age_and_keeps_defaults(self, tmp_path):
        target = make_profile(created=created_days_ago(45)).save(tmp_path / "cal.json")
        with pytest.warns(RuntimeWarning, match=r"45\.0 days old"):
            model = load_calibrated_model(target)
        assert model == SimulationCostModel()

    def test_fresh_profile_loads_silently(self, tmp_path):
        import warnings

        target = make_profile(created=created_days_ago(5)).save(tmp_path / "cal.json")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            model = load_calibrated_model(target)
        assert model.plan_step_dispatch_cost == 40.0

    def test_custom_max_age_tightens_the_ttl(self, tmp_path):
        target = make_profile(created=created_days_ago(5)).save(tmp_path / "cal.json")
        with pytest.warns(RuntimeWarning, match="max 2"):
            model = load_calibrated_model(target, max_age_days=2.0)
        assert model == SimulationCostModel()

    def test_undated_profile_skips_the_age_check(self, tmp_path):
        import warnings

        target = make_profile(created="").save(tmp_path / "cal.json")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            model = load_calibrated_model(target)
        assert model.plan_step_dispatch_cost == 40.0

    def test_age_days_reports_elapsed_time(self):
        assert make_profile(created=created_days_ago(10)).age_days() == pytest.approx(
            10.0, abs=0.1
        )
        assert make_profile(created="").age_days() is None
        assert make_profile(created="not-a-date").age_days() is None

    def test_cli_show_prints_age(self, tmp_path, capsys):
        from repro.calibrate.__main__ import main

        target = make_profile(created=created_days_ago(3)).save(tmp_path / "cal.json")
        assert main(["--show", "--output", str(target)]) == 0
        captured = capsys.readouterr()
        assert "profile age: 3.0 days" in captured.err
        assert json.loads(captured.out)["plan_step_dispatch_cost"] == 40.0


class TestOnlineRefinement:
    def setup_method(self):
        from repro.simulator.cost_model import _reset_refinement_count

        _reset_refinement_count()

    def test_observe_lane_refines_and_counts(self):
        from repro.simulator.cost_model import calibration_refinement_count

        model = SimulationCostModel()
        assert model._lane_scale("threads") == 1.0
        model.observe_lane("threads", predicted_units=1.0, measured_seconds=3.0)
        assert model._lane_scale("threads") == pytest.approx(3.0)
        assert calibration_refinement_count() == 1
        # EWMA: the next observation moves the estimate toward its ratio.
        model.observe_lane("threads", predicted_units=1.0, measured_seconds=1.0)
        scale = model._lane_scale("threads")
        assert 1.0 < scale < 3.0
        assert calibration_refinement_count() == 2

    def test_bad_measurements_are_ignored(self):
        from repro.simulator.cost_model import calibration_refinement_count

        model = SimulationCostModel()
        model.observe_lane("threads", 0.0, 1.0)
        model.observe_lane("threads", 1.0, -1.0)
        model.observe_lane("threads", float("nan"), 1.0)
        model.observe_lane("not-a-lane", 1.0, 1.0)
        assert calibration_refinement_count() == 0
        assert model._lane_scale("threads") == 1.0

    def test_unobserved_lane_borrows_the_observed_mean(self):
        model = SimulationCostModel()
        model.observe_lane("threads", 1.0, 2.0)
        model.observe_lane("serial", 1.0, 4.0)
        assert model._lane_scale("shm") == pytest.approx(3.0)

    def test_sweep_cost_amortises_the_launch(self):
        circuit = kernel_microbench_circuit("single", 8)
        plan = compile_plan(circuit, 8)
        model = SimulationCostModel()
        n = 32
        single = model.plan_cost(plan, 100)
        sweep = model.sweep_cost(plan, n, 100)
        # The sweep pays the launch overhead once, not n times.
        assert sweep.total_work < n * single.total_work
        saved = n * single.total_work - sweep.total_work
        assert saved == pytest.approx((n - 1) * model.launch_overhead)


class TestFromProfile:
    def test_partial_profile_merges_over_defaults(self):
        profile = make_profile(
            kernel_cost_factors={"dense": 9.9},
            kernel_parallel_efficiency={},
            plan_step_dispatch_cost=None,
        )
        model = SimulationCostModel.from_profile(profile)
        # Measured constants land...
        assert model.kernel_cost_factors["dense"] == 9.9
        assert model.shm_step_barrier_cost == 75.0
        # ...unmeasured ones keep their hand-set defaults.
        assert model.kernel_cost_factors["reset"] == DEFAULT_KERNEL_COST_FACTORS["reset"]
        defaults = SimulationCostModel()
        assert model.plan_step_dispatch_cost == defaults.plan_step_dispatch_cost
        assert model.kernel_parallel_efficiency == defaults.kernel_parallel_efficiency

    def test_empty_profile_is_the_default_model(self):
        model = SimulationCostModel.from_profile(CalibrationProfile())
        assert model == SimulationCostModel()


class TestHarness:
    def test_quick_calibration_measures_serial_factors(self, tmp_path):
        profile = run_calibration(
            quick=True, include_threads=False, include_shm=False,
            profile_path=tmp_path / "cal.json",
        )
        assert profile.matches_host()
        assert profile.seconds_per_unit is not None and profile.seconds_per_unit > 0
        assert profile.kernel_cost_factors["single"] == 1.0
        assert set(profile.kernel_cost_factors) == set(KERNEL_KINDS)
        assert all(f > 0 for f in profile.kernel_cost_factors.values())
        # The persisted profile reconstructs an equivalent model.
        model = load_calibrated_model(tmp_path / "cal.json")
        assert model.kernel_cost_factors["dense"] == profile.kernel_cost_factors["dense"]

    @pytest.mark.parametrize("kind", KERNEL_KINDS)
    def test_microbench_circuits_lower_to_their_own_kernel(self, kind):
        plan = compile_plan(
            kernel_microbench_circuit(kind, 6), 6,
            optimize=False, batch_diagonals=False,
        )
        kernels = {step.kernel for step in plan.steps}
        assert kernels == {kind}


class TestLaneSelection:
    def _plan(self, n=8, steps=6):
        from repro.ir.builder import CircuitBuilder

        builder = CircuitBuilder(n, name=f"lane-{n}-{steps}")
        for i in range(steps):
            builder.rx(i % n, 0.1 + 0.01 * i)  # non-cancelling: plan keeps every step
        return compile_plan(builder.build(), n, optimize=False)

    def test_serial_host_chooses_serial(self):
        model = SimulationCostModel()
        plan = self._plan()
        assert model.choose_lane(plan, 100, threads=1, shm_workers=0) == "serial"

    def test_lane_costs_only_lists_viable_lanes(self):
        model = SimulationCostModel()
        plan = self._plan()
        costs = model.lane_costs(plan, 100, threads=4, shm_workers=2, shards=2)
        assert set(costs) == {"serial", "threads", "shm", "sharded"}
        assert set(model.lane_costs(plan, 100)) == {"serial"}
        assert all(lane in EXECUTION_LANES for lane in costs)

    def test_threads_win_on_large_states(self):
        model = SimulationCostModel(chunk_threshold=1 << 4)
        plan = self._plan(n=12, steps=24)
        choice = model.choose_lane(plan, 0, threads=8, shm_workers=0)
        assert choice == "threads"

    def test_barrier_cost_keeps_shm_off_small_states(self):
        model = SimulationCostModel(chunk_threshold=1 << 4)
        plan = self._plan(n=6, steps=24)
        costs = model.lane_costs(plan, 0, threads=1, shm_workers=4)
        assert costs["serial"] <= costs["shm"]

    def test_choice_is_deterministic(self):
        model = SimulationCostModel()
        plan = self._plan(n=10, steps=12)
        choices = {
            model.choose_lane(plan, 256, threads=4, shm_workers=2, shards=2)
            for _ in range(20)
        }
        assert len(choices) == 1


class TestFingerprint:
    def test_fingerprint_identifies_this_host(self):
        fp = host_fingerprint()
        assert fp["cpu_count"] >= 1
        assert fp["numpy"] == np.__version__
        assert CalibrationProfile().matches_host()
