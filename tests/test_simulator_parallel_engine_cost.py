"""Tests for the parallel simulation engine and the cost model."""

import numpy as np
import pytest

from repro.config import set_config
from repro.exceptions import ExecutionError
from repro.ir.builder import CircuitBuilder
from repro.ir.gates import H
from repro.simulator.cost_model import CircuitCost, SimulationCostModel
from repro.simulator.parallel_engine import (
    ParallelSimulationEngine,
    merge_counts,
    split_shots,
)
from repro.simulator.statevector import StateVector
from repro.algorithms.bell import bell_circuit
from repro.algorithms.shor import period_finding_circuit


class TestShotSplitting:
    def test_even_split(self):
        assert split_shots(100, 4) == [25, 25, 25, 25]

    def test_remainder_distributed(self):
        assert split_shots(10, 3) == [4, 3, 3]

    def test_more_workers_than_shots(self):
        assert split_shots(2, 8) == [1, 1]

    def test_invalid_inputs(self):
        with pytest.raises(ExecutionError):
            split_shots(0, 2)
        with pytest.raises(ExecutionError):
            split_shots(10, 0)

    def test_merge_counts(self):
        merged = merge_counts([{"00": 3, "11": 1}, {"11": 2, "01": 4}])
        assert merged == {"00": 3, "11": 3, "01": 4}


class TestParallelEngine:
    def test_sample_parallel_total_shots(self):
        engine = ParallelSimulationEngine(num_threads=4)
        state = StateVector(2)
        state.apply_circuit(bell_circuit(2).without_measurements())
        counts = engine.sample_parallel(state, 1000, seed=3)
        assert sum(counts.values()) == 1000
        assert set(counts) <= {"00", "11"}

    def test_single_thread_path(self):
        engine = ParallelSimulationEngine(num_threads=1)
        state = StateVector(1)
        state.apply(H([0]))
        counts = engine.sample_parallel(state, 100, seed=0)
        assert sum(counts.values()) == 100

    def test_results_reproducible_for_fixed_seed_and_threads(self):
        engine = ParallelSimulationEngine(num_threads=3)
        state = StateVector(2)
        state.apply_circuit(bell_circuit(2).without_measurements())
        a = engine.sample_parallel(state, 500, seed=11)
        b = engine.sample_parallel(state, 500, seed=11)
        assert a == b

    def test_effective_threads_defers_to_config(self):
        set_config(omp_num_threads=7)
        assert ParallelSimulationEngine().effective_threads() == 7
        assert ParallelSimulationEngine(num_threads=2).effective_threads() == 2

    def test_trajectories_with_reset(self):
        circuit = CircuitBuilder(1).h(0).reset(0).measure(0).build()
        engine = ParallelSimulationEngine(num_threads=2)
        counts = engine.run_trajectories(1, circuit, shots=64, seed=5)
        assert counts == {"0": 64}

    def test_chunked_single_qubit_matches_serial(self):
        engine = ParallelSimulationEngine(num_threads=4)
        rng = np.random.default_rng(0)
        n = 17  # large enough to trigger the chunked path
        state = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        state /= np.linalg.norm(state)
        expected = state.copy()
        from repro.simulator.gate_application import apply_single_qubit

        apply_single_qubit(expected, H([0]).matrix(), 5)
        engine.apply_single_qubit_chunked(state, H([0]).matrix(), 5)
        assert np.allclose(state, expected)


class TestCostModel:
    def test_cost_components_positive(self):
        cost = SimulationCostModel().circuit_cost(bell_circuit(2), 1024)
        assert cost.parallel_work > 0
        assert cost.serial_work > 0
        assert cost.locked_work > 0
        assert cost.total_work == pytest.approx(
            cost.parallel_work + cost.serial_work + cost.locked_work
        )

    def test_larger_circuits_cost_more(self):
        model = SimulationCostModel()
        small = model.circuit_cost(period_finding_circuit(7, 2), 10)
        large = model.circuit_cost(period_finding_circuit(15, 2), 10)
        assert large.parallel_work > small.parallel_work

    def test_more_shots_cost_more(self):
        model = SimulationCostModel()
        few = model.circuit_cost(bell_circuit(2), 10)
        many = model.circuit_cost(bell_circuit(2), 10_000)
        assert many.total_work > few.total_work

    def test_gate_cost_scales_with_width(self):
        model = SimulationCostModel()
        assert model.gate_cost(10, 2) > model.gate_cost(10, 1)
        assert model.gate_cost(12, 1) == pytest.approx(2 * model.gate_cost(11, 1))

    def test_scaled(self):
        cost = CircuitCost(10.0, 5.0, 1.0).scaled(2.0)
        assert (cost.parallel_work, cost.serial_work, cost.locked_work) == (20.0, 10.0, 2.0)


class TestChunkedPlanCost:
    def test_below_threshold_sweep_work_is_serial(self):
        """Chunk-parallel replay never engages under the threshold, so the
        chunked model must put every kernel sweep in serial work."""
        from repro.simulator.cost_model import SimulationCostModel
        from repro.simulator.execution_plan import compile_plan

        model = SimulationCostModel()
        plan = compile_plan(bell_circuit(2), 2)
        assert (1 << plan.n_qubits) < model.chunk_threshold
        chunked = model.plan_cost(plan, 64, chunked=True)
        baseline = model.plan_cost(plan, 64)
        # Only the sampling pass parallelises below the threshold.
        sampling = float(1 << plan.n_qubits) + 64 * model.shot_parallel_cost
        assert chunked.parallel_work == pytest.approx(sampling)
        assert chunked.total_work == pytest.approx(baseline.total_work)

    def test_above_threshold_uses_kernel_efficiency_factors(self):
        from repro.simulator.cost_model import (
            DEFAULT_KERNEL_PARALLEL_EFFICIENCY,
            SimulationCostModel,
        )
        from repro.simulator.execution_plan import compile_plan
        from repro.ir.builder import CircuitBuilder

        model = SimulationCostModel(chunk_threshold=4)  # tiny: always chunked
        circuit = CircuitBuilder(3).h(0).cphase(0, 1, 0.4).cx(1, 2).build()
        plan = compile_plan(circuit, 3, optimize=False)
        cost = model.plan_cost(plan, 16, chunked=True)
        expected_parallel = 0.0
        for step in plan.steps:
            work = model.kernel_cost(3, step.kernel, len(step.targets))
            expected_parallel += work * DEFAULT_KERNEL_PARALLEL_EFFICIENCY[step.kernel]
        expected_parallel += float(1 << 3) + 16 * model.shot_parallel_cost
        assert cost.parallel_work == pytest.approx(expected_parallel)

    def test_chunked_total_matches_unchunked_total(self):
        """Chunking redistributes work between parallel and serial buckets;
        it never invents or removes work."""
        from repro.simulator.cost_model import SimulationCostModel
        from repro.simulator.execution_plan import compile_plan
        from repro.algorithms.qft import qft_circuit

        model = SimulationCostModel(chunk_threshold=4)
        plan = compile_plan(qft_circuit(5), 5)
        chunked = model.plan_cost(plan, 256, chunked=True)
        baseline = model.plan_cost(plan, 256)
        assert chunked.total_work == pytest.approx(baseline.total_work)
        assert chunked.parallel_work < baseline.parallel_work  # efficiencies < 1 - serial_fraction


class TestShmProcessPlanCost:
    def test_below_threshold_is_serial_with_no_barrier_cost(self):
        """The shm lane never engages under the chunk threshold, so the
        process model must match the plain serial chunked model exactly."""
        from repro.simulator.cost_model import SimulationCostModel
        from repro.simulator.execution_plan import compile_plan

        model = SimulationCostModel()
        plan = compile_plan(bell_circuit(2), 2)
        assert (1 << plan.n_qubits) < model.chunk_threshold
        process = model.plan_cost(plan, 64, processes=4)
        chunked = model.plan_cost(plan, 64, chunked=True)
        assert process.parallel_work == pytest.approx(chunked.parallel_work)
        assert process.total_work == pytest.approx(chunked.total_work)

    def test_above_threshold_uses_process_efficiency_and_barriers(self):
        from repro.simulator.cost_model import (
            DEFAULT_KERNEL_PROCESS_EFFICIENCY,
            SimulationCostModel,
        )
        from repro.simulator.execution_plan import compile_plan
        from repro.ir.builder import CircuitBuilder

        model = SimulationCostModel(chunk_threshold=4)  # tiny: always engaged
        circuit = CircuitBuilder(3).h(0).cphase(0, 1, 0.4).cx(1, 2).build()
        plan = compile_plan(circuit, 3, optimize=False)
        cost = model.plan_cost(plan, 16, processes=2)
        expected_parallel = 0.0
        expected_barriers = 0.0
        for step in plan.steps:
            work = model.kernel_cost(3, step.kernel, len(step.targets))
            expected_parallel += work * DEFAULT_KERNEL_PROCESS_EFFICIENCY[step.kernel]
            expected_barriers += model.shm_step_barrier_cost * (
                3 if step.kernel == "dense" else 1
            )
        expected_parallel += float(1 << 3) + 16 * model.shot_parallel_cost
        assert cost.parallel_work == pytest.approx(expected_parallel)
        # Sweep work is conserved; the barrier/IPC term is pure extra
        # serial work the thread lane does not pay.
        chunked = model.plan_cost(plan, 16, chunked=True)
        assert cost.total_work == pytest.approx(chunked.total_work + expected_barriers)
        assert cost.serial_work > chunked.serial_work

    def test_dense_steps_pay_three_barriers(self):
        from repro.simulator.cost_model import SimulationCostModel
        from repro.simulator.execution_plan import compile_plan
        from repro.ir.gates import CPhase, UnitaryGate
        from repro.ir.composite import CompositeInstruction

        model = SimulationCostModel(chunk_threshold=4)
        rng = np.random.default_rng(5)
        matrix = np.linalg.qr(
            rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        )[0]
        dense = CompositeInstruction("dense", 3)
        dense.add(UnitaryGate(matrix, [0, 1]))
        diagonal = CompositeInstruction("diag", 3)
        diagonal.add(CPhase([0, 1], [0.3]))
        dense_plan = compile_plan(dense, 3, optimize=False)
        diag_plan = compile_plan(diagonal, 3, optimize=False)
        assert dense_plan.steps[0].kernel == "dense"
        assert diag_plan.steps[0].kernel == "diagonal"
        base = SimulationCostModel(chunk_threshold=4, shm_step_barrier_cost=0.0)
        dense_extra = (
            model.plan_cost(dense_plan, 1, processes=2).serial_work
            - base.plan_cost(dense_plan, 1, processes=2).serial_work
        )
        diag_extra = (
            model.plan_cost(diag_plan, 1, processes=2).serial_work
            - base.plan_cost(diag_plan, 1, processes=2).serial_work
        )
        assert dense_extra == pytest.approx(3 * model.shm_step_barrier_cost)
        assert diag_extra == pytest.approx(model.shm_step_barrier_cost)

    def test_harness_shm_mode_runs(self):
        """BenchmarkHarness(shm_plan_processes=N) gives the process cost
        mode a modeled-mode caller, and the barrier term makes the modeled
        duration strictly longer than the thread-chunked mode on the same
        workload (sub-threshold states: equal; this workload chunks)."""
        from repro.benchmark.harness import BenchmarkHarness
        from repro.benchmark.workloads import bell_workload
        from repro.simulator.cost_model import SimulationCostModel

        model = SimulationCostModel(chunk_threshold=4)
        workload = bell_workload(n_kernels=1, shots=64)
        shm = BenchmarkHarness(
            mode="modeled",
            cost_model=model,
            use_plan_costs=True,
            shm_plan_processes=4,
        ).run_variant(workload, "one-by-one", 4)
        threaded = BenchmarkHarness(
            mode="modeled",
            cost_model=model,
            use_plan_costs=True,
            chunked_plan_costs=True,
        ).run_variant(workload, "one-by-one", 4)
        assert shm.duration > threaded.duration > 0
