"""Fault-tolerant job lifecycle through the public service API.

Deadlines and cancellation (queued and mid-flight), admission control,
breaker-gated graceful degradation of the shard lane, orphan-handle
``result()`` behaviour, and the shutdown-raciness fixes on the shm lane —
all exercised the way a client would see them: through
:class:`QuantumJobService` and :class:`JobHandle`.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.algorithms.bell import bell_circuit
from repro.algorithms.qft import qft_circuit
from repro.cancellation import CancelToken, cancel_scope
from repro.exceptions import (
    AdmissionRejected,
    CompilationError,
    DeadlineExceeded,
    ExecutionError,
    JobCancelled,
)
from repro.exec.shm import SEGMENT_PREFIX, SharedStatePool
from repro.ir.builder import CircuitBuilder
from repro.obs.trace import disable_tracing, enable_tracing
from repro.service import QuantumJobService, job_key
from repro.simulator.execution_plan import compile_plan
from repro.testing import FaultSpec, clear_faults, install_faults


@pytest.fixture(autouse=True)
def no_fault_litter():
    yield
    clear_faults()


def unique_circuit(tag: str, n_qubits: int = 2):
    """A content-distinct circuit per test (global caches are shared)."""
    builder = CircuitBuilder(n_qubits, name=f"life_{tag}")
    builder.h(0)
    for q in range(1, n_qubits):
        builder.cx(q - 1, q)
    builder.rz(0, 0.001 + (hash(tag) % 997) / 997.0)
    builder.measure_all()
    return builder.build()


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_deadline_passed_while_queued_fails_typed(self):
        service = QuantumJobService(
            backend="qpp", workers=1, auto_start=False, name="life-queue-ddl"
        )
        try:
            handle = service.submit(unique_circuit("qddl"), shots=64, deadline=0.05)
            assert handle.spec.deadline is not None
            time.sleep(0.15)
            service.start()
            with pytest.raises(DeadlineExceeded):
                handle.result(timeout=10)
            metrics = service.metrics()
            assert metrics.deadline_exceeded == 1
            assert metrics.failed == 1
            assert metrics.executions == 0  # never reached a backend
        finally:
            service.shutdown()

    def test_deadline_trips_mid_replay(self):
        # A worker stalled right before the replay: the deadline must trip
        # at a step boundary inside the in-flight execution, not after it.
        install_faults(
            [FaultSpec(site="local.replay", action="slow", seconds=0.4)]
        )
        with QuantumJobService(backend="qpp", workers=1, name="life-mid-ddl") as service:
            handle = service.submit(unique_circuit("mddl"), shots=64, deadline=0.15)
            with pytest.raises(DeadlineExceeded):
                handle.result(timeout=10)
            assert service.metrics().deadline_exceeded == 1
            clear_faults()
            # The lane survives the abandoned job.
            ok = service.submit(unique_circuit("mddl2"), shots=64)
            assert sum(ok.result(timeout=10).counts.values()) == 64

    def test_deadline_seconds_option_sets_service_default(self):
        options = {"deadline-seconds": 0.05, "latency-seconds": 0.5}
        service = QuantumJobService(
            backend="qpp",
            workers=1,
            auto_start=False,
            backend_options=options,
            name="life-opt-ddl",
        )
        try:
            handle = service.submit(unique_circuit("optddl"), shots=64)
            assert handle.spec.deadline is not None
            time.sleep(0.15)
            service.start()
            with pytest.raises(DeadlineExceeded):
                handle.result(timeout=10)
        finally:
            service.shutdown()

    def test_invalid_deadline_rejected_at_submit(self):
        with QuantumJobService(backend="qpp", workers=1, name="life-bad-ddl") as service:
            with pytest.raises(ExecutionError):
                service.submit(bell_circuit(), shots=64, deadline=0.0)

    def test_lifecycle_options_do_not_fragment_the_job_key(self):
        circuit = bell_circuit()
        plain = job_key(circuit, "qpp", {})
        tuned = job_key(
            circuit,
            "qpp",
            {
                "deadline-seconds": 1.0,
                "memory-budget-bytes": 1 << 30,
                "admission-wait-seconds": 0.5,
                "breaker-failure-threshold": 5,
                "breaker-cooldown-seconds": 1.0,
                "retry-max-attempts": 4,
            },
        )
        assert plain == tuned


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------


class TestCancellation:
    def test_cancel_before_dispatch_resolves_immediately(self):
        service = QuantumJobService(
            backend="qpp", workers=1, auto_start=False, name="life-cancel-q"
        )
        try:
            handle = service.submit(unique_circuit("cq"), shots=64)
            assert handle.cancel() is True
            with pytest.raises(JobCancelled):
                handle.result(timeout=5)
            service.start()
            deadline = time.time() + 5
            while service.metrics().cancelled < 1 and time.time() < deadline:
                time.sleep(0.01)
            metrics = service.metrics()
            assert metrics.cancelled == 1
            assert metrics.executions == 0
        finally:
            service.shutdown()

    def test_cancel_mid_flight_abandons_cooperatively(self):
        install_faults(
            [FaultSpec(site="local.replay", action="slow", seconds=0.4)]
        )
        with QuantumJobService(backend="qpp", workers=1, name="life-cancel-mid") as service:
            handle = service.submit(unique_circuit("cmid"), shots=64)
            time.sleep(0.1)  # let the dispatcher enter the stalled replay
            assert handle.cancel() is True
            with pytest.raises(JobCancelled):
                handle.result(timeout=10)
            clear_faults()
            ok = service.submit(unique_circuit("cmid2"), shots=64)
            assert sum(ok.result(timeout=10).counts.values()) == 64
            assert service.metrics().cancelled >= 1

    def test_cancel_after_completion_returns_false(self):
        with QuantumJobService(backend="qpp", workers=1, name="life-cancel-late") as service:
            handle = service.submit(unique_circuit("clate"), shots=64)
            handle.result(timeout=10)
            assert handle.cancel() is False
            handle.result(timeout=1)  # still the successful result


# ---------------------------------------------------------------------------
# Orphan handles
# ---------------------------------------------------------------------------


class TestOrphanHandles:
    def test_unbounded_result_raises_when_dispatcher_is_gone(self):
        service = QuantumJobService(
            backend="qpp", workers=1, auto_start=False, name="life-orphan"
        )
        handle = service.submit(unique_circuit("orph"), shots=64)
        # Simulate a dispatcher that died without draining: the liveness
        # probe reports dead while the future stays unresolved.
        handle._service_alive = lambda: False
        with pytest.raises(TimeoutError):
            handle.result()
        service.shutdown()

    def test_shutdown_before_start_fails_pending_jobs(self):
        service = QuantumJobService(
            backend="qpp", workers=1, auto_start=False, name="life-unstarted"
        )
        handle = service.submit(unique_circuit("unst"), shots=64)
        service.shutdown()
        with pytest.raises(ExecutionError):
            handle.result(timeout=5)

    def test_liveness_probe_tracks_pool_state(self):
        service = QuantumJobService(backend="qpp", workers=1, name="life-probe")
        service.start()
        assert service._can_resolve()
        service.shutdown()
        assert not service._can_resolve()


# ---------------------------------------------------------------------------
# Admission through the service
# ---------------------------------------------------------------------------


class TestServiceAdmission:
    def test_oversized_job_rejected_with_accounting(self):
        with QuantumJobService(
            backend="qpp", workers=1, memory_budget_bytes=1024, name="life-adm"
        ) as service:
            handle = service.submit(unique_circuit("adm", n_qubits=8), shots=64)
            with pytest.raises(AdmissionRejected) as info:
                handle.result(timeout=10)
            assert info.value.requested_bytes > info.value.budget_bytes
            metrics = service.metrics()
            assert metrics.admission_rejected == 1
            assert metrics.admission_budget_bytes == 1024

    def test_budgeted_service_serves_fitting_jobs(self):
        with QuantumJobService(
            backend="qpp",
            workers=2,
            memory_budget_bytes=256 * 1024 * 1024,
            name="life-adm-ok",
        ) as service:
            handles = [
                service.submit(unique_circuit(f"admok{i}"), shots=64)
                for i in range(4)
            ]
            for handle in handles:
                assert sum(handle.result(timeout=10).counts.values()) == 64
            assert service.metrics().admission_rejected == 0

    def test_memory_budget_via_backend_options(self):
        options = {"memory-budget-bytes": 2048, "admission-wait-seconds": 0.1}
        with QuantumJobService(
            backend="qpp", workers=1, backend_options=options, name="life-adm-opt"
        ) as service:
            assert service.admission.budget_bytes == 2048
            assert service.admission.max_wait == pytest.approx(0.1)


# ---------------------------------------------------------------------------
# Breaker-gated shard lane degradation
# ---------------------------------------------------------------------------


class TestBreakerDegradation:
    def test_shard_lane_falls_back_in_process_and_trips(self):
        # Every shard attempt dies: the retry budget exhausts, the breaker
        # records the infrastructure failure, and the batch still completes
        # on the dispatcher's in-process clone — correct but slower.
        install_faults(
            [
                FaultSpec(
                    site="sharded.worker.replay",
                    action="kill",
                    times=None,
                    scope="global",
                )
            ]
        )
        service = QuantumJobService(
            backend="qpp",
            workers=1,
            processes=2,
            backend_options={"breaker-failure-threshold": 1},
            name="life-breaker",
        )
        try:
            handle = service.submit(unique_circuit("brk"), shots=64)
            result = handle.result(timeout=60)
            assert sum(result.counts.values()) == 64
            metrics = service.metrics()
            assert metrics.breaker_fallbacks >= 1
            assert metrics.breaker_state == "open"
            assert metrics.breaker_trips >= 1
            assert service.breaker.state == "open"
            clear_faults()
            # Open breaker: the next batch skips the lane without trying.
            before = metrics.breaker_fallbacks
            ok = service.submit(unique_circuit("brk2"), shots=64)
            assert sum(ok.result(timeout=30).counts.values()) == 64
            metrics = service.metrics()
            assert metrics.breaker_fallbacks > before
            assert metrics.sharded_executions == 0
        finally:
            clear_faults()
            service.shutdown()

    def test_job_shaped_failures_do_not_feed_the_breaker(self):
        # A circuit that cannot compile fails the job, not the lane.
        install_faults(
            [
                FaultSpec(
                    site="sharded.worker.compile",
                    action="fail",
                    kind="compile",
                    times=None,
                    scope="global",
                )
            ]
        )
        service = QuantumJobService(
            backend="qpp",
            workers=1,
            processes=2,
            backend_options={"breaker-failure-threshold": 1},
            name="life-breaker-job",
        )
        try:
            handle = service.submit(unique_circuit("brkjob"), shots=64)
            with pytest.raises(CompilationError):
                handle.result(timeout=30)
            assert service.breaker.state == "closed"
            assert service.metrics().breaker_fallbacks == 0
        finally:
            clear_faults()
            service.shutdown()


# ---------------------------------------------------------------------------
# Error-tagged trace trees
# ---------------------------------------------------------------------------


class TestLifecycleTracing:
    def test_failed_job_root_span_is_error_tagged(self):
        tracer = enable_tracing()
        try:
            with QuantumJobService(backend="qpp", workers=1, name="life-trace") as service:
                handle = service.submit(
                    unique_circuit("trace"), shots=64, deadline=120.0
                )
                handle.result(timeout=10)
                cancelled = service.submit(unique_circuit("trace2"), shots=64)
                cancelled.cancel()
                time.sleep(0.3)  # let the dispatcher triage and close spans
                roots = [
                    s
                    for s in tracer.spans(cancelled.trace_id)
                    if s.name == "job"
                ]
                assert roots and roots[0].error is not None
                ok_roots = [
                    s for s in tracer.spans(handle.trace_id) if s.name == "job"
                ]
                assert ok_roots and ok_roots[0].error is None
        finally:
            disable_tracing()


# ---------------------------------------------------------------------------
# Shutdown raciness (shm lane)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory required"
)
class TestShmShutdownRaciness:
    @pytest.fixture(autouse=True)
    def no_segment_litter(self):
        before = sorted(
            f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)
        )
        yield
        after = sorted(
            f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)
        )
        assert after == before

    def test_double_close_is_idempotent(self):
        plan = compile_plan(qft_circuit(6), 6, chunk_threshold=2)
        pool = SharedStatePool(2, name="race-double")
        plan.execute(plan.new_state(), pool=pool)
        pool.close()
        pool.close()  # second close must be a clean no-op
        assert pool.closed

    def test_close_mid_replay_aborts_barrier_before_unlinking(self):
        # Workers crawl through the plan (50 ms per step); close() lands
        # mid-replay.  The barrier must abort first — waking the workers —
        # and only then may segments unlink; the replay thread gets a
        # typed error, not a hang or a SIGBUS on an unlinked mapping.
        install_faults(
            [
                FaultSpec(
                    site="shm.worker.step",
                    action="slow",
                    seconds=0.05,
                    times=None,
                )
            ]
        )
        plan = compile_plan(qft_circuit(7), 7, chunk_threshold=2)
        pool = SharedStatePool(2, name="race-mid")
        outcome = {}

        def replay():
            try:
                plan.execute(plan.new_state(), pool=pool)
                outcome["result"] = "completed"
            except ExecutionError as exc:
                outcome["result"] = f"typed:{exc}"
            except BaseException as exc:  # pragma: no cover - diagnostics
                outcome["result"] = f"untyped:{type(exc).__name__}"

        thread = threading.Thread(target=replay)
        thread.start()
        time.sleep(0.3)  # replay is mid-flight, workers inside the barrier loop
        pool.close()
        thread.join(timeout=30)
        assert not thread.is_alive(), "replay thread hung across close()"
        assert outcome["result"].startswith("typed:")
        assert "mid-replay" in outcome["result"]
        assert pool.closed

    def test_close_mid_replay_leaves_no_orphan_workers(self):
        import multiprocessing

        install_faults(
            [
                FaultSpec(
                    site="shm.worker.step",
                    action="slow",
                    seconds=0.05,
                    times=None,
                )
            ]
        )
        before = {p.pid for p in multiprocessing.active_children()}
        plan = compile_plan(qft_circuit(7), 7, chunk_threshold=2)
        pool = SharedStatePool(2, name="race-orphan")
        thread = threading.Thread(
            target=lambda: _swallow(plan, pool)
        )
        thread.start()
        time.sleep(0.3)
        pool.close()
        thread.join(timeout=30)
        deadline = time.time() + 10
        while time.time() < deadline:
            lingering = {
                p.pid for p in multiprocessing.active_children()
            } - before
            if not lingering:
                break
            time.sleep(0.05)
        assert not lingering


def _swallow(plan, pool):
    try:
        plan.execute(plan.new_state(), pool=pool)
    except Exception:
        pass
