"""Tests for the @qpu kernel decorator and the tracing DSL."""

import threading

import pytest

from repro import qalloc
from repro.compiler import dsl
from repro.compiler.dsl import CX, H, Measure, Ry, X, active_trace, trace_context
from repro.compiler.kernel import QuantumKernel, qpu
from repro.exceptions import CompilationError
from repro.ir.parameter import Parameter


@qpu
def bell(q):
    H(q[0])
    CX(q[0], q[1])
    for i in range(q.size()):
        Measure(q[i])


@qpu
def ansatz(q, theta):
    X(q[0])
    Ry(q[1], theta)
    CX(q[1], q[0])


class TestTracing:
    def test_as_circuit_with_integer_register(self):
        circuit = bell.as_circuit(2)
        assert [i.name for i in circuit] == ["H", "CX", "MEASURE", "MEASURE"]

    def test_as_circuit_with_qreg(self):
        q = qalloc(2)
        circuit = bell.as_circuit(q)
        assert circuit.n_qubits == 2

    def test_classical_arguments_become_gate_parameters(self):
        circuit = ansatz.as_circuit(2, 0.4)
        assert circuit[1].name == "RY"
        assert circuit[1].parameters[0] == pytest.approx(0.4)

    def test_symbolic_arguments_stay_symbolic(self):
        circuit = ansatz.as_circuit(2, Parameter("theta"))
        assert circuit.is_parameterized

    def test_adjoint_strips_measurements_and_reverses(self):
        inverse = bell.adjoint(2)
        assert [i.name for i in inverse] == ["CX", "H"]

    def test_xasm_rendering(self):
        assert "H(q[0]);" in bell.xasm(2)

    def test_gate_call_outside_kernel_raises(self):
        with pytest.raises(CompilationError):
            H(0)

    def test_active_trace_is_none_outside_kernel(self):
        assert active_trace() is None

    def test_trace_context_restores_previous_trace(self):
        with trace_context("outer", 1) as outer:
            H(0)
            with trace_context("inner", 1) as inner:
                X(0)
            H(0)
        assert [i.name for i in outer] == ["H", "H"]
        assert [i.name for i in inner] == ["X"]

    def test_traces_are_thread_local(self):
        errors = []

        def per_thread(name):
            try:
                with trace_context(name, 1) as circuit:
                    for _ in range(50):
                        H(0)
                    assert len(circuit) == 50
            except Exception as exc:  # pragma: no cover - captured for assertion
                errors.append(exc)

        threads = [threading.Thread(target=per_thread, args=(f"t{i}",)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_tracing_register_bounds_checked(self):
        @qpu
        def bad(q):
            H(q[5])

        with pytest.raises(CompilationError):
            bad.as_circuit(2)


class TestExecution:
    def test_calling_kernel_executes_and_fills_register(self):
        q = qalloc(2)
        counts = bell(q, shots=256)
        assert sum(counts.values()) == 256
        assert set(counts) <= {"00", "11"}
        assert q.counts() == counts

    def test_execution_count_increments(self):
        q = qalloc(2)
        before = bell.execution_count
        bell(q, shots=16)
        assert bell.execution_count == before + 1

    def test_first_argument_must_be_qreg(self):
        with pytest.raises(CompilationError):
            bell(2)  # type: ignore[arg-type]

    def test_dsl_exports_every_documented_gate(self):
        for name in dsl.__all__:
            assert hasattr(dsl, name)


class TestXasmSourceKernels:
    def test_kernel_from_source(self):
        kernel = qpu(source="H(q[0]); CX(q[0], q[1]); Measure(q[0]); Measure(q[1]);", name="bell_src")
        circuit = kernel.as_circuit(2)
        assert [i.name for i in circuit] == ["H", "CX", "MEASURE", "MEASURE"]

    def test_kernel_requires_body_or_source(self):
        with pytest.raises(CompilationError):
            QuantumKernel()

    def test_repr_mentions_origin(self):
        assert "python" in repr(bell)
        assert "xasm" in repr(qpu(source="H(q[0]);"))
