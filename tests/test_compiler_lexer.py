"""Tests for the XASM lexer."""

import pytest

from repro.compiler.lexer import Token, tokenize
from repro.exceptions import CompilationError


def types(source: str) -> list[str]:
    return [t.type for t in tokenize(source)]


def values(source: str) -> list[str]:
    return [t.value for t in tokenize(source) if t.type != "EOF"]


class TestTokenization:
    def test_simple_gate_call(self):
        assert types("H(q[0]);") == [
            "IDENT",
            "LPAREN",
            "IDENT",
            "LBRACKET",
            "NUMBER",
            "RBRACKET",
            "RPAREN",
            "SEMICOLON",
            "EOF",
        ]

    def test_numbers_integer_float_exponent(self):
        assert values("1 2.5 1e-3 0.5e2") == ["1", "2.5", "1e-3", "0.5e2"]

    def test_operators(self):
        assert types("+ - * / % < <= > >= == = ++ --")[:-1] == [
            "PLUS",
            "MINUS",
            "STAR",
            "SLASH",
            "PERCENT",
            "LT",
            "LE",
            "GT",
            "GE",
            "EQ",
            "ASSIGN",
            "INCREMENT",
            "DECREMENT",
        ]

    def test_comments_skipped(self):
        assert values("H(q[0]); // a comment\nX(q[1]);")[:1] == ["H"]
        assert "comment" not in " ".join(values("H(q[0]); // a comment"))

    def test_line_and_column_positions(self):
        tokens = tokenize("H(q[0]);\n  CX(q[0], q[1]);")
        cx = next(t for t in tokens if t.value == "CX")
        assert cx.line == 2
        assert cx.column == 3

    def test_identifiers_with_underscores(self):
        assert values("my_angle_2")[0] == "my_angle_2"

    def test_unexpected_character_raises_with_location(self):
        with pytest.raises(CompilationError) as excinfo:
            tokenize("H(q[0]); @")
        assert excinfo.value.line == 1

    def test_always_ends_with_eof(self):
        assert tokenize("")[-1].type == "EOF"
        assert tokenize("H(q[0]);")[-1].type == "EOF"

    def test_token_repr(self):
        token = Token("IDENT", "H", 1, 1)
        assert "IDENT" in repr(token)
