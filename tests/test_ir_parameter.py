"""Tests for symbolic parameters and affine parameter expressions."""

import math

import pytest

from repro.exceptions import ParameterBindingError
from repro.ir.parameter import Parameter, ParameterExpression, bind_value


class TestParameter:
    def test_equality_is_by_name(self):
        assert Parameter("theta") == Parameter("theta")
        assert Parameter("theta") != Parameter("phi")

    def test_hash_consistent_with_equality(self):
        assert hash(Parameter("x")) == hash(Parameter("x"))
        assert len({Parameter("x"), Parameter("x"), Parameter("y")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterBindingError):
            Parameter("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ParameterBindingError):
            Parameter(3)  # type: ignore[arg-type]

    def test_bind_returns_value(self):
        assert Parameter("theta").bind({"theta": 0.5}) == 0.5

    def test_bind_missing_value_raises(self):
        with pytest.raises(ParameterBindingError):
            Parameter("theta").bind({"phi": 0.5})

    def test_repr_is_name(self):
        assert repr(Parameter("theta")) == "theta"

    def test_parameters_property(self):
        p = Parameter("a")
        assert p.parameters == frozenset({p})


class TestParameterExpression:
    def test_scale_via_multiplication(self):
        expr = 2.0 * Parameter("theta")
        assert isinstance(expr, ParameterExpression)
        assert expr.bind({"theta": 3.0}) == pytest.approx(6.0)

    def test_right_and_left_multiplication_agree(self):
        theta = Parameter("theta")
        assert (theta * 2.0).bind({"theta": 1.5}) == (2.0 * theta).bind({"theta": 1.5})

    def test_offset_via_addition(self):
        expr = Parameter("theta") + 1.0
        assert expr.bind({"theta": 0.25}) == pytest.approx(1.25)

    def test_subtraction_both_sides(self):
        theta = Parameter("theta")
        assert (theta - 1.0).bind({"theta": 3.0}) == pytest.approx(2.0)
        assert (1.0 - theta).bind({"theta": 3.0}) == pytest.approx(-2.0)

    def test_negation(self):
        assert (-Parameter("x")).bind({"x": 2.0}) == pytest.approx(-2.0)

    def test_division(self):
        assert (Parameter("x") / 4).bind({"x": 2.0}) == pytest.approx(0.5)

    def test_division_by_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            Parameter("x") / 0

    def test_chained_affine_composition(self):
        expr = (2.0 * Parameter("theta") + 1.0) * 3.0
        assert expr.bind({"theta": 1.0}) == pytest.approx(9.0)

    def test_expression_equality(self):
        a = 2.0 * Parameter("t") + 1.0
        b = 2.0 * Parameter("t") + 1.0
        assert a == b
        assert hash(a) == hash(b)

    def test_bind_missing_raises(self):
        with pytest.raises(ParameterBindingError):
            (2 * Parameter("t")).bind({})

    def test_repr_mentions_parameter(self):
        assert "theta" in repr(2.0 * Parameter("theta") + 0.5)


class TestBindValue:
    def test_floats_pass_through(self):
        assert bind_value(1.5) == 1.5
        assert bind_value(2) == 2.0

    def test_symbolic_values_bound(self):
        assert bind_value(Parameter("a"), {"a": math.pi}) == pytest.approx(math.pi)
        assert bind_value(2 * Parameter("a"), {"a": 1.0}) == pytest.approx(2.0)

    def test_unsupported_type_rejected(self):
        with pytest.raises(ParameterBindingError):
            bind_value("not-a-parameter")  # type: ignore[arg-type]
