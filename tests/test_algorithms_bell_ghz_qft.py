"""Tests for the Bell, GHZ and QFT kernels."""

import numpy as np
import pytest

from repro.algorithms.bell import bell_circuit, bell_kernel, run_bell
from repro.algorithms.ghz import ghz_circuit, run_ghz
from repro.algorithms.qft import inverse_qft_circuit, qft_circuit
from repro.core.api import qalloc
from repro.exceptions import IRError
from repro.simulator.statevector import StateVector


class TestBell:
    def test_circuit_structure_matches_listing1(self):
        circuit = bell_circuit(2)
        assert [i.name for i in circuit] == ["H", "CX", "MEASURE", "MEASURE"]

    def test_kernel_and_circuit_agree(self):
        assert bell_kernel.as_circuit(2) == bell_circuit(2)

    def test_run_bell_produces_correlated_counts(self):
        counts = run_bell(shots=1024)
        assert set(counts) <= {"00", "11"}
        assert sum(counts.values()) == 1024
        # Listing 2 of the paper: roughly 50/50.
        assert abs(counts.get("00", 0) - 512) < 120

    def test_run_bell_with_existing_register(self):
        q = qalloc(2)
        counts = run_bell(q, shots=64)
        assert q.counts() == counts

    def test_wider_bell_chain(self):
        circuit = bell_circuit(4).without_measurements()
        state = StateVector(4)
        state.apply_circuit(circuit)
        probs = state.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(0.5)


class TestGHZ:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_ghz_state_concentrates_on_extremes(self, n):
        state = StateVector(n)
        state.apply_circuit(ghz_circuit(n, measure=False))
        probs = state.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(0.5)

    def test_run_ghz_counts(self):
        counts = run_ghz(3, shots=256)
        assert set(counts) <= {"000", "111"}
        assert sum(counts.values()) == 256

    def test_measure_flag(self):
        assert ghz_circuit(3, measure=False).n_measurements == 0
        assert ghz_circuit(3, measure=True).n_measurements == 3


class TestQFT:
    def test_qft_matches_dft_matrix(self):
        n = 3
        unitary = qft_circuit(n).to_unitary()
        dim = 1 << n
        omega = np.exp(2j * np.pi / dim)
        dft = np.array([[omega ** (j * k) for k in range(dim)] for j in range(dim)]) / np.sqrt(dim)
        assert np.allclose(unitary, dft, atol=1e-10)

    def test_inverse_qft_is_adjoint(self):
        n = 4
        forward = qft_circuit(n).to_unitary()
        backward = inverse_qft_circuit(n).to_unitary()
        assert np.allclose(backward @ forward, np.eye(1 << n), atol=1e-10)

    def test_qft_over_custom_qubit_subset(self):
        circuit = qft_circuit([2, 3])
        assert circuit.qubits_used() == frozenset({2, 3})

    def test_qft_requires_at_least_one_qubit(self):
        with pytest.raises(IRError):
            qft_circuit([])

    def test_qft_on_basis_state_gives_uniform_distribution(self):
        state = StateVector(3)
        state.apply_circuit(qft_circuit(3))
        assert np.allclose(state.probabilities(), np.full(8, 1 / 8), atol=1e-10)
