"""Tests for WorkerPool and OpenMP-style helpers."""

import os
import threading

import pytest

from repro.config import get_config, set_config
from repro.exceptions import ConfigurationError
from repro.parallel.pool import WorkerPool, omp_get_max_threads, omp_set_num_threads


class TestOmpHelpers:
    def test_get_max_threads_reads_config(self):
        set_config(omp_num_threads=5)
        assert omp_get_max_threads() == 5

    def test_set_num_threads_updates_config_and_env(self):
        omp_set_num_threads(3)
        assert get_config().omp_num_threads == 3
        assert os.environ.get("OMP_NUM_THREADS") == "3"


class TestWorkerPool:
    def test_map_preserves_order(self):
        with WorkerPool(4) as pool:
            assert pool.map(lambda x: x * x, range(10)) == [x * x for x in range(10)]

    def test_starmap(self):
        with WorkerPool(2) as pool:
            assert pool.starmap(lambda a, b: a + b, [(1, 2), (3, 4), (5, 6)]) == [3, 7, 11]

    def test_submit_returns_future(self):
        with WorkerPool(1) as pool:
            assert pool.submit(lambda: 7).result(timeout=10) == 7

    def test_imap_unordered_returns_all_results(self):
        with WorkerPool(4) as pool:
            results = set(pool.imap_unordered(lambda x: x + 1, range(8)))
        assert results == set(range(1, 9))

    def test_exceptions_propagate_from_map(self):
        def boom(x):
            raise RuntimeError("nope")

        with WorkerPool(2) as pool:
            with pytest.raises(RuntimeError):
                pool.map(boom, [1])

    def test_pool_size_defaults_to_config(self):
        set_config(omp_num_threads=6)
        assert WorkerPool().num_workers == 6

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)
        with pytest.raises(ConfigurationError):
            WorkerPool(2, kind="fiber")

    def test_thread_pool_actually_uses_multiple_threads(self):
        seen = set()
        barrier = threading.Barrier(4)

        def record(_):
            barrier.wait(timeout=10)
            seen.add(threading.get_ident())
            return True

        with WorkerPool(4) as pool:
            pool.map(record, range(4))
        assert len(seen) == 4

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(1)
        pool.submit(lambda: 1).result(timeout=10)
        pool.shutdown()
        pool.shutdown()

    def test_repr(self):
        assert "thread" in repr(WorkerPool(2))
