"""Tests for the OpenQASM 2 subset parser/exporter."""

import math

import pytest

from repro.compiler.qasm2 import parse_qasm2, to_qasm2
from repro.exceptions import CompilationError
from repro.ir.builder import CircuitBuilder

BELL_QASM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
"""


class TestParsing:
    def test_bell_program(self):
        circuit = parse_qasm2(BELL_QASM)
        assert [i.name for i in circuit] == ["H", "CX", "MEASURE", "MEASURE"]
        assert circuit.n_qubits == 2

    def test_parameterized_gates(self):
        circuit = parse_qasm2("qreg q[1]; rx(0.5) q[0]; rz(pi/2) q[0];")
        assert circuit[0].parameters[0] == pytest.approx(0.5)
        assert circuit[1].parameters[0] == pytest.approx(math.pi / 2)

    def test_measure_whole_register(self):
        circuit = parse_qasm2("qreg q[3]; creg c[3]; h q[0]; measure q -> c;")
        assert circuit.n_measurements == 3

    def test_barrier(self):
        circuit = parse_qasm2("qreg q[2]; h q[0]; barrier q[0], q[1]; cx q[0], q[1];")
        assert circuit[1].name == "BARRIER"

    def test_comments_and_blank_lines(self):
        circuit = parse_qasm2("// bell\nqreg q[2];\n\nh q[0]; // superpose\ncx q[0], q[1];")
        assert len(circuit) == 2

    def test_unknown_gate_rejected(self):
        with pytest.raises(CompilationError):
            parse_qasm2("qreg q[1]; frobnicate q[0];")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(CompilationError):
            parse_qasm2("qreg q[2]; h q[5];")

    def test_gate_before_register_rejected(self):
        with pytest.raises(CompilationError):
            parse_qasm2("h q[0]; qreg q[1];")

    def test_custom_gate_definition_rejected(self):
        with pytest.raises(CompilationError):
            parse_qasm2("qreg q[1]; gate mygate a { h a; }")

    def test_no_register_rejected(self):
        with pytest.raises(CompilationError):
            parse_qasm2("OPENQASM 2.0;")

    def test_multiple_registers_are_laid_out_consecutively(self):
        circuit = parse_qasm2("qreg a[2]; qreg b[2]; cx a[1], b[0];")
        assert circuit[0].qubits == (1, 2)


class TestExportRoundTrip:
    def test_export_contains_declarations(self):
        circuit = CircuitBuilder(2).h(0).cx(0, 1).measure_all().build()
        text = to_qasm2(circuit)
        assert "OPENQASM 2.0;" in text
        assert "qreg q[2];" in text
        assert "h q[0];" in text
        assert "measure q[1] -> c[1];" in text

    def test_round_trip_preserves_structure(self):
        circuit = (
            CircuitBuilder(3)
            .h(0)
            .cx(0, 1)
            .rz(2, 0.25)
            .ccx(0, 1, 2)
            .swap(1, 2)
            .measure_all()
            .build()
        )
        restored = parse_qasm2(to_qasm2(circuit))
        assert [i.name for i in restored] == [i.name for i in circuit]
        assert [i.qubits for i in restored] == [i.qubits for i in circuit]

    def test_export_rejects_symbolic_circuits(self):
        from repro.ir.parameter import Parameter

        circuit = CircuitBuilder(1).rx(0, Parameter("t")).build()
        with pytest.raises(CompilationError):
            to_qasm2(circuit)

    def test_export_rejects_gates_without_qasm_equivalent(self):
        import numpy as np

        circuit = CircuitBuilder(1).unitary(np.eye(2), [0]).build()
        with pytest.raises(CompilationError):
            to_qasm2(circuit)
