"""Tests for structured tracing (:mod:`repro.obs.trace`).

The load-bearing properties: zero-allocation no-ops when tracing is off,
parent/child linkage through the ambient context, explicit cross-thread
hand-off, sampled-out traces staying sampled out downstream, and the wire
round-trip workers use to ship spans across process boundaries.
"""

import threading

import pytest

from repro.obs import (
    Span,
    TraceContext,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
)
from repro.obs.trace import NOOP_SPAN


class TestDisabledTracer:
    def test_disabled_tracer_returns_the_shared_noop_span(self):
        tracer = Tracer()
        span = tracer.span("anything")
        assert span is NOOP_SPAN
        assert not span.recording
        assert span.context() is None

    def test_noop_span_absorbs_the_full_span_api(self):
        with Tracer().span("noop") as span:
            span.set_attribute("k", 1)
            span.mark_error("ignored")
        span.finish()  # idempotent, no error

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.spans() == []


class TestSpanTree:
    def test_nested_spans_form_one_tree(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert child.trace_id == root.trace_id == grandchild.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert {s.name for s in tracer.spans(root.trace_id)} == {
            "root",
            "child",
            "grandchild",
        }

    def test_ambient_context_restored_on_exit(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
            # Back at root level: a new span is root's child, not child's.
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == root.span_id
        assert tracer.current_context() is None

    def test_exception_marks_the_span_as_error(self):
        tracer = Tracer()
        tracer.enable()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("payload")
        (span,) = tracer.spans()
        assert span.error == "ValueError: payload"

    def test_attributes_and_explicit_error(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("op", attrs={"shots": 64}) as span:
            span.set_attribute("cached", True)
            span.mark_error("custom")
        assert span.attributes == {"shots": 64, "cached": True}
        assert span.error == "custom"

    def test_render_tree_shows_nesting_and_errors(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("job") as root:
            with tracer.span("replay") as replay:
                replay.mark_error("died")
        text = tracer.render_tree(root.trace_id)
        lines = text.splitlines()
        assert lines[0].startswith("job")
        assert lines[1].startswith("  replay")
        assert "[ERROR]" in lines[1]


class TestParentSemantics:
    def test_explicit_none_parent_is_a_noop(self):
        """A caller with an *empty* parent slot must not start a fresh trace
        — that is how sampled-out traces stay sampled out downstream."""
        tracer = Tracer()
        tracer.enable()
        assert tracer.span("child-of-nothing", parent=None) is NOOP_SPAN

    def test_explicit_remote_parent_records_even_when_disabled(self):
        """Worker processes never enable their tracer; shipping a context
        is the admission decision."""
        tracer = Tracer()
        assert not tracer.enabled
        ctx = TraceContext("t" * 16, "s" * 16)
        with tracer.span("worker-op", parent=ctx) as span:
            pass
        assert span.recording
        assert span.trace_id == ctx.trace_id
        assert span.parent_id == ctx.span_id

    def test_sampling_zero_admits_no_roots(self):
        tracer = Tracer()
        tracer.enable(sample_rate=0.0)
        assert all(tracer.span("try") is NOOP_SPAN for _ in range(32))

    def test_sample_rate_validation(self):
        with pytest.raises(ValueError):
            Tracer().enable(sample_rate=1.5)


class TestCrossThread:
    def test_activate_hands_context_to_another_thread(self):
        tracer = Tracer()
        tracer.enable()
        root = tracer.span("root")
        seen = {}

        def worker():
            # No implicit inheritance: the dispatcher thread starts clean.
            seen["before"] = tracer.current_context()
            with tracer.activate(root.context()):
                with tracer.span("on-thread") as span:
                    seen["span"] = span

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        root.finish()
        assert seen["before"] is None
        assert seen["span"].parent_id == root.span_id
        assert seen["span"].trace_id == root.trace_id

    def test_activate_none_is_a_noop(self):
        tracer = Tracer()
        with tracer.activate(None):
            assert tracer.current_context() is None


class TestWireAndStitching:
    def test_trace_context_wire_round_trip(self):
        ctx = TraceContext("abc123", "def456")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({}) is None
        assert TraceContext.from_wire({"trace_id": "x"}) is None

    def test_span_dict_round_trip(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("op", attrs={"n": 3}) as span:
            span.mark_error("e")
        clone = Span.from_dict(span.to_dict())
        assert clone.name == span.name
        assert clone.trace_id == span.trace_id
        assert clone.span_id == span.span_id
        assert clone.parent_id == span.parent_id
        assert clone.attributes == span.attributes
        assert clone.error == span.error
        assert clone.duration == span.duration

    def test_capture_collects_finished_spans_for_shipping(self):
        tracer = Tracer()
        ctx = TraceContext("t" * 16, "s" * 16)
        with tracer.capture() as sink:
            with tracer.span("worker", parent=ctx):
                with tracer.span("inner"):
                    pass
        assert {s.name for s in sink} == {"worker", "inner"}

    def test_ingest_stitches_worker_spans_into_the_parent_buffer(self):
        parent = Tracer()
        parent.enable()
        root = parent.span("job")

        worker = Tracer()  # separate process stand-in: never enabled
        with worker.capture() as sink:
            with worker.span("remote", parent=root.context()):
                pass
        payloads = [s.to_dict() for s in sink]
        root.finish()

        stitched = parent.ingest(payloads)
        names = {s.name for s in parent.spans(root.trace_id)}
        assert names == {"job", "remote"}
        assert stitched[0].parent_id == root.span_id

    def test_nested_captures_both_see_ingested_spans(self):
        """Two-hop shipping: a shard worker's sink must include spans its
        own shm pool ingested, so they travel one more hop up."""
        tracer = Tracer()
        ctx = TraceContext("t" * 16, "s" * 16)
        payload = {
            "name": "shm-step",
            "trace_id": ctx.trace_id,
            "span_id": "x" * 16,
            "parent_id": ctx.span_id,
            "start_wall": 1.0,
            "duration": 0.5,
        }
        with tracer.capture() as outer:
            with tracer.capture() as inner:
                tracer.ingest([payload])
        assert [s.name for s in inner] == ["shm-step"]
        assert [s.name for s in outer] == ["shm-step"]

    def test_record_writes_a_retroactive_span(self):
        tracer = Tracer()
        tracer.enable()
        root = tracer.span("job")
        span = tracer.record(
            "queue-wait",
            parent=root.context(),
            start_wall=123.0,
            duration=0.25,
            attrs={"depth": 2},
        )
        root.finish()
        assert span.start_wall == 123.0
        assert span.duration == 0.25
        assert span.parent_id == root.span_id
        assert tracer.record(
            "nothing", parent=None, start_wall=0.0, duration=0.0
        ) is NOOP_SPAN


class TestModuleLevelSwitches:
    def test_enable_disable_round_trip(self):
        tracer = enable_tracing()
        assert tracer is get_tracer()
        assert tracer.enabled
        disable_tracing()
        assert not tracer.enabled

    def test_buffer_is_bounded(self):
        tracer = Tracer(capacity=4)
        tracer.enable()
        for i in range(10):
            tracer.span(f"s{i}").finish()
        assert len(tracer.spans()) == 4
        assert tracer.spans()[-1].name == "s9"

    def test_trace_ids_lists_distinct_traces_in_order(self):
        tracer = Tracer()
        tracer.enable()
        a = tracer.span("a")
        a.finish()
        b = tracer.span("b")
        b.finish()
        assert tracer.trace_ids() == [a.trace_id, b.trace_id]
