"""Tests for the unified execution-backend layer (in-process side).

Covers the :class:`ExecutionBackend` protocol, :class:`LocalBackend` as the
canonical in-process seam, :class:`DensityBackend` behind the noisy
accelerator, the accelerator adapters, and the plan-aware cost model.
"""

import numpy as np
import pytest

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.algorithms.vqe import deuteron_ansatz_circuit, deuteron_hamiltonian
from repro.benchmark.harness import BenchmarkHarness
from repro.benchmark.workloads import Workload
from repro.config import set_config
from repro.core.executor import KernelTask, run_one_by_one
from repro.exceptions import ExecutionError
from repro.exec import DensityBackend, ExecutionResult, LocalBackend
from repro.ir.builder import CircuitBuilder
from repro.runtime.buffer import AcceleratorBuffer
from repro.runtime.noisy_accelerator import NoisyAccelerator
from repro.runtime.qpp_accelerator import QppAccelerator
from repro.simulator.cost_model import (
    DEFAULT_KERNEL_COST_FACTORS,
    SimulationCostModel,
)
from repro.simulator.execution_plan import compile_parametric_plan, compile_plan
from repro.simulator.parallel_engine import ParallelSimulationEngine
from repro.simulator.plan_cache import reset_plan_cache


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    reset_plan_cache()
    yield
    reset_plan_cache()


class TestExecutionResult:
    def test_total_counts(self):
        result = ExecutionResult(
            counts={"00": 3, "11": 5}, shots=8, n_qubits=2, backend="local"
        )
        assert result.total_counts() == 8
        assert result.shards == 1 and result.retries == 0

    def test_rejects_non_positive_shots(self):
        with pytest.raises(ValueError):
            ExecutionResult(counts={}, shots=0, n_qubits=1, backend="local")


class TestLocalBackend:
    def test_execute_matches_accelerator_path(self):
        set_config(seed=99)
        circuit = ghz_circuit(4)
        backend = LocalBackend(engine=ParallelSimulationEngine(num_threads=1))
        result = backend.execute(circuit, 512, seed=99)

        qpu = QppAccelerator({"threads": 1})
        buffer = AcceleratorBuffer(4)
        qpu.execute(buffer, circuit, shots=512)
        assert dict(result.counts) == buffer.get_measurement_counts()
        assert result.shots == 512 and result.n_qubits == 4
        assert result.backend == "local" and result.shards == 1

    def test_compile_returns_cached_plan(self):
        backend = LocalBackend()
        circuit = bell_circuit(2)
        plan = backend.compile(circuit)
        assert plan is backend.compile(circuit)
        result = backend.execute(circuit, 64, seed=1)
        assert result.plan_cached  # compile() warmed the cache

    def test_parametric_execution_requires_params(self):
        backend = LocalBackend()
        ansatz = deuteron_ansatz_circuit()  # symbolic theta
        with pytest.raises(ExecutionError, match="unbound"):
            backend.execute(ansatz, 32)
        result = backend.execute(ansatz, 32, seed=0, params=[0.5])
        assert result.total_counts() == 32

    def test_trajectory_path_for_reset_circuits(self):
        builder = CircuitBuilder(2, name="rst")
        builder.h(0)
        builder.reset(0)
        builder.h(1)
        builder.measure(0)
        builder.measure(1)
        circuit = builder.build()
        backend = LocalBackend(engine=ParallelSimulationEngine(num_threads=1))
        result = backend.execute(circuit, 128, seed=3)
        assert result.total_counts() == 128

    def test_expectation_matches_statevector(self):
        backend = LocalBackend()
        ansatz = deuteron_ansatz_circuit(0.59)
        observable = deuteron_hamiltonian()
        from repro.simulator.statevector import StateVector

        state = StateVector(2)
        state.run(ansatz.without_measurements())
        expected = state.expectation(observable)
        assert backend.expectation(
            ansatz.without_measurements(), observable
        ) == pytest.approx(expected, abs=0.0)

    def test_expectation_rejects_reset_circuits(self):
        builder = CircuitBuilder(1, name="rst")
        builder.h(0)
        builder.reset(0)
        backend = LocalBackend()
        with pytest.raises(ExecutionError, match="reset"):
            backend.expectation(builder.build(), deuteron_hamiltonian())

    def test_close_owned_engine_is_idempotent(self):
        backend = LocalBackend()
        backend.execute(bell_circuit(2), 16, seed=0)
        backend.close()
        backend.close()
        # The engine rebuilds its pool lazily: the backend stays usable.
        assert backend.execute(bell_circuit(2), 16, seed=0).total_counts() == 16

    def test_context_manager(self):
        with LocalBackend() as backend:
            assert backend.execute(bell_circuit(2), 8, seed=0).total_counts() == 8


class TestDensityBackend:
    def test_noisy_accelerator_is_thin_adapter(self):
        set_config(seed=11)
        circuit = bell_circuit(2)
        backend = DensityBackend()
        result = backend.execute(circuit, 256, seed=11)
        qpu = NoisyAccelerator()
        buffer = AcceleratorBuffer(2)
        qpu.execute(buffer, circuit, shots=256)
        assert dict(result.counts) == buffer.get_measurement_counts()
        assert result.extra["purity"] == pytest.approx(1.0)

    def test_compile_has_no_plan_form(self):
        assert DensityBackend().compile(bell_circuit(2)) is None

    def test_noisy_counts_stay_noisy(self):
        from repro.simulator.noise import NoiseModel, depolarizing_channel

        model = NoiseModel()
        model.default_single_qubit = depolarizing_channel(0.2)
        model.default_two_qubit = depolarizing_channel(0.2)
        result = DensityBackend(noise_model=model).execute(bell_circuit(2), 2048, seed=1)
        assert result.extra["purity"] < 0.99
        assert set(result.counts) - {"00", "11"}  # noise leaks population


class TestAcceleratorAdapter:
    def test_qpp_reports_backend_seam_metadata(self):
        set_config(seed=5)
        qpu = QppAccelerator({"threads": 1})
        buffer = AcceleratorBuffer(3)
        qpu.execute(buffer, ghz_circuit(3), shots=64)
        info = buffer.information
        assert info["plan-cached"] is False and info["processes"] == 0
        buffer2 = AcceleratorBuffer(3)
        qpu.execute(buffer2, ghz_circuit(3), shots=64)
        assert buffer2.information["plan-cached"] is True

    def test_gate_by_gate_path_unchanged(self):
        set_config(seed=5)
        circuit = qft_circuit(4)
        plan_buffer = AcceleratorBuffer(4)
        QppAccelerator({"threads": 1}).execute(plan_buffer, circuit, shots=256)
        legacy_buffer = AcceleratorBuffer(4)
        QppAccelerator({"threads": 1, "use-plans": False}).execute(
            legacy_buffer, circuit, shots=256
        )
        assert (
            plan_buffer.get_measurement_counts()
            == legacy_buffer.get_measurement_counts()
        )
        assert legacy_buffer.information["plan-cached"] is False

    def test_executor_routes_processes_option(self):
        # processes=1 must not engage sharding (stays on the local seam).
        qpu = QppAccelerator({"threads": 1, "processes": 1})
        assert qpu.num_processes == 0
        assert qpu.execution_backend() is qpu._local_backend

    def test_run_one_by_one_accepts_processes(self):
        set_config(seed=4)
        tasks = [KernelTask("bell", lambda: bell_circuit(2), 2, shots=64)]
        report = run_one_by_one(tasks, total_threads=1, processes=None)
        assert report.results[0].counts
        assert sum(report.results[0].counts.values()) == 64


class TestPlanAwareCostModel:
    def test_kernel_factors_cover_every_kernel_class(self):
        from repro.simulator.execution_plan import KERNEL_NAMES

        assert set(DEFAULT_KERNEL_COST_FACTORS) == set(KERNEL_NAMES.values())

    def test_diagonal_and_permutation_cheaper_than_dense(self):
        model = SimulationCostModel()
        n = 8
        assert model.kernel_cost(n, "diagonal") < model.kernel_cost(n, "single")
        assert model.kernel_cost(n, "permutation") < model.kernel_cost(n, "diagonal")
        assert model.kernel_cost(n, "dense", targets=2) > model.kernel_cost(n, "single")

    def test_plan_cost_below_gate_cost_for_qft(self):
        # The QFT is dominated by CPHASE ladders: kernel-aware costing must
        # price it well below the dense per-gate estimate.
        circuit = qft_circuit(6)
        model = SimulationCostModel()
        plan = compile_plan(circuit, 6)
        plan_cost = model.plan_cost(plan, 1024)
        gate_cost = model.circuit_cost(circuit, 1024)
        assert plan_cost.total_work < gate_cost.total_work
        assert plan_cost.parallel_work < gate_cost.parallel_work

    def test_plan_cost_accepts_parametric_plans(self):
        ansatz = deuteron_ansatz_circuit()
        plan = compile_parametric_plan(ansatz, 2)
        cost = SimulationCostModel().plan_cost(plan, 256)
        assert cost.total_work > 0

    def test_fusion_reduces_modeled_cost(self):
        builder = CircuitBuilder(5, name="dense_run")
        for _ in range(6):
            for q in range(5):
                builder.h(q)
                builder.t(q)
        circuit = builder.build()
        model = SimulationCostModel()
        fused = model.plan_cost(compile_plan(circuit, 5), 10)
        unfused = model.plan_cost(compile_plan(circuit, 5, fusion_max_qubits=0), 10)
        assert fused.total_work < unfused.total_work

    def test_harness_modeled_mode_with_plan_costs(self):
        set_config(execution_mode="modeled")
        tasks = [
            KernelTask("qft", lambda: qft_circuit(5), 5, shots=128),
            KernelTask("ghz", lambda: ghz_circuit(5), 5, shots=128),
        ]
        workload = Workload(name="plan-cost", tasks=tasks)
        plan_harness = BenchmarkHarness(mode="modeled", use_plan_costs=True)
        gate_harness = BenchmarkHarness(mode="modeled")
        plan_result = plan_harness.run_variant(workload, "one-by-one", 4)
        gate_result = gate_harness.run_variant(workload, "one-by-one", 4)
        assert plan_result.duration > 0
        # Plan replay is predicted faster than per-gate dispatch.
        assert plan_result.duration < gate_result.duration

    def test_harness_chunked_plan_costs_model_small_states_as_serial(self):
        """chunked_plan_costs models the real chunk-parallel replay: these
        5-qubit states sit far below the chunk threshold, so their sweeps
        are serial and extra threads buy nothing — the prediction must be
        at least as slow as the thread-parallel sweep model."""
        set_config(execution_mode="modeled")
        tasks = [KernelTask("qft", lambda: qft_circuit(5), 5, shots=128)]
        workload = Workload(name="chunked-cost", tasks=tasks)
        chunked = BenchmarkHarness(
            mode="modeled", use_plan_costs=True, chunked_plan_costs=True
        )
        sweep = BenchmarkHarness(mode="modeled", use_plan_costs=True)
        chunked_result = chunked.run_variant(workload, "one-by-one", 4)
        sweep_result = sweep.run_variant(workload, "one-by-one", 4)
        assert chunked_result.duration >= sweep_result.duration
