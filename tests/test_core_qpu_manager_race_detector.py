"""Tests for the QPUManager (Listing 8) and the race detector."""

import threading

import pytest

from repro.config import set_config
from repro.core.qpu_manager import QPUManager
from repro.core.race_detector import RaceDetector, get_race_detector, reset_race_detector
from repro.exceptions import NotInitializedError, ThreadSafetyViolation
from repro.runtime.qpp_accelerator import QppAccelerator


class TestQPUManager:
    def test_singleton(self):
        assert QPUManager.get_instance() is QPUManager.get_instance()

    def test_reset_instance_produces_fresh_singleton(self):
        first = QPUManager.get_instance()
        second = QPUManager.reset_instance()
        assert first is not second
        assert QPUManager.get_instance() is second

    def test_set_and_get_for_current_thread(self):
        manager = QPUManager.get_instance()
        qpu = QppAccelerator()
        manager.set_qpu(qpu)
        assert manager.get_qpu() is qpu
        assert manager.has_qpu()

    def test_get_without_registration_raises(self):
        manager = QPUManager.get_instance()
        with pytest.raises(NotInitializedError):
            manager.get_qpu()

    def test_remove_qpu(self):
        manager = QPUManager.get_instance()
        manager.set_qpu(QppAccelerator())
        manager.remove_qpu()
        assert not manager.has_qpu()

    def test_explicit_thread_id(self):
        manager = QPUManager.get_instance()
        qpu = QppAccelerator()
        manager.set_qpu(qpu, thread_id=12345)
        assert manager.get_qpu(thread_id=12345) is qpu
        assert not manager.has_qpu()  # current thread unaffected

    def test_per_thread_isolation(self):
        manager = QPUManager.get_instance()
        observed = {}
        barrier = threading.Barrier(6)

        def worker(name):
            qpu = QppAccelerator()
            manager.set_qpu(qpu)
            observed[name] = manager.get_qpu() is qpu
            # Keep all six threads alive together so their idents are distinct.
            barrier.wait(timeout=10)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(observed.values())
        assert manager.active_thread_count() == 6
        assert manager.distinct_instances() == 6

    def test_clear(self):
        manager = QPUManager.get_instance()
        manager.set_qpu(QppAccelerator())
        manager.clear()
        assert manager.active_thread_count() == 0

    def test_snapshot_is_a_copy(self):
        manager = QPUManager.get_instance()
        manager.set_qpu(QppAccelerator())
        snapshot = manager.snapshot()
        snapshot.clear()  # type: ignore[attr-defined]
        assert manager.active_thread_count() == 1


class TestRaceDetector:
    def test_safe_access_records_nothing(self):
        detector = RaceDetector()
        with detector.access("resource", safe=True):
            pass
        assert detector.race_count() == 0
        assert detector.unsafe_entries == {}

    def test_unsafe_access_counted(self):
        detector = RaceDetector()
        with detector.access("resource", safe=False):
            pass
        assert detector.unsafe_entries["resource"] == 1
        assert detector.race_count() == 0  # no overlap with a single thread

    def test_concurrent_unsafe_access_detected(self):
        detector = RaceDetector()
        barrier = threading.Barrier(4)

        def worker():
            with detector.access("shared_map", safe=False):
                barrier.wait(timeout=5)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert detector.race_count("shared_map") >= 1
        assert "shared_map" in detector.resources_with_races()

    def test_disjoint_resources_do_not_race(self):
        detector = RaceDetector()
        barrier = threading.Barrier(2)

        def worker(name):
            with detector.access(name, safe=False):
                barrier.wait(timeout=5)

        threads = [threading.Thread(target=worker, args=(f"r{i}",)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert detector.race_count() == 0

    def test_raise_on_race_configuration(self):
        set_config(raise_on_race=True)
        detector = get_race_detector()
        release = threading.Event()
        started = threading.Event()
        errors = []

        def holder():
            with detector.access("res", safe=False):
                started.set()
                release.wait(timeout=5)

        def intruder():
            try:
                with detector.access("res", safe=False):
                    pass
            except ThreadSafetyViolation as exc:
                errors.append(exc)

        t0 = threading.Thread(target=holder)
        t0.start()
        started.wait(timeout=5)
        t1 = threading.Thread(target=intruder)
        t1.start()
        t1.join()
        release.set()
        t0.join()
        assert len(errors) == 1
        assert errors[0].resource == "res"

    def test_detection_disabled_by_configuration(self):
        set_config(detect_races=False)
        detector = get_race_detector()
        with detector.access("res", safe=False):
            pass
        assert detector.unsafe_entries == {}

    def test_clear_and_reset(self):
        detector = get_race_detector()
        with detector.access("res", safe=False):
            pass
        detector.clear()
        assert detector.unsafe_entries == {}
        fresh = reset_race_detector()
        assert fresh is get_race_detector()
