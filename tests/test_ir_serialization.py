"""Tests for circuit JSON serialization."""

import numpy as np
import pytest

from repro.exceptions import IRError
from repro.ir.builder import CircuitBuilder
from repro.ir.gates import PermutationGate, UnitaryGate
from repro.ir.parameter import Parameter
from repro.ir.serialization import (
    circuit_from_dict,
    circuit_from_json,
    circuit_to_dict,
    circuit_to_json,
    instruction_from_dict,
    instruction_to_dict,
)


def sample_circuit():
    return (
        CircuitBuilder(3, name="sample")
        .h(0)
        .cx(0, 1)
        .rz(2, 0.75)
        .ccx(0, 1, 2)
        .measure_all()
        .build()
    )


class TestRoundTrips:
    def test_plain_circuit_round_trip(self):
        circuit = sample_circuit()
        assert circuit_from_dict(circuit_to_dict(circuit)) == circuit

    def test_json_round_trip(self):
        circuit = sample_circuit()
        assert circuit_from_json(circuit_to_json(circuit)) == circuit

    def test_symbolic_parameters_round_trip(self):
        circuit = CircuitBuilder(1).rx(0, Parameter("theta")).ry(0, 2 * Parameter("phi") + 1).build()
        restored = circuit_from_dict(circuit_to_dict(circuit))
        assert restored.is_parameterized
        assert {p.name for p in restored.free_parameters} == {"theta", "phi"}
        bound_original = circuit.bind({"theta": 0.3, "phi": 0.2})
        bound_restored = restored.bind({"theta": 0.3, "phi": 0.2})
        assert bound_original == bound_restored

    def test_unitary_gate_round_trip(self):
        matrix = np.array([[0, 1], [1, 0]], dtype=complex)
        circuit = CircuitBuilder(2).unitary(matrix, [1], name="MYX").build()
        restored = circuit_from_dict(circuit_to_dict(circuit))
        assert isinstance(restored[0], UnitaryGate)
        assert np.allclose(restored[0].matrix(), matrix)

    def test_permutation_gate_round_trip(self):
        circuit = CircuitBuilder(2).permutation([0, 2, 1, 3], [0, 1]).build()
        restored = circuit_from_dict(circuit_to_dict(circuit))
        assert isinstance(restored[0], PermutationGate)
        assert restored[0].permutation == (0, 2, 1, 3)

    def test_metadata_preserved(self):
        data = circuit_to_dict(sample_circuit())
        assert data["name"] == "sample"
        assert data["n_qubits"] == 3
        assert len(data["instructions"]) == 7


class TestInstructionLevel:
    def test_instruction_round_trip(self):
        original = sample_circuit()[1]
        restored = instruction_from_dict(instruction_to_dict(original))
        assert restored == original

    def test_unknown_gate_name_rejected(self):
        with pytest.raises(IRError):
            instruction_from_dict({"name": "BOGUS", "qubits": [0], "parameters": []})

    def test_bad_parameter_payload_rejected(self):
        with pytest.raises(IRError):
            instruction_from_dict({"name": "RX", "qubits": [0], "parameters": [{"weird": 1}]})
