"""Cross-validation of the stabilizer tableau lane against the dense lanes.

Three contracts anchor this file:

* **Deterministic circuits are bitwise identical.**  A Clifford circuit
  whose measurement outcomes are deterministic yields the *same single
  bitstring* from the tableau and from every dense lane, at any seed —
  the tableau's symbolic-phase sampling reduces to a constant.
* **Random-outcome circuits agree distributionally.**  At a fixed seed the
  tableau's histogram over ≤12 qubits matches the statevector lane's
  within a chi-square bound — same sampling law, different bit streams.
* **Routing is sound.**  The classifier lowers exactly the Clifford
  circuits (including Clifford-angle rotations), the cost model picks the
  tableau for them and refuses explicit stabilizer requests for anything
  else, and the broker routes automatically without changing results,
  job keys, or the non-Clifford path.
"""

import numpy as np
import pytest

from repro.algorithms.ghz import ghz_circuit
from repro.exceptions import ExecutionError
from repro.exec import LocalBackend
from repro.exec.stabilizer import (
    StabilizerBackend,
    StabilizerTableau,
    estimate_tableau_bytes,
)
from repro.ir.builder import CircuitBuilder
from repro.ir.transforms.clifford import classify_clifford, clear_clifford_cache
from repro.operators.pauli import PauliOperator, PauliTerm
from repro.runtime.service_registry import reset_registry
from repro.service import QuantumJobService
from repro.service.admission import estimate_job_bytes
from repro.service.keys import job_key
from repro.simulator.cost_model import SimulationCostModel


@pytest.fixture(autouse=True)
def service_runtime_state():
    """Broker tests resolve accelerators through the process-wide registry;
    reset it so no shared singleton leaks across tests."""
    reset_registry()
    yield
    reset_registry()


def random_clifford_circuit(rng: np.random.Generator, n_qubits: int, depth: int):
    """A random measured Clifford circuit over the full lowering surface."""
    builder = CircuitBuilder(n_qubits, name=f"clifford_rand_{rng.integers(1 << 30)}")
    single = ("h", "s", "sdg", "x", "y", "z")
    for _ in range(depth):
        if n_qubits > 1 and rng.random() < 0.4:
            a, b = rng.choice(n_qubits, size=2, replace=False)
            getattr(builder, rng.choice(("cx", "cz", "swap")))(int(a), int(b))
        elif rng.random() < 0.25:
            # Clifford-angle rotations must lower, not obstruct.
            k = int(rng.integers(4))
            builder.rz(int(rng.integers(n_qubits)), k * np.pi / 2)
        else:
            getattr(builder, rng.choice(single))(int(rng.integers(n_qubits)))
    builder.measure_all()
    return builder.build()


def chi_square(observed: dict, expected: dict, shots: int) -> float:
    """Pearson chi-square of two fixed-shot histograms (expected as model)."""
    total_expected = sum(expected.values())
    stat = 0.0
    for key in set(observed) | set(expected):
        model = expected.get(key, 0) / total_expected * shots
        if model < 1e-12:
            # Observed a key the model gives zero probability: impossible
            # under agreement, so make the statistic fail loudly.
            return float("inf")
        stat += (observed.get(key, 0) - model) ** 2 / model
    return stat


# ---------------------------------------------------------------------------
# Tableau unit behaviour
# ---------------------------------------------------------------------------


class TestTableauGates:
    def test_initial_state_measures_all_zeros(self):
        tab = StabilizerTableau(4)
        assert tab.sample(16, range(4)) == {"0000": 16}

    def test_x_flips_deterministically(self):
        tab = StabilizerTableau(3)
        tab.x_gate(1)
        assert tab.sample(8, range(3)) == {"010": 8}

    def test_h_then_h_is_identity(self):
        tab = StabilizerTableau(2)
        tab.h(0)
        tab.h(0)
        assert tab.sample(8, range(2)) == {"00": 8}

    def test_bell_pair_is_perfectly_correlated(self):
        tab = StabilizerTableau(2)
        tab.h(0)
        tab.cx(0, 1)
        counts = tab.sample(512, range(2), np.random.default_rng(3))
        assert set(counts) == {"00", "11"}
        assert sum(counts.values()) == 512

    def test_swap_moves_excitation(self):
        tab = StabilizerTableau(2)
        tab.x_gate(0)
        tab.swap(0, 1)
        assert tab.sample(8, range(2)) == {"01": 8}

    def test_s_squared_is_z(self):
        # S²|+> = Z|+> = |->; interferometry detects the phase: H S S H |0> = |1>.
        tab = StabilizerTableau(1)
        tab.h(0)
        tab.s(0)
        tab.s(0)
        tab.h(0)
        assert tab.sample(8, [0]) == {"1": 8}

    def test_sdg_inverts_s(self):
        tab = StabilizerTableau(1)
        tab.h(0)
        tab.s(0)
        tab.sdg(0)
        tab.h(0)
        assert tab.sample(8, [0]) == {"0": 8}

    def test_reset_after_superposition_restores_zero(self):
        tab = StabilizerTableau(2)
        tab.h(0)
        tab.cx(0, 1)
        tab.reset(0)
        counts = tab.sample(256, [0], np.random.default_rng(5))
        assert counts == {"0": 256}

    def test_mid_circuit_measurement_collapses(self):
        tab = StabilizerTableau(1)
        tab.h(0)
        first = tab.measure(0)
        second = tab.measure(0)
        # Repeated measurement returns the identical affine form.
        assert np.array_equal(first, second)

    def test_expectation_signs(self):
        tab = StabilizerTableau(2)
        tab.h(0)
        tab.cx(0, 1)
        assert tab.expectation_sign({0: "Z", 1: "Z"}) == 1.0
        assert tab.expectation_sign({0: "X", 1: "X"}) == 1.0
        assert tab.expectation_sign({0: "Y", 1: "Y"}) == -1.0
        assert tab.expectation_sign({0: "Z"}) == 0.0


class TestTableauSizing:
    def test_estimate_is_quadratic_not_exponential(self):
        assert estimate_tableau_bytes(500) < 2_000_000
        assert estimate_tableau_bytes(500) > estimate_tableau_bytes(100)

    def test_admission_uses_tableau_bytes_for_stabilizer_method(self):
        dense = estimate_job_bytes(30, 100)
        tableau = estimate_job_bytes(30, 100, method="stabilizer")
        assert tableau == estimate_tableau_bytes(30, 100)
        assert tableau < dense
        # 500 dense qubits would overflow any budget; the tableau fits.
        assert estimate_job_bytes(500, 100, method="stabilizer") < 2_000_000


# ---------------------------------------------------------------------------
# Classifier soundness
# ---------------------------------------------------------------------------


class TestCliffordClassifier:
    def test_ghz_is_clifford(self):
        verdict = classify_clifford(ghz_circuit(5))
        assert verdict.is_clifford
        assert verdict.measured_qubits == (0, 1, 2, 3, 4)

    def test_clifford_angle_rotations_lower(self):
        circuit = (
            CircuitBuilder(1, name="rz_angles")
            .h(0)
            .rz(0, np.pi / 2)
            .rz(0, np.pi)
            .rz(0, -np.pi / 2)
            .measure(0)
            .build()
        )
        verdict = classify_clifford(circuit)
        assert verdict.is_clifford
        assert ("s", 0) in verdict.ops
        assert ("z", 0) in verdict.ops
        assert ("sdg", 0) in verdict.ops

    def test_generic_rotation_names_the_obstruction(self):
        circuit = CircuitBuilder(1, name="rz_generic").rz(0, 0.3).measure(0).build()
        verdict = classify_clifford(circuit)
        assert not verdict.is_clifford
        assert "RZ" in verdict.reason

    def test_t_gate_is_not_clifford(self):
        circuit = CircuitBuilder(1, name="t_gate").t(0).measure(0).build()
        assert not classify_clifford(circuit).is_clifford

    def test_toffoli_is_not_clifford(self):
        circuit = CircuitBuilder(3, name="ccx").ccx(0, 1, 2).measure_all().build()
        assert not classify_clifford(circuit).is_clifford

    def test_unbound_parameter_is_not_clifford(self):
        from repro.ir.parameter import Parameter

        theta = Parameter("theta")
        circuit = CircuitBuilder(1, name="sym").rz(0, theta).measure(0).build()
        verdict = classify_clifford(circuit)
        assert not verdict.is_clifford
        assert "unbound" in verdict.reason

    def test_verdicts_are_cached_by_content(self):
        clear_clifford_cache()
        first = classify_clifford(ghz_circuit(4))
        renamed = ghz_circuit(4)
        renamed.name = "same_physics_other_name"
        assert classify_clifford(renamed) is first


class TestCostModelRouting:
    def test_auto_picks_tableau_for_clifford(self):
        model = SimulationCostModel()
        verdict = classify_clifford(ghz_circuit(6))
        assert model.choose_backend(verdict) == "stabilizer"

    def test_auto_keeps_non_clifford_dense(self):
        model = SimulationCostModel()
        circuit = CircuitBuilder(2, name="dense").rz(0, 0.3).measure_all().build()
        assert model.choose_backend(classify_clifford(circuit)) == "statevector"

    def test_explicit_statevector_always_wins(self):
        model = SimulationCostModel()
        verdict = classify_clifford(ghz_circuit(6))
        assert model.choose_backend(verdict, "statevector") == "statevector"

    def test_explicit_stabilizer_on_non_clifford_raises(self):
        model = SimulationCostModel()
        circuit = CircuitBuilder(2, name="dense2").rz(0, 0.3).measure_all().build()
        with pytest.raises(ExecutionError, match="not Clifford"):
            model.choose_backend(classify_clifford(circuit), "stabilizer")

    def test_unknown_method_raises(self):
        model = SimulationCostModel()
        with pytest.raises(ExecutionError, match="unknown simulation method"):
            model.choose_backend(classify_clifford(ghz_circuit(2)), "tensor")

    def test_stabilizer_seconds_scales_polynomially(self):
        model = SimulationCostModel(seconds_per_clifford_gate=1e-7)
        small = model.stabilizer_seconds(10, 100)
        large = model.stabilizer_seconds(500, 100)
        assert large == pytest.approx(small * 50)


# ---------------------------------------------------------------------------
# Cross-validation against the dense lanes (≤ 12 qubits)
# ---------------------------------------------------------------------------


class TestCrossValidation:
    @pytest.mark.parametrize("n_qubits", [2, 5, 8, 12])
    def test_ghz_counts_match_distribution(self, n_qubits):
        circuit = ghz_circuit(n_qubits)
        shots = 2048
        dense = LocalBackend().execute(circuit, shots, seed=17).counts
        tableau = StabilizerBackend().execute(circuit, shots, seed=17).counts
        assert set(tableau) == set(dense) == {"0" * n_qubits, "1" * n_qubits}
        assert sum(tableau.values()) == shots
        # Fair-coin marginal: both lanes within 5 sigma of shots/2.
        sigma = (shots * 0.25) ** 0.5
        assert abs(tableau["0" * n_qubits] - shots / 2) < 5 * sigma

    @pytest.mark.parametrize("trial", range(6))
    def test_deterministic_circuits_bitwise_identical(self, trial):
        """No-H Clifford circuits are computational-basis permutations: the
        outcome is one bitstring, identical across lanes at *any* seed."""
        rng = np.random.default_rng(100 + trial)
        n = int(rng.integers(3, 9))
        builder = CircuitBuilder(n, name=f"perm_{trial}")
        for _ in range(30):
            if rng.random() < 0.5 and n > 1:
                a, b = rng.choice(n, size=2, replace=False)
                getattr(builder, rng.choice(("cx", "swap")))(int(a), int(b))
            else:
                getattr(builder, rng.choice(("x", "z")))(int(rng.integers(n)))
        builder.measure_all()
        circuit = builder.build()
        dense = LocalBackend().execute(circuit, 64, seed=int(rng.integers(1 << 20))).counts
        tableau = StabilizerBackend().execute(circuit, 64, seed=0).counts
        assert len(dense) == len(tableau) == 1
        assert tableau == dense

    @pytest.mark.parametrize("trial", range(8))
    def test_random_clifford_distributions_agree(self, trial):
        """Chi-square agreement at fixed seeds over random Clifford circuits."""
        rng = np.random.default_rng(2000 + trial)
        n = int(rng.integers(2, 13))
        circuit = random_clifford_circuit(rng, n, depth=40)
        shots = 4096
        dense = LocalBackend().execute(circuit, shots, seed=23).counts
        tableau = StabilizerBackend().execute(circuit, shots, seed=23).counts
        assert sum(tableau.values()) == shots
        # Stabilizer outcomes are uniform over an affine subspace of
        # dimension d ≤ n: degrees of freedom = |support| - 1.
        dof = max(1, len(dense) - 1)
        stat = chi_square(tableau, dense, shots)
        # 5-sigma-ish bound: mean dof, variance 2·dof.
        assert stat < dof + 5 * (2 * dof) ** 0.5 + 10, f"chi2={stat} dof={dof}"

    @pytest.mark.parametrize("trial", range(4))
    def test_expectation_matches_dense(self, trial):
        rng = np.random.default_rng(3000 + trial)
        n = int(rng.integers(2, 7))
        builder = CircuitBuilder(n, name=f"expect_{trial}")
        for _ in range(25):
            if rng.random() < 0.4 and n > 1:
                a, b = rng.choice(n, size=2, replace=False)
                builder.cx(int(a), int(b))
            else:
                getattr(builder, rng.choice(("h", "s", "x", "z")))(int(rng.integers(n)))
        circuit = builder.build()
        terms = []
        for _ in range(4):
            paulis = {
                int(q): str(rng.choice(("X", "Y", "Z")))
                for q in rng.choice(n, size=min(n, 2), replace=False)
            }
            terms.append(PauliTerm(paulis, float(rng.normal())))
        observable = PauliOperator(terms)
        dense = LocalBackend().expectation(circuit, observable, n_qubits=n)
        tableau = StabilizerBackend().expectation(circuit, observable, n_qubits=n)
        assert tableau == pytest.approx(dense, abs=1e-9)

    def test_reset_distribution_matches_dense(self):
        builder = CircuitBuilder(2, name="reset_dist")
        builder.h(0).cx(0, 1).reset(0).h(0).measure_all()
        circuit = builder.build()
        shots = 4096
        dense = LocalBackend().execute(circuit, shots, seed=29).counts
        tableau = StabilizerBackend().execute(circuit, shots, seed=29).counts
        for key in set(dense) | set(tableau):
            assert abs(tableau.get(key, 0) - dense.get(key, 0)) < 5 * (shots * 0.25) ** 0.5

    def test_non_clifford_circuit_fails_loudly(self):
        circuit = CircuitBuilder(1, name="nc").rz(0, 0.3).measure(0).build()
        with pytest.raises(ExecutionError, match="Clifford"):
            StabilizerBackend().execute(circuit, 16)

    def test_fixed_seed_is_reproducible(self):
        circuit = ghz_circuit(6)
        first = StabilizerBackend().execute(circuit, 1024, seed=7).counts
        second = StabilizerBackend().execute(circuit, 1024, seed=7).counts
        assert first == second


# ---------------------------------------------------------------------------
# Job keys: "auto" routes, explicit methods pin
# ---------------------------------------------------------------------------


class TestMethodKeySemantics:
    def test_auto_method_does_not_change_the_job_key(self):
        circuit = ghz_circuit(4)
        assert job_key(circuit, "qpp", {}) == job_key(circuit, "qpp", {"method": "auto"})

    def test_explicit_method_is_semantic(self):
        circuit = ghz_circuit(4)
        plain = job_key(circuit, "qpp", {})
        pinned = job_key(circuit, "qpp", {"method": "stabilizer"})
        dense = job_key(circuit, "qpp", {"method": "statevector"})
        assert plain != pinned
        assert plain != dense
        assert pinned != dense


# ---------------------------------------------------------------------------
# Broker integration: automatic routing end to end
# ---------------------------------------------------------------------------


class TestBrokerRouting:
    def test_clifford_job_routes_to_tableau(self):
        with QuantumJobService(workers=1) as service:
            result = service.submit(ghz_circuit(8), shots=512).result(timeout=30)
            metrics = service.metrics()
        assert result.total_counts() == 512
        assert set(result.counts) == {"0" * 8, "1" * 8}
        assert metrics.stabilizer_executions == 1
        assert metrics.executions == 1

    def test_hundreds_of_qubits_clear_the_dense_ceiling(self):
        """A 120-qubit GHZ sails past the accelerator's 26-qubit dense limit."""
        with QuantumJobService(workers=1) as service:
            result = service.submit(ghz_circuit(120), shots=256).result(timeout=60)
            metrics = service.metrics()
        assert set(result.counts) == {"0" * 120, "1" * 120}
        assert metrics.stabilizer_executions == 1

    def test_non_clifford_job_stays_dense_and_bit_identical(self):
        circuit = (
            CircuitBuilder(3, name="dense_route")
            .h(0)
            .rx(1, 0.3)
            .cx(0, 1)
            .measure_all()
            .build()
        )
        with QuantumJobService(workers=1) as service:
            auto = service.submit(circuit, shots=256).result(timeout=30)
            metrics = service.metrics()
        with QuantumJobService(
            workers=1, backend_options={"method": "statevector"}
        ) as service:
            pinned = service.submit(circuit, shots=256).result(timeout=30)
        assert metrics.stabilizer_executions == 0
        # Routing changed nothing for the dense path: same seed, same stream.
        assert auto.counts == pinned.counts

    def test_statevector_opt_out_is_honoured_for_clifford(self):
        with QuantumJobService(
            workers=1, backend_options={"method": "statevector"}
        ) as service:
            result = service.submit(ghz_circuit(6), shots=256).result(timeout=30)
            metrics = service.metrics()
        assert result.total_counts() == 256
        assert metrics.stabilizer_executions == 0
        assert metrics.executions == 1

    def test_explicit_stabilizer_on_non_clifford_fails_typed(self):
        circuit = CircuitBuilder(2, name="bad_pin").rz(0, 0.3).measure_all().build()
        with QuantumJobService(
            workers=1, backend_options={"method": "stabilizer"}
        ) as service:
            handle = service.submit(circuit, shots=64)
            with pytest.raises(ExecutionError, match="not Clifford"):
                handle.result(timeout=30)

    def test_unknown_method_rejected_at_construction(self):
        with pytest.raises(ExecutionError, match="unknown simulation method"):
            QuantumJobService(workers=1, backend_options={"method": "tensor"})

    def test_tableau_and_dense_results_share_the_backend_label(self):
        """Routing is an implementation detail: JobResult.backend stays the
        submitted backend name either way."""
        with QuantumJobService(workers=1) as service:
            clifford = service.submit(ghz_circuit(5), shots=128).result(timeout=30)
        assert clifford.backend == "qpp"

    def test_clifford_sweep_routes_every_binding(self):
        from repro.ir.parameter import Parameter

        theta = Parameter("theta")
        circuit = (
            CircuitBuilder(3, name="sweep_clifford")
            .h(0)
            .rz(0, theta)
            .cx(0, 1)
            .cx(1, 2)
            .measure_all()
            .build()
        )
        with QuantumJobService(workers=1) as service:
            handle = service.submit_sweep(
                circuit, [{"theta": 0.0}, {"theta": np.pi / 2}], shots=256
            )
            rows = handle.result(timeout=60)
            metrics = service.metrics()
        assert len(rows) == 2
        assert all(sum(row.counts.values()) == 256 for row in rows)
        assert metrics.stabilizer_executions == 2

    def test_mixed_sweep_stays_dense(self):
        from repro.ir.parameter import Parameter

        theta = Parameter("theta")
        circuit = (
            CircuitBuilder(2, name="sweep_mixed")
            .h(0)
            .rz(0, theta)
            .cx(0, 1)
            .measure_all()
            .build()
        )
        with QuantumJobService(workers=1) as service:
            handle = service.submit_sweep(
                circuit, [{"theta": 0.0}, {"theta": 0.3}], shots=128
            )
            rows = handle.result(timeout=60)
            metrics = service.metrics()
        assert len(rows) == 2
        assert metrics.stabilizer_executions == 0
