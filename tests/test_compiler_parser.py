"""Tests for the XASM-subset compiler."""

import math

import pytest

from repro.compiler.parser import compile_xasm
from repro.exceptions import CompilationError

BELL_SOURCE = """
H(q[0]);
CX(q[0], q[1]);
for (int i = 0; i < q.size(); i++) {
  Measure(q[i]);
}
"""


class TestGateCalls:
    def test_bell_kernel_from_the_paper(self):
        circuit = compile_xasm(BELL_SOURCE, n_qubits=2, name="bell")
        assert [i.name for i in circuit] == ["H", "CX", "MEASURE", "MEASURE"]
        assert circuit.n_qubits == 2

    def test_parameterized_gate_with_literal(self):
        circuit = compile_xasm("Ry(q[1], 0.5);", n_qubits=2)
        assert circuit[0].name == "RY"
        assert circuit[0].parameters == (0.5,)

    def test_pi_constant_and_arithmetic(self):
        circuit = compile_xasm("Rz(q[0], pi / 2); Rx(q[0], 2 * pi);", n_qubits=1)
        assert circuit[0].parameters[0] == pytest.approx(math.pi / 2)
        assert circuit[1].parameters[0] == pytest.approx(2 * math.pi)

    def test_negative_angles(self):
        circuit = compile_xasm("Rx(q[0], -0.25);", n_qubits=1)
        assert circuit[0].parameters[0] == pytest.approx(-0.25)

    def test_kernel_parameter_substitution(self):
        circuit = compile_xasm("Ry(q[1], theta);", n_qubits=2, parameters={"theta": 0.7})
        assert circuit[0].parameters[0] == pytest.approx(0.7)

    def test_unbound_kernel_parameter_stays_symbolic(self):
        circuit = compile_xasm("Ry(q[0], theta);", n_qubits=1)
        assert circuit.is_parameterized
        assert {p.name for p in circuit.free_parameters} == {"theta"}

    def test_scaled_symbolic_parameter(self):
        circuit = compile_xasm("Rz(q[0], 2 * theta);", n_qubits=1)
        bound = circuit.bind({"theta": 0.3})
        assert bound[0].parameters[0] == pytest.approx(0.6)

    def test_using_directive_is_ignored(self):
        circuit = compile_xasm("using qcor::xasm;\nH(q[0]);", n_qubits=1)
        assert [i.name for i in circuit] == ["H"]

    def test_unknown_gate_rejected(self):
        with pytest.raises(CompilationError):
            compile_xasm("FLIB(q[0]);", n_qubits=1)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(CompilationError):
            compile_xasm("H(q[0])", n_qubits=1)

    def test_custom_register_name(self):
        circuit = compile_xasm("H(reg[0]);", register_name="reg", n_qubits=1)
        assert circuit[0].name == "H"


class TestForLoops:
    def test_loop_over_register_size(self):
        circuit = compile_xasm("for (int i = 0; i < q.size(); i++) { H(q[i]); }", n_qubits=3)
        assert [i.name for i in circuit] == ["H", "H", "H"]
        assert [i.qubits[0] for i in circuit] == [0, 1, 2]

    def test_loop_with_literal_bound(self):
        circuit = compile_xasm("for (int k = 0; k < 2; k++) { X(q[k]); }", n_qubits=4)
        assert len(circuit) == 2

    def test_loop_with_le_comparison(self):
        circuit = compile_xasm("for (int k = 0; k <= 2; k++) { X(q[k]); }", n_qubits=4)
        assert len(circuit) == 3

    def test_descending_loop(self):
        circuit = compile_xasm("for (int k = 2; k >= 0; k--) { X(q[k]); }", n_qubits=3)
        assert [i.qubits[0] for i in circuit] == [2, 1, 0]

    def test_empty_loop_body_still_validated(self):
        circuit = compile_xasm("for (int k = 0; k < 0; k++) { H(q[k]); } X(q[0]);", n_qubits=1)
        assert [i.name for i in circuit] == ["X"]

    def test_nested_loops(self):
        source = """
        for (int i = 0; i < 2; i++) {
          for (int j = 0; j < 2; j++) {
            CPhase(q[i], q[2 + j], 0.1);
          }
        }
        """
        circuit = compile_xasm(source, n_qubits=4)
        assert len(circuit) == 4
        assert {inst.qubits for inst in circuit} == {(0, 2), (0, 3), (1, 2), (1, 3)}

    def test_loop_variable_arithmetic_in_index(self):
        circuit = compile_xasm("for (int i = 0; i < 2; i++) { CX(q[i], q[i + 1]); }", n_qubits=3)
        assert [inst.qubits for inst in circuit] == [(0, 1), (1, 2)]

    def test_q_size_requires_known_width(self):
        with pytest.raises(CompilationError):
            compile_xasm("for (int i = 0; i < q.size(); i++) { H(q[i]); }")

    def test_mismatched_loop_variable_rejected(self):
        with pytest.raises(CompilationError):
            compile_xasm("for (int i = 0; j < 2; i++) { H(q[0]); }", n_qubits=1)

    def test_unsupported_update_rejected(self):
        with pytest.raises(CompilationError):
            compile_xasm("for (int i = 0; i < 2; i = i) { H(q[0]); }", n_qubits=1)


class TestSemantics:
    def test_compiled_bell_matches_builder_bell(self):
        from repro.algorithms.bell import bell_circuit

        compiled = compile_xasm(BELL_SOURCE, n_qubits=2)
        assert compiled == bell_circuit(2)

    def test_width_inferred_from_indices_when_not_given(self):
        circuit = compile_xasm("H(q[3]);")
        assert circuit.n_qubits == 4

    def test_symbolic_index_rejected(self):
        with pytest.raises(CompilationError):
            compile_xasm("H(q[theta]);", n_qubits=2)
