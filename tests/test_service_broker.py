"""Tests for the QuantumJobService broker: batching, caching, dispatch.

Covers the acceptance behaviours of the service subsystem: cache
hit/subsample/top-up semantics, deterministic batch coalescing, coalescing
correctness under genuinely concurrent submitters, backpressure rejection,
priority ordering, metrics counters, and the paper's thread-safe-vs-legacy
race contrast driven through the broker by 16 client threads.
"""

from __future__ import annotations

import threading

import pytest

import repro
from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.config import configure, set_config
from repro.core.race_detector import get_race_detector
from repro.exceptions import (
    AcceleratorError,
    ExecutionError,
    ServiceNotFoundError,
    ServiceOverloadedError,
)
from repro.ir.builder import CircuitBuilder
from repro.runtime.service_registry import reset_registry
from repro.service import JobPriority, QuantumJobService
from repro.service.batching import BatchingJobQueue
from repro.service.job import JobHandle, JobSpec


@pytest.fixture(autouse=True)
def service_runtime_state():
    """Service tests resolve accelerators through the process-wide registry;
    reset it explicitly so no shared singleton leaks across tests."""
    reset_registry()
    yield
    reset_registry()


def distinct_circuit(index: int, n_qubits: int = 5):
    """A family of content-distinct measured circuits (one per client job)."""
    builder = CircuitBuilder(n_qubits, name=f"client_job_{index}")
    builder.h(0)
    builder.rx(1, 0.05 + 0.01 * index)
    for qubit in range(n_qubits - 1):
        builder.cx(qubit, qubit + 1)
    for qubit in range(n_qubits):
        builder.measure(qubit)
    return builder.build()


class TestCacheSemantics:
    def test_repeat_submission_served_from_cache(self):
        with QuantumJobService(workers=2) as service:
            first = service.submit(bell_circuit(2), shots=512).result(timeout=30)
            second = service.submit(bell_circuit(2), shots=512).result(timeout=30)
        assert not first.from_cache
        assert second.from_cache
        assert second.total_counts() == 512

    def test_smaller_request_subsamples_cached_histogram(self):
        with QuantumJobService(workers=2) as service:
            service.submit(bell_circuit(2), shots=4096).result(timeout=30)
            small = service.submit(bell_circuit(2), shots=100).result(timeout=30)
            metrics = service.metrics()
        assert small.from_cache
        assert small.total_counts() == 100
        # Only the original 4096 shots were ever simulated.
        assert metrics.executed_shots == 4096
        assert metrics.cache_hits == 1

    def test_larger_request_tops_up_only_missing_shots(self):
        with QuantumJobService(workers=2) as service:
            service.submit(bell_circuit(2), shots=1024).result(timeout=30)
            big = service.submit(bell_circuit(2), shots=4096).result(timeout=30)
            metrics = service.metrics()
        assert big.total_counts() == 4096
        assert not big.from_cache
        # 1024 original + 3072 top-up, never 1024 + 4096.
        assert metrics.executed_shots == 4096
        assert metrics.executions == 2
        assert metrics.cache.top_ups == 1

    def test_cache_disabled_always_executes(self):
        with QuantumJobService(workers=2, enable_cache=False) as service:
            service.submit(bell_circuit(2), shots=256).result(timeout=30)
            repeat = service.submit(bell_circuit(2), shots=256).result(timeout=30)
            metrics = service.metrics()
        assert not repeat.from_cache
        assert metrics.executions == 2
        assert service.cache is None

    def test_circuit_name_does_not_defeat_caching(self):
        renamed = bell_circuit(2)
        renamed.name = "same_physics_other_name"
        with QuantumJobService(workers=2) as service:
            service.submit(bell_circuit(2), shots=512).result(timeout=30)
            repeat = service.submit(renamed, shots=512).result(timeout=30)
        assert repeat.from_cache


class TestBatchCoalescing:
    def test_pending_identical_jobs_coalesce_into_one_execution(self):
        """N concurrent identical submissions -> exactly 1 backend execution."""
        service = QuantumJobService(workers=1, auto_start=False)
        handles = [service.submit(ghz_circuit(4), shots=1024) for _ in range(8)]
        service.start()
        results = [handle.result(timeout=30) for handle in handles]
        metrics = service.metrics()
        service.shutdown()
        assert metrics.executions == 1
        assert metrics.coalesced == 7
        assert all(r.total_counts() == 1024 for r in results)
        assert all(r.coalesced for r in results)

    def test_coalesced_batch_serves_mixed_shot_counts(self):
        """One execution at the max shot count satisfies every rider."""
        service = QuantumJobService(workers=1, auto_start=False)
        small = service.submit(ghz_circuit(4), shots=128)
        large = service.submit(ghz_circuit(4), shots=2048)
        service.start()
        assert small.result(timeout=30).total_counts() == 128
        assert large.result(timeout=30).total_counts() == 2048
        metrics = service.metrics()
        service.shutdown()
        assert metrics.executions == 1
        assert metrics.executed_shots == 2048

    def test_coalescing_under_concurrent_submitters(self):
        """Racing client threads never lose a result to coalescing."""
        n_clients = 12
        barrier = threading.Barrier(n_clients)
        results: list[dict[str, int]] = []
        lock = threading.Lock()
        with QuantumJobService(workers=3) as service:

            def client():
                barrier.wait()
                counts = service.submit(ghz_circuit(4), shots=512).counts(timeout=30)
                with lock:
                    results.append(counts)

            threads = [threading.Thread(target=client) for _ in range(n_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            metrics = service.metrics()
        assert len(results) == n_clients
        assert all(sum(counts.values()) == 512 for counts in results)
        assert metrics.completed == n_clients
        # Identical concurrent jobs must share executions: far fewer backend
        # runs than clients (first run + races, everything else rides along).
        assert metrics.executions + metrics.cache_hits <= n_clients
        assert metrics.executions < n_clients


class TestBackpressure:
    def test_try_submit_rejects_when_queue_full(self):
        service = QuantumJobService(workers=1, max_pending=2, auto_start=False)
        assert service.try_submit(distinct_circuit(0), shots=64) is not None
        assert service.try_submit(distinct_circuit(1), shots=64) is not None
        rejected = service.try_submit(distinct_circuit(2), shots=64)
        assert rejected is None
        assert service.metrics().rejected == 1
        service.start()
        service.shutdown()

    def test_blocking_submit_times_out_with_overload_error(self):
        service = QuantumJobService(workers=1, max_pending=1, auto_start=False)
        service.submit(distinct_circuit(0), shots=64)
        with pytest.raises(ServiceOverloadedError) as excinfo:
            service.submit(distinct_circuit(1), shots=64, timeout=0.05)
        assert excinfo.value.max_pending == 1
        service.start()
        service.shutdown()

    def test_identical_job_rides_along_despite_full_queue(self):
        """Coalescing adds no backend work, so it bypasses the depth bound."""
        service = QuantumJobService(workers=1, max_pending=1, auto_start=False)
        first = service.submit(ghz_circuit(4), shots=256)
        rider = service.try_submit(ghz_circuit(4), shots=256)
        assert rider is not None
        service.start()
        assert first.result(timeout=30).total_counts() == 256
        assert rider.result(timeout=30).total_counts() == 256
        service.shutdown()


class TestPrioritiesAndLifecycle:
    def test_high_priority_batches_dispatch_first(self):
        service = QuantumJobService(workers=1, auto_start=False)
        order: list[str] = []
        lock = threading.Lock()

        def record(tag):
            def callback(_handle):
                with lock:
                    order.append(tag)

            return callback

        low = service.submit(distinct_circuit(0), shots=64, priority=JobPriority.LOW)
        normal = service.submit(distinct_circuit(1), shots=64, priority=JobPriority.NORMAL)
        high = service.submit(distinct_circuit(2), shots=64, priority=JobPriority.HIGH)
        low.add_done_callback(record("low"))
        normal.add_done_callback(record("normal"))
        high.add_done_callback(record("high"))
        service.start()
        for handle in (low, normal, high):
            handle.result(timeout=30)
        service.shutdown()
        assert order == ["high", "normal", "low"]

    def test_priority_rider_promotes_whole_batch(self):
        service = QuantumJobService(workers=1, auto_start=False)
        low_batch = service.submit(distinct_circuit(0), shots=64, priority=JobPriority.LOW)
        normal = service.submit(distinct_circuit(1), shots=64, priority=JobPriority.NORMAL)
        rider = service.submit(distinct_circuit(0), shots=64, priority=JobPriority.HIGH)
        order: list[str] = []
        lock = threading.Lock()
        for tag, handle in (("batch", low_batch), ("normal", normal), ("rider", rider)):
            handle.add_done_callback(
                lambda _h, tag=tag: (lock.acquire(), order.append(tag), lock.release())
            )
        service.start()
        for handle in (low_batch, normal, rider):
            handle.result(timeout=30)
        service.shutdown()
        # The promoted batch (and its rider) must beat the NORMAL job.
        assert order.index("normal") == 2

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ServiceNotFoundError):
            QuantumJobService(backend="not-a-backend")

    def test_submit_after_shutdown_raises(self):
        service = QuantumJobService(workers=1)
        service.start()
        service.shutdown()
        with pytest.raises(ExecutionError):
            service.submit(bell_circuit(2), shots=64)

    def test_shutdown_drains_queued_jobs(self):
        service = QuantumJobService(workers=2, auto_start=False)
        handles = [service.submit(distinct_circuit(i), shots=64) for i in range(4)]
        service.start()
        service.shutdown(wait=True)
        assert all(handle.done() for handle in handles)
        assert all(handle.result().total_counts() == 64 for handle in handles)

    def test_shutdown_before_start_fails_queued_handles(self):
        """Jobs queued into a never-started pool must not strand clients."""
        service = QuantumJobService(workers=2, auto_start=False)
        handle = service.submit(distinct_circuit(0), shots=64)
        service.shutdown()
        with pytest.raises(ExecutionError, match="before its dispatcher pool started"):
            handle.result(timeout=5)
        assert service.metrics().failed == 1

    def test_cached_counts_are_read_only(self):
        """A client mutating a served entry must not corrupt the cache."""
        with QuantumJobService(workers=1) as service:
            service.submit(bell_circuit(2), shots=256).result(timeout=30)
            entry = service.cache.peek(
                service.submit(bell_circuit(2), shots=256).result(timeout=30).key
            )
            assert not hasattr(entry.counts, "clear")
            with pytest.raises(TypeError):
                entry.counts["00"] = 0
            repeat = service.submit(bell_circuit(2), shots=128).result(timeout=30)
            assert repeat.total_counts() == 128

    def test_parameterized_circuit_rejected_at_submit(self):
        from repro.algorithms.vqe import deuteron_ansatz_circuit

        with QuantumJobService(workers=1) as service:
            with pytest.raises(ExecutionError):
                service.submit(deuteron_ansatz_circuit(), shots=64)

    def test_all_workers_failing_init_fails_pending_jobs(self):
        """When every dispatcher dies in initialize(), clients must get the
        error instead of blocking forever on their handles."""
        service = QuantumJobService(
            workers=2,
            backend_options={"threads": "not-a-number"},  # poisons initialize()
            auto_start=False,
        )
        handle = service.submit(bell_circuit(2), shots=64)
        service.start()
        with pytest.raises(ExecutionError, match="failed to initialize"):
            handle.result(timeout=10)
        with pytest.raises(ExecutionError):  # and the queue stops accepting
            service.submit(bell_circuit(2), shots=64)
        service.shutdown()

    def test_backend_failure_propagates_to_every_rider(self):
        # The rx angle keeps the circuit non-Clifford: a Clifford 30-qubit
        # circuit would now route to the stabilizer tableau and *succeed*
        # instead of tripping the dense backend's size ceiling.
        oversized = (
            CircuitBuilder(30, name="too_big").h(29).rx(29, 0.3).measure(29).build()
        )
        service = QuantumJobService(workers=1, auto_start=False)
        first = service.submit(oversized, shots=64)
        rider = service.submit(oversized, shots=64)
        service.start()
        for handle in (first, rider):
            with pytest.raises(AcceleratorError):
                handle.result(timeout=30)
        assert service.metrics().failed == 2
        service.shutdown()


class TestMetrics:
    def test_counters_reflect_traffic(self):
        with QuantumJobService(workers=2) as service:
            service.submit(bell_circuit(2), shots=256).result(timeout=30)
            service.submit(bell_circuit(2), shots=128).result(timeout=30)
            service.submit(ghz_circuit(3), shots=256).result(timeout=30)
            metrics = service.metrics()
        assert metrics.submitted == 3
        assert metrics.completed == 3
        assert metrics.cache_hits == 1
        assert metrics.executions == 2
        assert metrics.executed_shots == 512
        assert metrics.served_shots == 640
        assert metrics.queue_depth == 0
        assert metrics.uptime_seconds > 0
        assert metrics.throughput_jobs_per_second > 0
        assert 0 < metrics.cache_hit_rate < 1
        latency = metrics.backend_latency["qpp"]
        assert latency.executions == 2
        assert latency.mean_seconds > 0

    def test_active_workers_tracks_pool(self):
        service = QuantumJobService(workers=3)
        assert service.metrics().active_workers == 0
        service.start()
        service.submit(bell_circuit(2), shots=64).result(timeout=30)
        assert service.metrics().active_workers == 3
        service.shutdown(wait=True)
        assert service.metrics().active_workers == 0


class TestQueueUnit:
    def _handle(self, key: str, priority=JobPriority.NORMAL, shots: int = 64):
        spec = JobSpec(
            key=key,
            circuit=bell_circuit(2),
            backend="qpp",
            shots=shots,
            n_qubits=2,
            priority=priority,
        )
        return JobHandle(spec)

    def test_claimed_batch_takes_no_more_riders(self):
        queue = BatchingJobQueue(max_pending=8)
        assert queue.put(self._handle("k")) == "queued"
        batch = queue.get(timeout=1)
        assert batch is not None and len(batch) == 1
        # The same key now starts a fresh batch instead of riding a claimed one.
        assert queue.put(self._handle("k")) == "queued"
        assert queue.pending_batches() == 1

    def test_depth_counts_riders(self):
        queue = BatchingJobQueue(max_pending=8)
        queue.put(self._handle("k"))
        queue.put(self._handle("k"))
        queue.put(self._handle("other"))
        assert queue.depth() == 3
        assert queue.pending_batches() == 2

    def test_promoted_batch_dispatches_once_and_first(self):
        """A promoting rider re-files its batch; the stale entry is skipped."""
        queue = BatchingJobQueue(max_pending=8)
        queue.put(self._handle("k", JobPriority.NORMAL))
        queue.put(self._handle("other", JobPriority.NORMAL))
        assert queue.put(self._handle("k", JobPriority.HIGH)) == "coalesced"
        batch = queue.get(timeout=1)
        assert batch is not None and batch.key == "k" and len(batch) == 2
        other = queue.get(timeout=1)
        assert other is not None and other.key == "other"
        # The superseded NORMAL entry for "k" must not dispatch a second time.
        assert queue.get(timeout=0.05) is None

    def test_blocked_producers_with_same_key_never_strand_jobs(self):
        """Riders that coalesce after waking from a full-queue wait must
        leave their batch dispatchable (regression: the blocked-path attach
        used to skip the heap re-push on promotion)."""
        queue = BatchingJobQueue(max_pending=1)
        queue.put(self._handle("x"))
        outcomes: list[str] = []

        def producer(priority: JobPriority) -> None:
            outcomes.append(queue.put(self._handle("k", priority), timeout=10))

        producers = [
            threading.Thread(target=producer, args=(priority,))
            for priority in (JobPriority.NORMAL, JobPriority.HIGH)
        ]
        for thread in producers:
            thread.start()
        first = queue.get(timeout=2)
        assert first is not None and first.key == "x"
        collected = 0
        while collected < 2:
            batch = queue.get(timeout=2)
            assert batch is not None, "a submitted job was stranded in the queue"
            assert batch.key == "k"
            collected += len(batch)
        for thread in producers:
            thread.join()
        assert len(outcomes) == 2

    def test_close_wakes_consumers_and_rejects_producers(self):
        queue = BatchingJobQueue(max_pending=2)
        queue.close()
        assert queue.get(timeout=1) is None
        with pytest.raises(ExecutionError):
            queue.put(self._handle("k"))


@pytest.mark.slow
class TestSustainedLoadSoak:
    """Long-running stress: eviction churn, mixed shots, many tenants."""

    def test_sustained_multi_tenant_load_stays_consistent(self):
        n_clients = 24
        jobs_per_client = 20
        circuits = [distinct_circuit(i, n_qubits=4) for i in range(12)]
        shot_choices = (128, 256, 512, 1024)
        errors: list[BaseException] = []
        lock = threading.Lock()
        # A cache far smaller than the working set forces eviction churn.
        with QuantumJobService(workers=4, max_pending=512, cache_capacity=4) as service:
            barrier = threading.Barrier(n_clients)

            def client(index: int) -> None:
                try:
                    barrier.wait()
                    for j in range(jobs_per_client):
                        circuit = circuits[(index + j) % len(circuits)]
                        shots = shot_choices[(index * j) % len(shot_choices)]
                        result = service.submit(circuit, shots=shots).result(timeout=120)
                        assert result.total_counts() == shots
                except BaseException as exc:
                    with lock:
                        errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            metrics = service.metrics()
        assert not errors
        assert metrics.completed == n_clients * jobs_per_client
        assert metrics.failed == 0
        assert metrics.cache.evictions > 0
        # Dedup must hold even under churn: executions strictly below traffic.
        assert metrics.executions < metrics.completed
        assert get_race_detector().race_count() == 0


class TestRaceContrast:
    """The paper's contrast, driven through the broker under real load."""

    N_CLIENTS = 16

    def _hammer(self, service: QuantumJobService) -> None:
        barrier = threading.Barrier(self.N_CLIENTS)
        errors: list[BaseException] = []
        lock = threading.Lock()

        def client(index: int) -> None:
            try:
                barrier.wait()
                handles = [
                    service.submit(distinct_circuit(index * 4 + j, n_qubits=6), shots=512)
                    for j in range(2)
                ]
                for handle in handles:
                    assert handle.result(timeout=60).total_counts() == 512
            except BaseException as exc:  # surface client failures to the test
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(self.N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_sixteen_clients_thread_safe_mode_records_zero_races(self):
        set_config(thread_safe=True)
        with QuantumJobService(workers=4, max_pending=256) as service:
            self._hammer(service)
        assert get_race_detector().race_count() == 0

    def test_sixteen_clients_legacy_mode_records_races(self):
        with configure(thread_safe=False):
            with QuantumJobService(workers=8, max_pending=256) as service:
                self._hammer(service)
            detector = get_race_detector()
            assert detector.race_count() > 0
            assert "global_qpu" in detector.resources_with_races()

    def test_thread_safe_workers_hold_distinct_qpu_clones(self):
        set_config(thread_safe=True)
        manager = repro.QPUManager.get_instance()
        service = QuantumJobService(workers=4, auto_start=False)
        handles = [service.submit(distinct_circuit(i), shots=64) for i in range(8)]
        service.start()
        for handle in handles:
            handle.result(timeout=30)
        # Every dispatcher thread registered its own accelerator instance.
        assert manager.distinct_instances() == 4
        service.shutdown(wait=True)
        assert manager.active_thread_count() == 0
