"""Integration tests: the paper's listings and multi-threaded scenarios end to end.

These tests exercise the full stack (DSL -> IR -> runtime -> simulator) the
way the paper's evaluation does: multiple user threads each executing
quantum kernels against their own per-thread QPU instance, plus the legacy
(non-thread-safe) mode demonstrating why the contribution is needed.
"""

import concurrent.futures
import threading

import pytest

import repro
from repro.algorithms.bell import bell_kernel
from repro.algorithms.shor import run_order_finding
from repro.compiler.dsl import CX, H, Measure
from repro.config import set_config
from repro.core.executor import KernelTask, run_one_by_one, run_parallel
from repro.core.qpu_manager import QPUManager
from repro.core.race_detector import get_race_detector
from repro.core.threading_api import qcor_async, qcor_thread
from repro.runtime.allocation import allocated_buffer_count


def bell_foo(shots: int = 128) -> dict[str, int]:
    """The ``foo()`` helper of Listings 4 and 5."""
    q = repro.qalloc(2)
    bell_kernel(q, shots=shots)
    return q.counts()


class TestPaperListings:
    def test_listing1_single_source_bell(self):
        """Listing 1/2: allocate, run the kernel, inspect the histogram."""
        q = repro.qalloc(2)
        bell_kernel(q, shots=1024)
        counts = q.counts()
        assert set(counts) <= {"00", "11"}
        assert sum(counts.values()) == 1024
        assert abs(counts.get("00", 0) - 512) < 120

    def test_listing4_std_thread_two_bell_kernels(self):
        results = []
        lock = threading.Lock()

        def foo():
            counts = bell_foo()
            with lock:
                results.append(counts)

        t0 = qcor_thread(foo)
        t1 = qcor_thread(foo)
        t0.join()
        t1.join()
        assert len(results) == 2
        for counts in results:
            assert sum(counts.values()) == 128

    def test_listing5_std_async_bell_kernel(self):
        future = qcor_async(lambda: (bell_foo(), 1)[1])
        # "Other classical/quantum work" can happen here on the main thread.
        main_thread_counts = bell_foo(shots=32)
        assert future.result(timeout=60) == 1
        assert sum(main_thread_counts.values()) == 32

    def test_listing3_vqe_workflow(self):
        from repro.algorithms.vqe import run_deuteron_vqe

        result = run_deuteron_vqe(optimizer_name="l-bfgs")
        assert result.error < 1e-3


class TestMultiThreadedStress:
    def test_many_threads_running_kernels_concurrently(self):
        n_threads = 8
        outcomes = {}
        barrier = threading.Barrier(n_threads)
        lock = threading.Lock()

        def worker(index):
            barrier.wait(timeout=30)
            counts = bell_foo(shots=64)
            with lock:
                outcomes[index] = counts

        threads = [qcor_thread(worker, i) for i in range(n_threads)]
        for t in threads:
            t.join()
        assert len(outcomes) == n_threads
        for counts in outcomes.values():
            assert sum(counts.values()) == 64
            assert set(counts) <= {"00", "11"}

    def test_concurrent_qalloc_is_consistent_in_thread_safe_mode(self):
        before = allocated_buffer_count()
        n_threads, per_thread = 8, 25

        def allocate():
            for _ in range(per_thread):
                repro.qalloc(2)

        with concurrent.futures.ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(lambda _: allocate(), range(n_threads)))
        assert allocated_buffer_count() == before + n_threads * per_thread
        assert get_race_detector().race_count("allocated_buffers") == 0

    def test_legacy_mode_records_unsafe_allocation_accesses(self):
        set_config(thread_safe=False)
        n_threads = 8

        def allocate():
            for _ in range(50):
                repro.qalloc(2)

        with concurrent.futures.ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(lambda _: allocate(), range(n_threads)))
        detector = get_race_detector()
        # Every allocation went through the unlocked (unsafe) code path; the
        # overlap itself is timing dependent (the critical section is a single
        # dict insert), so only the unsafe-entry accounting is asserted here —
        # deterministic overlap detection is covered by the race-detector unit
        # tests, which force it with barriers.
        assert detector.unsafe_entries.get("allocated_buffers", 0) == n_threads * 50
        assert detector.race_count("allocated_buffers") >= 0

    def test_thread_safe_mode_gives_each_thread_a_distinct_accelerator(self):
        instances = []
        barrier = threading.Barrier(4)
        lock = threading.Lock()

        def worker():
            barrier.wait(timeout=30)
            with lock:
                instances.append(id(repro.get_qpu()))
            bell_foo(16)

        threads = [qcor_thread(worker) for _ in range(4)]
        for t in threads:
            t.join()
        assert len(set(instances)) == 4

    def test_legacy_mode_shares_one_accelerator_across_threads(self):
        set_config(thread_safe=False)
        instances = []
        lock = threading.Lock()

        def worker():
            with lock:
                instances.append(id(repro.get_qpu()))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(instances)) == 1

    def test_counts_unaffected_by_concurrency(self):
        """Correctness check: per-thread results match the single-threaded ones."""
        reference = bell_foo(shots=256)
        futures = [qcor_async(bell_foo, 256) for _ in range(4)]
        for future in futures:
            counts = future.result(timeout=120)
            assert set(counts) <= {"00", "11"}
            assert sum(counts.values()) == sum(reference.values())


class TestTaskLevelParallelismEndToEnd:
    def test_two_shor_tasks_in_parallel_produce_valid_periods(self):
        futures = [
            qcor_async(run_order_finding, 15, 2, 10),
            qcor_async(run_order_finding, 15, 7, 10),
        ]
        results = [f.result(timeout=300) for f in futures]
        assert all(r.period in (2, 4) for r in results)
        assert any(r.factors == (3, 5) for r in results)

    def test_executor_variants_agree_on_results(self):
        tasks = [
            KernelTask(f"bell_{i}", lambda: bell_kernel.as_circuit(2), 2, shots=64)
            for i in range(2)
        ]
        sequential = run_one_by_one(tasks, total_threads=2)
        parallel = run_parallel(tasks, total_threads=2)
        for report in (sequential, parallel):
            for result in report.results:
                assert sum(result.counts.values()) == 64
                assert set(result.counts) <= {"00", "11"}

    def test_qpu_manager_is_empty_after_parallel_run(self):
        tasks = [
            KernelTask(f"bell_{i}", lambda: bell_kernel.as_circuit(2), 2, shots=16)
            for i in range(3)
        ]
        run_parallel(tasks, total_threads=3)
        assert QPUManager.get_instance().active_thread_count() == 0


class TestDslThreadIsolation:
    def test_kernels_traced_on_different_threads_do_not_interleave(self):
        """Two threads tracing kernels simultaneously must not mix gates —
        the trace context is thread-local (unlike the legacy global state the
        paper fixes)."""
        mismatches = []
        barrier = threading.Barrier(2)

        def trace_many(flavour):
            from repro.compiler.kernel import qpu

            @qpu
            def kernel(q):
                barrier.wait(timeout=30)
                for _ in range(100):
                    if flavour == "h":
                        H(q[0])
                    else:
                        CX(q[0], q[1])
                Measure(q[0])

            circuit = kernel.as_circuit(2)
            expected = "H" if flavour == "h" else "CX"
            if any(inst.name not in (expected, "MEASURE") for inst in circuit):
                mismatches.append(flavour)

        threads = [
            threading.Thread(target=trace_many, args=("h",)),
            threading.Thread(target=trace_many, args=("cx",)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not mismatches
