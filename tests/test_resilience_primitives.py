"""Unit contracts of the fault-tolerance building blocks.

Covers the primitives the lifecycle tier composes — cancellation tokens,
retry policies and failure classification, the lane circuit breaker,
memory-budget admission control, the walk-the-structure memory accounting,
and the fault-injection harness itself — in isolation, so the service- and
chaos-level tests can assume these semantics.
"""

import threading
import time

import numpy as np
import pytest

from repro.algorithms.bell import bell_circuit
from repro.cancellation import (
    CancelToken,
    active_cancel_token,
    cancel_scope,
    combine_tokens,
)
from repro.exceptions import (
    AdmissionRejected,
    CompilationError,
    DeadlineExceeded,
    JobCancelled,
    RetryExhausted,
    WorkerCrashed,
)
from repro.exec.retry import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    RetryPolicy,
    is_infrastructure_failure,
    is_retryable,
)
from repro.service.admission import AdmissionController, estimate_job_bytes
from repro.service.breaker import CircuitBreaker
from repro.simulator.execution_plan import compile_plan
from repro.testing import FaultSpec, InjectedFault, clear_faults, fire, install_faults


@pytest.fixture(autouse=True)
def no_fault_litter():
    yield
    clear_faults()


# ---------------------------------------------------------------------------
# CancelToken
# ---------------------------------------------------------------------------


class TestCancelToken:
    def test_untripped_token_checks_clean(self):
        token = CancelToken()
        token.check()
        assert not token.cancelled
        assert not token.expired()
        assert token.remaining() is None

    def test_cancel_raises_job_cancelled(self):
        token = CancelToken()
        token.cancel()
        with pytest.raises(JobCancelled):
            token.check()

    def test_deadline_raises_deadline_exceeded(self):
        token = CancelToken(timeout=0.01)
        time.sleep(0.03)
        assert token.expired()
        with pytest.raises(DeadlineExceeded):
            token.check()

    def test_cancel_wins_over_expired_deadline(self):
        token = CancelToken(timeout=0.01)
        time.sleep(0.03)
        token.cancel()
        with pytest.raises(JobCancelled):
            token.check()

    def test_earlier_of_deadline_and_timeout_wins(self):
        absolute = time.time() + 100.0
        token = CancelToken(deadline=absolute, timeout=1.0)
        assert token.deadline < absolute

    def test_ambient_scope_installs_and_restores(self):
        assert active_cancel_token() is None
        token = CancelToken()
        with cancel_scope(token):
            assert active_cancel_token() is token
            inner = CancelToken()
            with cancel_scope(inner):
                assert active_cancel_token() is inner
            assert active_cancel_token() is token
        assert active_cancel_token() is None

    def test_none_scope_is_a_no_op(self):
        with cancel_scope(None):
            assert active_cancel_token() is None

    def test_scope_is_thread_local(self):
        token = CancelToken()
        seen = {}

        def probe():
            seen["other"] = active_cancel_token()

        with cancel_scope(token):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["other"] is None


class TestCombinedToken:
    def test_single_part_returns_the_part(self):
        token = CancelToken()
        assert combine_tokens([token]) is token

    def test_cancelled_only_when_all_parts_cancelled(self):
        a, b = CancelToken(), CancelToken()
        combined = combine_tokens([a, b])
        a.cancel()
        assert not combined.cancelled
        combined.check()  # one rider still wants the result
        b.cancel()
        assert combined.cancelled
        with pytest.raises(JobCancelled):
            combined.check()

    def test_deadline_is_latest_of_parts(self):
        now = time.time()
        a = CancelToken(deadline=now + 1.0)
        b = CancelToken(deadline=now + 5.0)
        assert combine_tokens([a, b]).deadline == b.deadline

    def test_any_unbounded_part_makes_combined_unbounded(self):
        a = CancelToken(deadline=time.time() + 1.0)
        b = CancelToken()
        assert combine_tokens([a, b]).deadline is None


# ---------------------------------------------------------------------------
# Retry policy + classification
# ---------------------------------------------------------------------------


class TestFailureClassification:
    @pytest.mark.parametrize(
        "error",
        [EOFError(), ConnectionError(), OSError(), WorkerCrashed("w")],
    )
    def test_infrastructure_errors_are_retryable(self, error):
        assert is_retryable(error)
        assert is_infrastructure_failure(error)

    @pytest.mark.parametrize(
        "error",
        [
            JobCancelled("c"),
            DeadlineExceeded("d"),
            AdmissionRejected("a"),
            CompilationError("bad"),
            TimeoutError(),  # OSError subclass: terminal must win
        ],
    )
    def test_job_shaped_errors_are_terminal(self, error):
        assert not is_retryable(error)
        assert not is_infrastructure_failure(error)

    def test_retry_exhausted_feeds_the_breaker_but_not_retries(self):
        error = RetryExhausted("done", attempts=3)
        assert not is_retryable(error)
        assert is_infrastructure_failure(error)

    def test_memory_pressure_feeds_the_breaker(self):
        assert is_infrastructure_failure(MemoryError())
        assert not is_retryable(MemoryError())


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_should_retry_respects_budget_and_classification(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1, OSError())
        assert policy.should_retry(2, OSError())
        assert not policy.should_retry(3, OSError())
        assert not policy.should_retry(1, CompilationError("bad"))

    def test_no_retry_never_retries(self):
        assert not NO_RETRY.should_retry(1, OSError())

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.1, max_delay=0.4, multiplier=2.0, jitter=0.0
        )
        delays = [policy.delay_for(retry) for retry in range(1, 6)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays[2] == pytest.approx(0.4)
        assert delays[3] == pytest.approx(0.4)  # capped
        assert delays == sorted(delays)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.1)
        for retry in (1, 2, 3):
            once = policy.delay_for(retry)
            again = policy.delay_for(retry)
            assert once == again
            base = min(policy.max_delay, 0.1 * 2.0 ** (retry - 1))
            assert base * 0.9 <= once <= base * 1.1

    def test_sleep_honours_a_tripped_token(self):
        policy = RetryPolicy(max_attempts=2, base_delay=5.0, jitter=0.0)
        token = CancelToken()
        token.cancel()
        started = time.perf_counter()
        with pytest.raises(JobCancelled):
            policy.sleep(1, token)
        assert time.perf_counter() - started < 1.0

    def test_exhausted_carries_attempts_and_cause(self):
        policy = RetryPolicy(max_attempts=2)
        cause = OSError("pipe")
        error = policy.exhausted("shard 0", 2, cause)
        assert isinstance(error, RetryExhausted)
        assert error.attempts == 2
        assert error.__cause__ is cause
        assert "shard 0" in str(error)

    def test_default_policy_matches_historical_single_retry(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 2


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_single_probe_then_close_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 11.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe slot
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_retrips(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        clock.now += 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 2

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(name="lane-x", clock=FakeClock())
        snap = breaker.snapshot()
        assert snap["name"] == "lane-x"
        assert snap["state"] == "closed"
        assert snap["trips"] == 0


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_estimate_scales_with_qubits_and_shots(self):
        assert estimate_job_bytes(10) == (1 << 10) * 32
        assert estimate_job_bytes(10, shots=100) == (1 << 10) * 32 + 800
        assert estimate_job_bytes(20) > estimate_job_bytes(10)

    def test_unbudgeted_admits_immediately(self):
        controller = AdmissionController(None)
        ticket = controller.admit(10**12)
        ticket.release()  # no-op, never raises

    def test_hopeless_request_rejected_immediately(self):
        controller = AdmissionController(1000, max_wait=30.0)
        started = time.perf_counter()
        with pytest.raises(AdmissionRejected) as info:
            controller.admit(2000)
        assert time.perf_counter() - started < 1.0
        assert info.value.requested_bytes == 2000
        assert info.value.budget_bytes == 1000

    def test_grant_release_cycle_and_accounting(self):
        controller = AdmissionController(1000)
        with controller.admit(600):
            assert controller.used_bytes() == 600
            with controller.admit(400):
                assert controller.used_bytes() == 1000
        assert controller.used_bytes() == 0
        snap = controller.snapshot()
        assert snap["admitted"] == 2
        assert snap["inflight_tickets"] == 0

    def test_queued_job_admitted_when_ticket_releases(self):
        controller = AdmissionController(1000, max_wait=5.0)
        first = controller.admit(800)
        got = {}

        def second():
            with controller.admit(800, deadline=None):
                got["admitted"] = True

        t = threading.Thread(target=second)
        t.start()
        time.sleep(0.1)
        assert "admitted" not in got  # still queued
        first.release()
        t.join(timeout=5)
        assert got.get("admitted")
        assert controller.snapshot()["waited"] == 1

    def test_wait_times_out_with_accounting(self):
        controller = AdmissionController(1000, max_wait=0.15)
        ticket = controller.admit(900)
        try:
            with pytest.raises(AdmissionRejected) as info:
                controller.admit(900)
            assert info.value.used_bytes >= 900
        finally:
            ticket.release()

    def test_deadline_bounds_the_wait_below_max_wait(self):
        controller = AdmissionController(1000, max_wait=60.0)
        ticket = controller.admit(900)
        try:
            started = time.perf_counter()
            with pytest.raises(AdmissionRejected):
                controller.admit(900, deadline=time.time() + 0.15)
            assert time.perf_counter() - started < 5.0
        finally:
            ticket.release()

    def test_resident_sources_count_against_the_budget(self):
        resident = {"bytes": 0}
        controller = AdmissionController(
            1000, max_wait=0.1, resident_sources=(lambda: resident["bytes"],)
        )
        with controller.admit(800):
            pass
        resident["bytes"] = 900
        with pytest.raises(AdmissionRejected):
            controller.admit(800)

    def test_dying_resident_source_is_ignored(self):
        def broken():
            raise RuntimeError("mid-teardown")

        controller = AdmissionController(1000, resident_sources=(broken,))
        assert controller.resident_bytes() == 0
        controller.admit(500).release()

    def test_ticket_release_is_idempotent(self):
        controller = AdmissionController(1000)
        ticket = controller.admit(400)
        ticket.release()
        ticket.release()
        assert controller.used_bytes() == 0


# ---------------------------------------------------------------------------
# Memory accounting (the walk, not a counter)
# ---------------------------------------------------------------------------


class TestMemoryWalk:
    def test_plan_memory_counts_ndarray_payloads(self):
        circuit = bell_circuit()
        plan = compile_plan(circuit, 2)
        assert plan.memory_bytes() >= 0
        # A wider circuit's plan carries at least as much payload.
        from repro.algorithms.qft import qft_circuit

        wide = compile_plan(qft_circuit(5), 5)
        assert wide.memory_bytes() >= plan.memory_bytes()

    def test_plan_cache_memory_sums_entries(self):
        from repro.simulator.plan_cache import PlanCache

        cache = PlanCache(capacity=8)
        assert cache.memory_bytes() == 0
        cache.lookup_or_compile(bell_circuit(), 2)
        assert cache.memory_bytes() >= 0

    def test_result_cache_memory_tracks_histograms(self):
        from repro.service.cache import ResultCache

        cache = ResultCache(capacity=8)
        assert cache.memory_bytes() == 0
        cache.store("key-1", {"00": 50, "11": 50}, "qpp")
        assert cache.memory_bytes() > 0


# ---------------------------------------------------------------------------
# Fault harness
# ---------------------------------------------------------------------------


class TestFaultHarness:
    def test_disarmed_fire_is_a_no_op(self):
        clear_faults()
        fire("nowhere")  # must not raise

    def test_fail_fires_then_disarms_after_times(self):
        install_faults([FaultSpec(site="x", action="fail", times=2)])
        with pytest.raises(InjectedFault):
            fire("x")
        with pytest.raises(InjectedFault):
            fire("x")
        fire("x")  # exhausted

    def test_after_skips_initial_hits(self):
        install_faults([FaultSpec(site="x", action="fail", after=2, times=1)])
        fire("x")
        fire("x")
        with pytest.raises(InjectedFault):
            fire("x")

    def test_kind_selects_the_exception(self):
        install_faults([FaultSpec(site="x", action="fail", kind="memory")])
        with pytest.raises(MemoryError):
            fire("x")
        clear_faults()
        install_faults([FaultSpec(site="x", action="fail", kind="compile")])
        with pytest.raises(CompilationError):
            fire("x")

    def test_slow_sleeps(self):
        install_faults([FaultSpec(site="x", action="slow", seconds=0.05)])
        started = time.perf_counter()
        fire("x")
        assert time.perf_counter() - started >= 0.05

    def test_sites_are_independent(self):
        install_faults([FaultSpec(site="x", action="fail")])
        fire("y")  # different site: no fault
        with pytest.raises(InjectedFault):
            fire("x")

    def test_global_scope_counts_across_simulated_respawns(self):
        # A respawned worker resets per-process counters; the global scope
        # must still fire exactly `times` total.  Simulate by resetting the
        # per-process hit dict between fires.
        install_faults(
            [FaultSpec(site="x", action="fail", times=1, scope="global")]
        )
        from repro.testing import faults as faults_module

        with pytest.raises(InjectedFault):
            fire("x")
        faults_module._PLAN.hits.clear()  # "respawn"
        fire("x")  # sentinel file says the one firing already happened

    def test_invalid_specs_rejected_at_install(self):
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="explode")
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="fail", kind="nope")
        with pytest.raises(ValueError):
            FaultSpec(site="x", scope="galactic")

    def test_clear_removes_env_and_sentinels(self):
        import os

        install_faults([FaultSpec(site="x", scope="global")])
        from repro.testing import faults as faults_module

        sentinel_dir = faults_module._PLAN.sentinel_dir
        assert os.environ.get("REPRO_FAULTS")
        clear_faults()
        assert "REPRO_FAULTS" not in os.environ
        assert not os.path.isdir(sentinel_dir)
