"""Tests for CompositeInstruction (circuits)."""

import numpy as np
import pytest

from repro.exceptions import InvalidGateError, IRError, ParameterBindingError
from repro.ir.builder import CircuitBuilder
from repro.ir.composite import CompositeInstruction
from repro.ir.gates import CX, H, Measure, RX, RY, X
from repro.ir.parameter import Parameter


def bell() -> CompositeInstruction:
    return CircuitBuilder(2, name="bell").h(0).cx(0, 1).measure_all().build()


class TestConstruction:
    def test_add_grows_width_when_unspecified(self):
        circuit = CompositeInstruction("c")
        circuit.add(H([3]))
        assert circuit.n_qubits == 4

    def test_explicit_width_enforced(self):
        circuit = CompositeInstruction("c", 2)
        with pytest.raises(InvalidGateError):
            circuit.add(H([2]))

    def test_inlining_composites(self):
        inner = CircuitBuilder(2).h(0).cx(0, 1).build()
        outer = CompositeInstruction("outer", 2)
        outer.add(inner)
        assert outer.n_instructions == 2

    def test_add_rejects_non_instructions(self):
        with pytest.raises(IRError):
            CompositeInstruction("c").add("H")  # type: ignore[arg-type]

    def test_len_and_iteration(self):
        circuit = bell()
        assert len(circuit) == 4
        assert [inst.name for inst in circuit] == ["H", "CX", "MEASURE", "MEASURE"]

    def test_indexing(self):
        assert bell()[1].name == "CX"


class TestIntrospection:
    def test_gate_counts(self):
        counts = bell().gate_counts()
        assert counts["H"] == 1
        assert counts["CX"] == 1
        assert counts["MEASURE"] == 2

    def test_n_gates_excludes_measurements(self):
        assert bell().n_gates == 2
        assert bell().n_measurements == 2

    def test_depth_linear_chain(self):
        circuit = CircuitBuilder(1).h(0).x(0).z(0).build()
        assert circuit.depth() == 3

    def test_depth_parallel_gates_share_a_layer(self):
        circuit = CircuitBuilder(2).h(0).h(1).cx(0, 1).build()
        assert circuit.depth() == 2

    def test_qubits_used(self):
        circuit = CircuitBuilder(5).h(0).cx(2, 4).build()
        assert circuit.qubits_used() == frozenset({0, 2, 4})

    def test_measured_qubits_in_program_order(self):
        circuit = CompositeInstruction("c", 3)
        circuit.add(Measure([2]))
        circuit.add(Measure([0]))
        circuit.add(Measure([2]))
        assert circuit.measured_qubits() == (2, 0)

    def test_free_parameters(self):
        theta = Parameter("theta")
        circuit = CircuitBuilder(1).rx(0, theta).build()
        assert circuit.free_parameters == frozenset({theta})
        assert circuit.is_parameterized


class TestRewriting:
    def test_bind_by_mapping(self):
        circuit = CircuitBuilder(1).rx(0, Parameter("theta")).build()
        bound = circuit.bind({"theta": 0.5})
        assert not bound.is_parameterized
        assert bound[0].parameters == (0.5,)

    def test_bind_by_sequence_sorted_by_name(self):
        circuit = (
            CircuitBuilder(1)
            .rx(0, Parameter("beta"))
            .ry(0, Parameter("alpha"))
            .build()
        )
        bound = circuit.bind([1.0, 2.0])  # alpha=1.0, beta=2.0 (sorted)
        assert bound[0].parameters == (2.0,)
        assert bound[1].parameters == (1.0,)

    def test_bind_wrong_length_raises(self):
        circuit = CircuitBuilder(1).rx(0, Parameter("t")).build()
        with pytest.raises(ParameterBindingError):
            circuit.bind([1.0, 2.0])

    def test_inverse_reverses_and_inverts(self):
        circuit = CircuitBuilder(2).h(0).s(1).cx(0, 1).build()
        inverse = circuit.inverse()
        names = [inst.name for inst in inverse]
        assert names == ["CX", "SDG", "H"]

    def test_inverse_round_trip_is_identity(self):
        circuit = CircuitBuilder(2).h(0).t(0).cx(0, 1).ry(1, 0.3).build()
        combined = circuit + circuit.inverse()
        assert np.allclose(combined.to_unitary(), np.eye(4), atol=1e-10)

    def test_remapped(self):
        circuit = CircuitBuilder(2).cx(0, 1).build()
        remapped = circuit.remapped({0: 2, 1: 0})
        assert remapped[0].qubits == (2, 0)

    def test_remapped_missing_qubit_raises(self):
        circuit = CircuitBuilder(2).cx(0, 1).build()
        with pytest.raises(IRError):
            circuit.remapped({0: 1})

    def test_copy_is_deep_for_instruction_list(self):
        circuit = bell()
        clone = circuit.copy()
        clone.add(X([0]))
        assert circuit.n_instructions == 4
        assert clone.n_instructions == 5

    def test_concatenation_via_plus(self):
        combined = CircuitBuilder(1).h(0).build() + CircuitBuilder(1).x(0).build()
        assert [inst.name for inst in combined] == ["H", "X"]

    def test_without_measurements(self):
        stripped = bell().without_measurements()
        assert stripped.n_measurements == 0
        assert stripped.n_gates == 2


class TestDenseAndText:
    def test_to_unitary_for_bell_preparation(self):
        circuit = bell().without_measurements()
        unitary = circuit.to_unitary()
        state = unitary[:, 0]
        assert np.allclose(np.abs(state) ** 2, [0.5, 0, 0, 0.5])

    def test_to_unitary_rejects_measurements(self):
        with pytest.raises(IRError):
            bell().to_unitary()

    def test_to_xasm_contains_gate_lines(self):
        text = bell().to_xasm()
        assert "H(q[0]);" in text
        assert "CX(q[0], q[1]);" in text

    def test_equality(self):
        assert bell() == bell()
        other = CircuitBuilder(2, name="bell").h(0).cx(0, 1).build()
        assert bell() != other

    def test_equality_tolerates_float_noise(self):
        a = CircuitBuilder(1).rx(0, 0.5).build()
        b = CircuitBuilder(1).rx(0, 0.5 + 1e-12).build()
        assert a == b
