"""Tests for the VQE deuteron example and QAOA MaxCut."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.qaoa import (
    cut_value,
    maxcut_hamiltonian,
    qaoa_circuit,
    run_qaoa_maxcut,
)
from repro.algorithms.vqe import (
    deuteron_ansatz_circuit,
    deuteron_hamiltonian,
    run_deuteron_vqe,
)
from repro.exceptions import ConfigurationError
from repro.simulator.statevector import StateVector


class TestDeuteronVQE:
    def test_hamiltonian_ground_state_energy(self):
        assert deuteron_hamiltonian().ground_state_energy(2) == pytest.approx(-1.74886, abs=1e-4)

    def test_ansatz_structure_matches_listing3(self):
        circuit = deuteron_ansatz_circuit()
        assert [i.name for i in circuit] == ["X", "RY", "CX"]
        assert circuit.is_parameterized

    def test_vqe_converges_to_ground_state_with_lbfgs(self):
        result = run_deuteron_vqe(optimizer_name="l-bfgs")
        assert result.optimal_energy == pytest.approx(result.exact_ground_energy, abs=1e-3)
        assert result.error < 1e-3

    def test_vqe_converges_with_nelder_mead(self):
        result = run_deuteron_vqe(optimizer_name="nelder-mead")
        assert result.optimal_energy == pytest.approx(result.exact_ground_energy, abs=1e-3)

    def test_vqe_with_parameter_shift_gradient(self):
        result = run_deuteron_vqe(optimizer_name="l-bfgs", gradient_strategy="parameter-shift")
        assert result.error < 1e-3

    def test_sampled_vqe_lands_near_ground_state(self):
        # A non-zero starting angle keeps Nelder-Mead's initial simplex larger
        # than the shot noise; SPSA would be the natural choice on hardware.
        result = run_deuteron_vqe(
            optimizer_name="nelder-mead", exact=False, shots=4096, initial_theta=0.4
        )
        assert result.optimal_energy == pytest.approx(result.exact_ground_energy, abs=0.25)

    def test_result_records_evaluations(self):
        result = run_deuteron_vqe()
        assert result.function_evaluations > 0


def triangle() -> nx.Graph:
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (0, 2)])
    return graph


class TestQAOA:
    def test_maxcut_hamiltonian_energy_tracks_cut_value(self):
        graph = triangle()
        H = maxcut_hamiltonian(graph)
        matrix = H.to_matrix(3)
        # Energy of a computational basis state = -(cut value).
        for index in range(8):
            assignment = "".join("1" if (index >> i) & 1 else "0" for i in range(3))
            assert matrix[index, index].real == pytest.approx(-cut_value(graph, assignment))

    def test_cut_value_with_weights(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=2.5)
        assert cut_value(graph, "01") == pytest.approx(2.5)
        assert cut_value(graph, "00") == pytest.approx(0.0)

    def test_qaoa_circuit_layer_structure(self):
        circuit = qaoa_circuit(triangle(), [0.4], [0.3])
        names = [i.name for i in circuit]
        assert names.count("H") == 3       # initial superposition
        assert names.count("RX") == 3      # one mixer rotation per node
        assert names.count("RZ") == 3      # one cost rotation per edge
        assert names.count("CX") == 6

    def test_qaoa_angle_count_validation(self):
        with pytest.raises(ConfigurationError):
            qaoa_circuit(triangle(), [0.1, 0.2], [0.3])
        with pytest.raises(ConfigurationError):
            qaoa_circuit(triangle(), [], [])

    def test_qaoa_state_is_normalised(self):
        state = StateVector(3)
        state.apply_circuit(qaoa_circuit(triangle(), [0.2, 0.5], [0.1, 0.3]))
        assert state.norm() == pytest.approx(1.0)

    def test_run_qaoa_on_triangle_reaches_good_cut(self):
        result = run_qaoa_maxcut(triangle(), p=2, seed=7)
        assert result.max_possible_cut == pytest.approx(2.0)
        assert result.best_cut_value >= 1.9
        assert result.approximation_ratio >= 0.95

    def test_run_qaoa_on_path_graph(self):
        graph = nx.path_graph(4)
        result = run_qaoa_maxcut(graph, p=2, seed=3)
        assert result.max_possible_cut == pytest.approx(3.0)
        assert result.best_cut_value >= 2.5

    def test_run_qaoa_validation(self):
        with pytest.raises(ConfigurationError):
            run_qaoa_maxcut(triangle(), p=0)
        with pytest.raises(ConfigurationError):
            maxcut_hamiltonian(nx.Graph())

    def test_np_argmax_bitstring_matches_graph_size(self):
        result = run_qaoa_maxcut(triangle(), p=1, seed=11)
        assert len(result.best_bitstring) == 3
        assert isinstance(result.optimal_angles, np.ndarray)
