"""Tests for the machine topology and contention models."""

import pytest

from repro.exceptions import ConfigurationError
from repro.parallel.affinity import PAPER_MACHINE, MachineTopology, detect_host_topology
from repro.parallel.contention import ContentionModel, parallel_efficiency


class TestMachineTopology:
    def test_paper_machine_matches_the_evaluation_platform(self):
        assert PAPER_MACHINE.physical_cores == 12
        assert PAPER_MACHINE.smt_per_core == 2
        assert PAPER_MACHINE.hardware_threads == 24
        assert "3900X" in PAPER_MACHINE.name

    def test_cores_for_and_smt_threads_for(self):
        assert PAPER_MACHINE.cores_for(6) == 6
        assert PAPER_MACHINE.cores_for(30) == 12
        assert PAPER_MACHINE.smt_threads_for(6) == 0
        assert PAPER_MACHINE.smt_threads_for(18) == 6
        assert PAPER_MACHINE.smt_threads_for(64) == 12

    def test_oversubscription(self):
        assert PAPER_MACHINE.oversubscribed(24) == 0
        assert PAPER_MACHINE.oversubscribed(30) == 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MachineTopology("bad", physical_cores=0)
        with pytest.raises(ConfigurationError):
            MachineTopology("bad", physical_cores=2, smt_per_core=0)

    def test_host_detection_returns_sane_values(self):
        host = detect_host_topology()
        assert host.physical_cores >= 1
        assert host.smt_per_core in (1, 2)


class TestContentionModel:
    def test_throughput_scales_linearly_up_to_physical_cores(self):
        model = ContentionModel()
        assert model.total_throughput(1) == pytest.approx(1.0)
        assert model.total_throughput(6) == pytest.approx(6.0)
        assert model.total_throughput(12) == pytest.approx(12.0)

    def test_smt_threads_add_little_beyond_physical_cores(self):
        model = ContentionModel()
        gain = model.total_throughput(24) - model.total_throughput(12)
        assert 0.0 <= gain < 6.0  # far below the 12 extra hardware threads

    def test_throughput_never_negative_or_decreasing_by_much(self):
        model = ContentionModel()
        # The 12 -> 24 thread region must stay roughly flat (the paper's
        # observation that 24 threads do not beat 12 for one kernel).
        assert model.total_throughput(24) == pytest.approx(model.total_throughput(12), rel=0.2)

    def test_per_thread_rate_decreases_with_load(self):
        model = ContentionModel()
        assert model.per_thread_rate(1) >= model.per_thread_rate(12) >= model.per_thread_rate(24)

    def test_zero_threads_edge_case(self):
        model = ContentionModel()
        assert model.total_throughput(0) == 0.0
        assert model.per_thread_rate(0) == 0.0

    def test_team_overhead_grows_with_team_size(self):
        model = ContentionModel()
        assert model.team_overhead_factor(1) == pytest.approx(1.0)
        assert model.team_overhead_factor(24) > model.team_overhead_factor(12) > 1.0
        with pytest.raises(ConfigurationError):
            model.team_overhead_factor(0)

    def test_effective_speedup_with_background_load(self):
        model = ContentionModel()
        alone = model.effective_speedup(12, background_threads=0)
        contended = model.effective_speedup(12, background_threads=12)
        assert contended < alone

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ContentionModel(smt_yield=1.5)
        with pytest.raises(ConfigurationError):
            ContentionModel(cache_penalty=-0.1)
        with pytest.raises(ConfigurationError):
            ContentionModel(sync_overhead_per_thread=-1)

    def test_parallel_efficiency_helper(self):
        assert parallel_efficiency(1) == pytest.approx(1.0)
        assert 0.0 < parallel_efficiency(24) < parallel_efficiency(6) <= 1.0
        with pytest.raises(ConfigurationError):
            parallel_efficiency(0)
