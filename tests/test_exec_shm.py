"""Shared-memory process-parallel replay (`repro.exec.shm`).

The contracts under test:

* **Shm == serial, bitwise** — replaying a plan across
  :class:`SharedStatePool` worker processes must produce bit-for-bit the
  amplitudes of the serial replay for every kernel class, every worker
  count, and targets whose stride spans chunk edges — exactly the
  guarantee the thread lane gives (`test_simulator_chunked_plan`), now
  across process boundaries.
* **Fixed-seed counts identity** — local (thread-chunked), shm and
  sharded execution of the algorithm suite must produce identical
  histograms for a fixed seed.
* **Lifecycle hygiene** — every start method works, closed pools refuse
  work, and no ``/dev/shm`` segment (nor resource-tracker complaint)
  survives pool close, worker SIGKILL, or a process that exits without
  ever calling ``close()``.
"""

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.algorithms.vqe import deuteron_ansatz_circuit
from repro.exceptions import ExecutionError
from repro.exec import LocalBackend, ShardedExecutor, SharedStatePool
from repro.exec.shm import (
    SEGMENT_PREFIX,
    get_shared_state_pool,
    shutdown_shared_state_pools,
)
from repro.ir import gates as G
from repro.ir.builder import CircuitBuilder
from repro.ir.composite import CompositeInstruction
from repro.simulator.execution_plan import compile_parametric_plan, compile_plan
from repro.simulator.parallel_engine import ParallelSimulationEngine

from test_simulator_chunked_plan import random_circuit

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory required"
)


def live_segments() -> list[str]:
    return sorted(f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX))


@pytest.fixture(autouse=True)
def no_segment_litter():
    """Every test must leave /dev/shm exactly as it found it."""
    before = live_segments()
    yield
    assert live_segments() == before


# ---------------------------------------------------------------------------
# Shm replay == serial replay, bitwise
# ---------------------------------------------------------------------------


class TestShmBitwiseIdentity:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_randomized_circuits_all_kernels(self, workers):
        rng = np.random.default_rng(20260729 + workers)
        with SharedStatePool(workers, name=f"shm-rand-{workers}") as pool:
            for _ in range(4):
                n_qubits = int(rng.integers(4, 8))
                circuit = random_circuit(rng, n_qubits, int(rng.integers(8, 30)))
                plan = compile_plan(circuit, n_qubits, chunk_threshold=2)
                serial = plan.execute(plan.new_state())
                shm = plan.execute(plan.new_state(), pool=pool)
                assert np.array_equal(serial, shm)

    def test_stride_spans_chunk_edge(self):
        """Top-qubit targets force the column/assignment split paths."""
        n = 6
        circuit = CompositeInstruction("edge", n)
        circuit.add(G.H([n - 1]))
        circuit.add(G.RZ([n - 1], [0.7]))
        circuit.add(G.CX([n - 1, 0]))
        circuit.add(G.CH([n - 1, n - 2]))
        circuit.add(G.ISwap([0, n - 1]))
        circuit.add(G.CPhase([n - 2, n - 1], [0.3]))
        circuit.add(G.PermutationGate([1, 0, 3, 2], [n - 2, n - 1]))
        plan = compile_plan(circuit, n, optimize=False, chunk_threshold=2)
        serial = plan.execute(plan.new_state())
        with SharedStatePool(3, name="shm-edge") as pool:
            shm = plan.execute(plan.new_state(), pool=pool)
        assert np.array_equal(serial, shm)

    def test_from_random_input_state(self):
        """replay_plan round-trips arbitrary input data, not just |0...0>."""
        rng = np.random.default_rng(13)
        n = 7
        circuit = random_circuit(rng, n, 25)
        plan = compile_plan(circuit, n, chunk_threshold=2)
        state = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        state /= np.linalg.norm(state)
        serial = plan.execute(state.copy())
        with SharedStatePool(2, name="shm-input") as pool:
            shm = plan.execute(state.copy(), pool=pool)
        assert np.array_equal(serial, shm)

    def test_parametric_plans_rebind_through_shm(self):
        """Workers recompile the symbolic ansatz and rebind with the shipped
        values, reproducing the parent's thread-plan binding bit for bit."""
        ansatz = deuteron_ansatz_circuit().without_measurements()
        parametric = compile_parametric_plan(ansatz, 2, chunk_threshold=2)
        with SharedStatePool(2, name="shm-parametric") as pool:
            for theta in (0.1, 0.59, -1.3):
                plan = parametric.bind([theta])
                serial = plan.execute(plan.new_state())
                plan = parametric.bind([theta])
                shm = plan.execute(plan.new_state(), pool=pool)
                assert np.array_equal(serial, shm)

    def test_matches_thread_lane_bitwise(self):
        """Thread lane and shm lane both equal serial, hence each other —
        the ChunkPool interchangeability contract."""
        plan = compile_plan(qft_circuit(8), 8, chunk_threshold=2)
        serial = plan.execute(plan.new_state())
        with ParallelSimulationEngine(num_threads=3) as engine:
            threaded = plan.execute(plan.new_state(), pool=engine)
        with SharedStatePool(3, name="shm-vs-threads") as pool:
            shm = plan.execute(plan.new_state(), pool=pool)
        assert np.array_equal(serial, threaded)
        assert np.array_equal(serial, shm)

    def test_reset_plans_fall_back_to_the_fallback_pool(self):
        """Mid-circuit resets cannot span processes; the pool hands the
        replay to its fallback (the thread engine), consuming the RNG
        stream exactly as serial replay does."""
        builder = CircuitBuilder(4, name="reset_shm")
        builder.h(0)
        builder.cx(0, 1)
        builder.reset(1)
        builder.cphase(1, 2, 0.5)
        builder.h(3)
        circuit = builder.build()
        plan = compile_plan(circuit, 4, optimize=False, chunk_threshold=2)
        serial = plan.execute(plan.new_state(), rng=np.random.default_rng(7))
        with ParallelSimulationEngine(num_threads=3) as engine:
            with SharedStatePool(2, name="shm-reset", fallback=engine) as pool:
                assert not pool.can_replay(plan)
                shm = plan.execute(
                    plan.new_state(), rng=np.random.default_rng(7), pool=pool
                )
        assert np.array_equal(serial, shm)


# ---------------------------------------------------------------------------
# Fixed-seed counts identity: local / shm / sharded
# ---------------------------------------------------------------------------


def algorithm_suite():
    shor = period_finding_circuit(15, 2)
    vqe = deuteron_ansatz_circuit(0.59)
    return {
        "bell": (bell_circuit(2), 2),
        "ghz": (ghz_circuit(5), 5),
        "qft": (qft_circuit(6), 6),
        "shor": (shor, shor.n_qubits),
        "vqe": (vqe, max(vqe.n_qubits, 2)),
    }


class TestShmCountsIdentity:
    def test_fixed_seed_counts_identical_local_vs_shm_vs_sharded(self):
        """The same engine threads sample in all three configurations and
        the replays are bitwise identical, so not a single count may move
        between the thread lane, the shm lane and the sharded path."""
        local = LocalBackend(engine=ParallelSimulationEngine(num_threads=2))
        shm = LocalBackend(
            engine=ParallelSimulationEngine(num_threads=2),
            shm_pool=SharedStatePool(2, name="shm-counts"),
        )
        with ShardedExecutor(2, name="shm-counts-shard") as sharded:
            for name, (circuit, width) in algorithm_suite().items():
                reference = local.execute(
                    circuit, 256, n_qubits=width, seed=4242, chunk_threshold=2
                )
                via_shm = shm.execute(
                    circuit, 256, n_qubits=width, seed=4242, chunk_threshold=2
                )
                via_shards = sharded.execute(
                    circuit, 256, n_qubits=width, seed=4242, chunk_threshold=2
                )
                assert dict(via_shm.counts) == dict(reference.counts), name
                assert dict(via_shards.counts) == dict(reference.counts), name
        shm.shm_pool.close()
        local.close()
        shm.close()

    def test_expectation_bitwise_identical_local_vs_shm(self):
        from repro.operators.pauli import PauliTerm

        observable = PauliTerm({0: "Z", 1: "Z"}, 1.0)
        local = LocalBackend(engine=ParallelSimulationEngine(num_threads=2))
        pool = SharedStatePool(2, name="shm-expect")
        shm = LocalBackend(
            engine=ParallelSimulationEngine(num_threads=2), shm_pool=pool
        )
        circuit = qft_circuit(6)
        reference = local.expectation(circuit, observable, n_qubits=6, chunk_threshold=2)
        via_shm = shm.expectation(circuit, observable, n_qubits=6, chunk_threshold=2)
        assert reference == via_shm
        pool.close()
        local.close()
        shm.close()


# ---------------------------------------------------------------------------
# Lifecycle: start methods, thresholds, closed pools, shared registry
# ---------------------------------------------------------------------------


class TestShmLifecycle:
    @pytest.mark.parametrize("method", ["fork", "spawn", "forkserver"])
    def test_start_method_lifecycle(self, method):
        """The macOS/Windows-relevant start methods must work end to end:
        spawn/forkserver workers preload the simulator stack while
        starting (the worker target unpickles from this package) and then
        replay bitwise-identically."""
        plan = compile_plan(qft_circuit(6), 6, chunk_threshold=2)
        serial = plan.execute(plan.new_state())
        with SharedStatePool(2, name=f"shm-{method}", mp_context=method) as pool:
            assert pool.start_method == method
            shm = plan.execute(plan.new_state(), pool=pool)
            assert np.array_equal(serial, shm)
        assert pool.closed

    def test_below_threshold_states_never_allocate_segments(self):
        plan = compile_plan(bell_circuit(2), 2)  # default threshold = 2^16
        with SharedStatePool(2, name="shm-small") as pool:
            plan.execute(plan.new_state(), pool=pool)
            assert pool.segment_names() == ()

    def test_closed_pool_falls_back_to_serial(self):
        plan = compile_plan(qft_circuit(6), 6, chunk_threshold=2)
        serial = plan.execute(plan.new_state())
        pool = SharedStatePool(2, name="shm-closed")
        pool.close()
        assert not pool.can_replay(plan)
        result = plan.execute(plan.new_state(), pool=pool)
        assert np.array_equal(serial, result)

    def test_single_worker_pool_declines(self):
        plan = compile_plan(qft_circuit(6), 6, chunk_threshold=2)
        with SharedStatePool(1, name="shm-one") as pool:
            assert not pool.can_replay(plan)
            assert pool.replay_plan(plan, plan.new_state()) is None

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ExecutionError):
            SharedStatePool(0)

    def test_shared_registry_reuses_and_replaces(self):
        first = get_shared_state_pool(2)
        assert get_shared_state_pool(2) is first
        first.close()
        second = get_shared_state_pool(2)
        assert second is not first
        shutdown_shared_state_pools()
        assert second.closed

    def test_segments_grow_but_never_shrink(self):
        """A bigger state reallocates; a smaller one reuses the larger
        segments (workers view only the leading amplitudes)."""
        small = compile_plan(qft_circuit(6), 6, chunk_threshold=2)
        large = compile_plan(qft_circuit(8), 8, chunk_threshold=2)
        with SharedStatePool(2, name="shm-grow") as pool:
            small.execute(small.new_state(), pool=pool)
            first = pool.segment_names()
            large_serial = large.execute(large.new_state())
            large_shm = large.execute(large.new_state(), pool=pool)
            assert np.array_equal(large_serial, large_shm)
            grown = pool.segment_names()
            assert grown != first
            small_serial = small.execute(small.new_state())
            small_shm = small.execute(small.new_state(), pool=pool)
            assert np.array_equal(small_serial, small_shm)
            assert pool.segment_names() == grown


# ---------------------------------------------------------------------------
# Teardown: SIGKILL mid-step, leak sweeps, shard-borrowed pools
# ---------------------------------------------------------------------------


class TestShmTeardown:
    @pytest.mark.parametrize("victim_index", [0, 1])
    def test_sigkill_worker_recovers_and_cleans(self, victim_index):
        """A SIGKILLed worker leaves its siblings at the step barrier; the
        parent must detect the death, abort, respawn the worker set, fail
        the replay cleanly — and still leave /dev/shm spotless at close.
        Both victim positions matter: killing the *last* worker while the
        first blocks alive at the barrier is the case an in-order ack wait
        would hang on forever."""
        plan = compile_plan(qft_circuit(7), 7, chunk_threshold=2)
        serial = plan.execute(plan.new_state())
        pool = SharedStatePool(2, name=f"shm-kill-{victim_index}")
        victim = pool.worker_pids()[victim_index]
        os.kill(victim, signal.SIGKILL)
        with pytest.raises(ExecutionError, match="mid-replay"):
            plan.execute(plan.new_state(), pool=pool)
        assert pool.respawns == 1
        assert victim not in pool.worker_pids()
        # The pool recovered: the next replay is clean and correct.
        shm = plan.execute(plan.new_state(), pool=pool)
        assert np.array_equal(serial, shm)
        pool.close()
        assert pool.segment_names() == ()

    def test_exit_without_close_sweeps_segments(self):
        """A process that exits without close() must not litter /dev/shm or
        provoke resource-tracker complaints — the atexit/finalizer sweep
        owns the cleanup."""
        script = textwrap.dedent(
            """
            from repro.exec.shm import SharedStatePool
            from repro.simulator.execution_plan import compile_plan
            from repro.algorithms.qft import qft_circuit

            plan = compile_plan(qft_circuit(6), 6, chunk_threshold=2)
            pool = SharedStatePool(2, name="shm-litter")
            plan.execute(plan.new_state(), pool=pool)
            print("SEGMENTS:" + ",".join(pool.segment_names()))
            # no close(): the exit sweep must handle it
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        names = result.stdout.split("SEGMENTS:", 1)[1].strip().split(",")
        assert len(names) == 2
        for name in names:
            assert not os.path.exists(os.path.join("/dev/shm", name))
        assert "resource_tracker" not in result.stderr

    def test_multi_state_concurrent_replays_distinct_gangs(self):
        """A K-slot pool serves concurrent replays from *distinct* gangs —
        each bit-identical to serial — and still closes spotless."""
        import threading

        plan = compile_plan(qft_circuit(9), 9, chunk_threshold=2)
        serial = plan.execute(plan.new_state())
        peak_states = []
        errors = []
        with SharedStatePool(4, max_states=2, name="shm-multi") as pool:
            assert pool.gang_size == 2

            def replay_loop():
                try:
                    for _ in range(3):
                        shm = plan.execute(plan.new_state(), pool=pool)
                        assert np.array_equal(serial, shm)
                        peak_states.append(pool.resident_states)
                except Exception as exc:  # surface into the main thread
                    errors.append(exc)

            threads = [threading.Thread(target=replay_loop) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert errors == []
            # Concurrent load spawned the second gang lazily.
            assert max(peak_states) == 2
            assert pool.resident_bytes > 0
            assert len(pool.segment_names()) == 4  # 2 gangs × (state+scratch)
        assert pool.segment_names() == ()

    def test_multi_state_byte_budget_caps_residency(self):
        """A byte budget too small for a second state keeps the pool at one
        resident gang — replays serialize instead of over-allocating."""
        import threading

        plan = compile_plan(qft_circuit(8), 8, chunk_threshold=2)
        serial = plan.execute(plan.new_state())
        # 8 qubits complex128: 4096 B/segment, 8192 B/gang.  A 10 kB budget
        # fits one gang but refuses the second.
        with SharedStatePool(
            4, max_states=2, byte_budget=10_000, name="shm-budget"
        ) as pool:
            errors = []

            def replay_loop():
                try:
                    for _ in range(3):
                        shm = plan.execute(plan.new_state(), pool=pool)
                        assert np.array_equal(serial, shm)
                        assert pool.resident_states == 1
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=replay_loop) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert errors == []
            assert pool.resident_states == 1
        assert pool.segment_names() == ()

    def test_multi_state_sigkill_recovers_one_gang(self):
        """Killing a worker breaks only its own gang: the pool respawns that
        gang, the replay fails cleanly, later replays succeed, and close
        leaves /dev/shm spotless and no orphan processes."""
        plan = compile_plan(qft_circuit(7), 7, chunk_threshold=2)
        serial = plan.execute(plan.new_state())
        pool = SharedStatePool(4, max_states=2, name="shm-multi-kill")
        pids_before = pool.worker_pids()
        victim = pids_before[0]  # a gang-0 worker (the only eager gang)
        os.kill(victim, signal.SIGKILL)
        with pytest.raises(ExecutionError, match="mid-replay"):
            plan.execute(plan.new_state(), pool=pool)
        assert pool.respawns == 1
        all_pids = pool.worker_pids()
        assert victim not in all_pids
        shm = plan.execute(plan.new_state(), pool=pool)
        assert np.array_equal(serial, shm)
        pool.close()
        assert pool.segment_names() == ()
        # No orphan worker processes: every pid is gone (or reaped).
        for pid in set(pids_before) | set(all_pids):
            with pytest.raises(OSError):
                os.kill(pid, 0)

    def test_multi_state_exit_without_close_sweeps_all_gangs(self):
        """A multi-state pool abandoned at interpreter exit must sweep every
        gang's segments, not just slot 0's."""
        script = textwrap.dedent(
            """
            import threading
            from repro.exec.shm import SharedStatePool
            from repro.simulator.execution_plan import compile_plan
            from repro.algorithms.qft import qft_circuit

            plan = compile_plan(qft_circuit(8), 8, chunk_threshold=2)
            pool = SharedStatePool(4, max_states=2, name="shm-multi-litter")

            def loop():
                for _ in range(3):
                    plan.execute(plan.new_state(), pool=pool)

            threads = [threading.Thread(target=loop) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            print("SEGMENTS:" + ",".join(pool.segment_names()))
            # no close(): the exit sweep must handle every gang
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        names = [
            n
            for n in result.stdout.split("SEGMENTS:", 1)[1].strip().split(",")
            if n
        ]
        assert len(names) >= 2  # at least gang 0's state+scratch
        for name in names:
            assert not os.path.exists(os.path.join("/dev/shm", name))
        assert "resource_tracker" not in result.stderr

    def test_registry_keys_multi_state_pools_separately(self):
        """``get_shared_state_pool(p, k)`` is keyed by (processes, states):
        the multi-state pool does not displace the single-state one."""
        single = get_shared_state_pool(2)
        multi = get_shared_state_pool(4, 2)
        try:
            assert single is not multi
            assert multi.gang_size == 2
            assert get_shared_state_pool(4, 2) is multi
            assert get_shared_state_pool(2) is single
        finally:
            shutdown_shared_state_pools()

    def test_shard_borrowed_pool_cleans_on_executor_close(self):
        """A shard worker that borrowed an shm pool exits through
        multiprocessing's os._exit path (no atexit) — the finalizer sweep
        must still release the worker-owned segments."""
        shor = period_finding_circuit(15, 2)
        reference = LocalBackend(engine=ParallelSimulationEngine(num_threads=1))
        expected = reference.execute(shor, 128, seed=77, chunk_threshold=2)
        reference.close()
        with ShardedExecutor(1, name="shm-borrow", shm_processes=2) as sharded:
            result = sharded.execute_for_key(
                "feed" * 16, shor, 128, seed=77, chunk_threshold=2
            )
            assert dict(result.counts) == dict(expected.counts)
        # ShardedExecutor.close() joined the shard worker; its finalizer
        # already swept the borrowed pool's segments (asserted by the
        # autouse no_segment_litter fixture).
