"""Unit tests for the job broker's canonical keys and result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.exceptions import ExecutionError
from repro.service.cache import CachedResult, ResultCache, subsample_counts
from repro.service.keys import circuit_content_hash, config_fingerprint, job_key


class TestJobKeys:
    def test_same_circuit_same_key(self):
        assert job_key(bell_circuit(2), "qpp") == job_key(bell_circuit(2), "qpp")

    def test_circuit_name_does_not_fragment_keys(self):
        a = bell_circuit(2)
        b = bell_circuit(2)
        b.name = "a_totally_different_name"
        assert circuit_content_hash(a) == circuit_content_hash(b)

    def test_different_instructions_different_key(self):
        assert job_key(bell_circuit(2), "qpp") != job_key(ghz_circuit(3), "qpp")

    def test_backend_fragment_keys(self):
        assert job_key(bell_circuit(2), "qpp") != job_key(bell_circuit(2), "noisy-qpp")

    def test_non_semantic_options_ignored(self):
        # Thread count changes speed, not measurement distributions.
        assert config_fingerprint("qpp", {"threads": 4}) == config_fingerprint(
            "qpp", {"threads": 8}
        )
        assert config_fingerprint("qpp", {"threads": 4}) == config_fingerprint("qpp")

    def test_plan_tuning_options_are_non_semantic(self):
        # Chunked replay is bitwise identical and diagonal batching is
        # distribution-equivalent: neither may fragment the result cache.
        assert config_fingerprint("qpp", {"chunk-threshold": 2}) == config_fingerprint("qpp")
        assert config_fingerprint("qpp", {"batch-diagonals": False}) == config_fingerprint(
            "qpp"
        )
        assert config_fingerprint(
            "qpp", {"batch-diagonals": False, "chunk-threshold": 64, "threads": 2}
        ) == config_fingerprint("qpp")

    def test_semantic_options_fragment_keys(self):
        assert config_fingerprint("noisy-qpp", {"p1": 0.01}) != config_fingerprint(
            "noisy-qpp", {"p1": 0.05}
        )

    def test_backend_name_case_insensitive(self):
        assert config_fingerprint("QPP") == config_fingerprint("qpp")


class TestSubsampleCounts:
    def test_preserves_total_and_support(self):
        counts = {"00": 600, "11": 400}
        sub = subsample_counts(counts, 100, np.random.default_rng(7))
        assert sum(sub.values()) == 100
        assert set(sub) <= set(counts)

    def test_full_total_returns_copy(self):
        counts = {"00": 10, "11": 6}
        sub = subsample_counts(counts, 16)
        assert sub == counts
        assert sub is not counts

    def test_oversample_rejected(self):
        with pytest.raises(ExecutionError):
            subsample_counts({"0": 5}, 6)

    def test_deterministic_for_same_rng_seed(self):
        counts = {"00": 512, "01": 128, "11": 384}
        first = subsample_counts(counts, 200, np.random.default_rng(42))
        second = subsample_counts(counts, 200, np.random.default_rng(42))
        assert first == second

    def test_never_exceeds_per_bin_counts(self):
        counts = {"0": 3, "1": 997}
        sub = subsample_counts(counts, 500, np.random.default_rng(0))
        assert sub.get("0", 0) <= 3


class TestResultCache:
    def test_miss_then_hit_stats(self):
        cache = ResultCache(capacity=4)
        assert cache.lookup("k", 100) is None
        cache.store("k", {"00": 60, "11": 40}, backend="qpp")
        entry = cache.lookup("k", 100)
        assert isinstance(entry, CachedResult)
        assert entry.shots == 100
        stats = cache.stats()
        assert (stats.misses, stats.hits, stats.partial_hits) == (1, 1, 0)
        assert stats.hit_rate == 0.5

    def test_partial_hit_when_fewer_shots_cached(self):
        cache = ResultCache(capacity=4)
        cache.store("k", {"0": 50}, backend="qpp")
        entry = cache.lookup("k", 200)
        assert entry is not None and entry.shots == 50
        assert cache.stats().partial_hits == 1

    def test_top_up_merges_counts(self):
        cache = ResultCache(capacity=4)
        cache.store("k", {"00": 30, "11": 20}, backend="qpp")
        merged = cache.top_up("k", {"00": 5, "01": 10}, backend="qpp")
        assert merged.counts == {"00": 35, "11": 20, "01": 10}
        assert merged.shots == 65
        assert cache.stats().top_ups == 1

    def test_top_up_of_evicted_key_inserts(self):
        cache = ResultCache(capacity=4)
        merged = cache.top_up("fresh", {"0": 8}, backend="qpp")
        assert merged.shots == 8
        assert cache.stats().top_ups == 0

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.store("a", {"0": 1}, backend="qpp")
        cache.store("b", {"0": 1}, backend="qpp")
        cache.lookup("a", 1)  # refresh "a" so "b" is the LRU victim
        cache.store("c", {"0": 1}, backend="qpp")
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats().evictions == 1

    def test_peek_does_not_touch_stats_or_order(self):
        cache = ResultCache(capacity=2)
        cache.store("a", {"0": 1}, backend="qpp")
        cache.store("b", {"0": 1}, backend="qpp")
        cache.peek("a")  # not a refresh: "a" stays the LRU victim
        cache.store("c", {"0": 1}, backend="qpp")
        assert "a" not in cache
        assert cache.stats().lookups == 0

    def test_invalidate_and_clear(self):
        cache = ResultCache(capacity=4)
        cache.store("a", {"0": 1}, backend="qpp")
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        cache.store("b", {"0": 1}, backend="qpp")
        cache.clear()
        assert len(cache) == 0

    def test_capacity_validated(self):
        with pytest.raises(ExecutionError):
            ResultCache(capacity=0)
