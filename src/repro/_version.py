"""Package version information."""

__version__ = "0.1.0"

#: Version tuple for programmatic comparisons.
VERSION_INFO = tuple(int(part) for part in __version__.split("."))
