"""Structured tracing with cross-thread and cross-process propagation.

A :class:`Span` is one timed operation; spans link to a parent through
``(trace_id, parent_id)`` and a whole job forms one tree.  The design
constraints come from the execution stack this instruments:

* **Dispatcher threads.**  The broker creates a job's root span on the
  submitting thread but the batch executes on a dispatcher thread, so the
  current context lives in a :class:`contextvars.ContextVar` and the broker
  *explicitly* activates the root context on the executing thread
  (:meth:`Tracer.activate`) instead of relying on implicit inheritance.
* **Process boundaries.**  Sharded and shm workers are separate processes;
  a :class:`TraceContext` serialises to a plain dict (:meth:`TraceContext.to_wire`)
  that ships inside the job payload, the worker records spans against that
  remote parent, and the finished spans travel back with the result as
  dicts to be stitched into the parent tracer via :meth:`Tracer.ingest`.
* **Zero overhead when off.**  With tracing disabled and no ambient
  context, :meth:`Tracer.span` returns a shared no-op span without
  allocating; the hot paths pay one attribute read and one branch.

Worker processes never enable their own tracer: a span is recorded
whenever an *explicit remote parent* is supplied, so sampling is decided
once at root creation and inherited by the entire tree.
"""

from __future__ import annotations

import os
import random
import secrets
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from collections import deque
from typing import Any, Iterable, Iterator, Mapping, NamedTuple

__all__ = [
    "NOOP_SPAN",
    "Span",
    "TraceContext",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
]

_UNSET = object()


class TraceContext(NamedTuple):
    """Immutable (trace_id, span_id) pair identifying a position in a trace."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict[str, str]:
        """Plain-dict form safe to pickle into a cross-process job payload."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, payload: Mapping[str, str] | None) -> "TraceContext | None":
        if not payload:
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not trace_id or not span_id:
            return None
        return cls(str(trace_id), str(span_id))


def _new_id() -> str:
    return secrets.token_hex(8)


class Span:
    """One timed operation in a trace tree.

    Wall-clock start (``time.time()``) anchors the span on a host-shared
    timeline so spans from different processes align; the duration is a
    ``perf_counter`` delta so it stays monotonic.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_wall",
        "duration",
        "attributes",
        "error",
        "pid",
        "thread",
        "_t0",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        tracer: "Tracer | None" = None,
        attributes: Mapping[str, Any] | None = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_wall = time.time()
        self.duration: float | None = None
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.error: str | None = None
        self.pid = os.getpid()
        self.thread = threading.current_thread().name
        self._t0 = time.perf_counter()
        self._tracer = tracer
        self._token = None

    # -- identity -------------------------------------------------------
    def context(self) -> TraceContext:
        """Context under which children of this span should be created."""
        return TraceContext(self.trace_id, self.span_id)

    @property
    def recording(self) -> bool:
        return True

    # -- mutation -------------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def mark_error(self, message: str) -> None:
        self.error = str(message)

    def finish(self) -> None:
        """Close the span and hand it to the owning tracer (idempotent)."""
        if self.duration is not None:
            return
        self.duration = time.perf_counter() - self._t0
        tracer = self._tracer
        if tracer is not None:
            tracer._record_finished(self)

    # -- context-manager protocol ----------------------------------------
    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            self._token = tracer._current.set(self.context())
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            tracer = self._tracer
            if tracer is not None:
                tracer._current.reset(self._token)
            self._token = None
        if exc is not None and self.error is None:
            self.mark_error(f"{exc_type.__name__}: {exc}")
        self.finish()

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall": self.start_wall,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "error": self.error,
            "pid": self.pid,
            "thread": self.thread,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        span = cls.__new__(cls)
        span.name = str(payload["name"])
        span.trace_id = str(payload["trace_id"])
        span.span_id = str(payload["span_id"])
        parent = payload.get("parent_id")
        span.parent_id = str(parent) if parent else None
        span.start_wall = float(payload.get("start_wall", 0.0))
        duration = payload.get("duration")
        span.duration = float(duration) if duration is not None else 0.0
        span.attributes = dict(payload.get("attributes") or {})
        error = payload.get("error")
        span.error = str(error) if error else None
        span.pid = int(payload.get("pid", 0))
        span.thread = str(payload.get("thread", ""))
        span._t0 = 0.0
        span._tracer = None
        span._token = None
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.3f}ms" if self.duration is not None else "open"
        return f"Span({self.name!r}, {state}, trace={self.trace_id[:8]})"


class _NoopSpan:
    """Shared do-nothing span returned when tracing is off."""

    __slots__ = ()

    @property
    def recording(self) -> bool:
        return False

    def context(self) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def mark_error(self, message: str) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(<noop>)"


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Process-wide span factory, ring buffer, and stitcher.

    Disabled by default.  Three ways a span gets recorded:

    * the tracer is enabled and sampling admits a new **root**;
    * an **ambient context** exists on the current thread (we are inside an
      admitted trace), regardless of the enable flag;
    * an **explicit remote parent** is passed (worker process recording on
      behalf of a trace admitted elsewhere).
    """

    def __init__(self, capacity: int = 8192):
        self._lock = threading.Lock()
        self._enabled = False
        self._sample_rate = 1.0
        self._spans: deque[Span] = deque(maxlen=int(capacity))
        self._current: ContextVar[TraceContext | None] = ContextVar(
            "repro-trace-context", default=None
        )
        self._sinks = threading.local()

    # -- switches ---------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def sample_rate(self) -> float:
        return self._sample_rate

    def enable(self, sample_rate: float = 1.0) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self._sample_rate = float(sample_rate)
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # -- span creation ------------------------------------------------------
    def current_context(self) -> TraceContext | None:
        """Ambient context on this thread, or ``None`` outside any trace."""
        return self._current.get()

    def span(
        self,
        name: str,
        attrs: Mapping[str, Any] | None = None,
        *,
        parent: "TraceContext | None | object" = _UNSET,
    ) -> "Span | _NoopSpan":
        """Start a span; use as a context manager or ``finish()`` manually.

        ``parent`` left unset means "ambient context, else new root".
        Passing ``parent=None`` explicitly means "child of nothing": the
        caller had a parent slot and it was empty, so nothing is recorded
        — this keeps sampled-out traces sampled out downstream.
        """
        if parent is _UNSET:
            ctx = self._current.get()
            if ctx is None:
                if not self._enabled:
                    return NOOP_SPAN
                if self._sample_rate < 1.0 and random.random() >= self._sample_rate:
                    return NOOP_SPAN
                return Span(
                    name,
                    trace_id=_new_id(),
                    span_id=_new_id(),
                    parent_id=None,
                    tracer=self,
                    attributes=attrs,
                )
        else:
            ctx = parent  # type: ignore[assignment]
            if ctx is None:
                return NOOP_SPAN
        return Span(
            name,
            trace_id=ctx.trace_id,
            span_id=_new_id(),
            parent_id=ctx.span_id,
            tracer=self,
            attributes=attrs,
        )

    def record(
        self,
        name: str,
        *,
        parent: TraceContext | None,
        start_wall: float,
        duration: float,
        attrs: Mapping[str, Any] | None = None,
        error: str | None = None,
    ) -> "Span | _NoopSpan":
        """Record a span for an interval that already elapsed.

        Used for phases whose start predates the code that can observe
        them — e.g. queue-wait, measured when the batch is *dequeued*.
        """
        if parent is None:
            return NOOP_SPAN
        span = Span(
            name,
            trace_id=parent.trace_id,
            span_id=_new_id(),
            parent_id=parent.span_id,
            tracer=self,
            attributes=attrs,
        )
        span.start_wall = float(start_wall)
        if error is not None:
            span.mark_error(error)
        span.duration = max(0.0, float(duration))
        self._record_finished(span)
        return span

    @contextmanager
    def activate(self, ctx: TraceContext | None) -> Iterator[None]:
        """Make ``ctx`` the ambient context for the body (cross-thread hand-off)."""
        if ctx is None:
            yield
            return
        token = self._current.set(ctx)
        try:
            yield
        finally:
            self._current.reset(token)

    # -- capture / stitching --------------------------------------------------
    @contextmanager
    def capture(self) -> Iterator[list[Span]]:
        """Collect every span finished or ingested on this thread.

        Worker processes wrap their replay in ``capture()`` and ship
        ``[s.to_dict() for s in sink]`` home with the result; nested
        captures (shard worker hosting shm workers) each see the spans, so
        two-hop stitching works.
        """
        sink: list[Span] = []
        stack = getattr(self._sinks, "stack", None)
        if stack is None:
            stack = []
            self._sinks.stack = stack
        stack.append(sink)
        try:
            yield sink
        finally:
            stack.pop()

    def ingest(self, payloads: Iterable[Mapping[str, Any]]) -> list[Span]:
        """Stitch worker-serialised spans into this tracer's buffer."""
        spans = [Span.from_dict(p) for p in payloads]
        for span in spans:
            self._record_finished(span)
        return spans

    def _record_finished(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
        stack = getattr(self._sinks, "stack", None)
        if stack:
            for sink in stack:
                sink.append(span)

    # -- retrieval ---------------------------------------------------------
    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Finished spans, oldest first, optionally filtered to one trace."""
        with self._lock:
            snapshot = list(self._spans)
        if trace_id is None:
            return snapshot
        return [s for s in snapshot if s.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids present in the buffer, oldest first."""
        seen: dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def render_tree(self, trace_id: str, *, indent: str = "  ") -> str:
        """ASCII tree of one trace, children ordered by start time."""
        spans = self.spans(trace_id)
        by_id = {s.span_id: s for s in spans}
        children: dict[str | None, list[Span]] = {}
        for span in spans:
            parent = span.parent_id if span.parent_id in by_id else None
            children.setdefault(parent, []).append(span)
        for bucket in children.values():
            bucket.sort(key=lambda s: s.start_wall)
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            dur = f"{(span.duration or 0.0) * 1e3:.3f} ms"
            err = " [ERROR]" if span.error else ""
            lines.append(f"{indent * depth}{span.name} ({dur}){err}")
            for child in children.get(span.span_id, ()):  # pragma: no branch
                walk(child, depth + 1)

        for root in children.get(None, ()):
            walk(root, 0)
        return "\n".join(lines)


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (one per process; workers get their own)."""
    return _tracer


def enable_tracing(sample_rate: float = 1.0) -> Tracer:
    """Turn on tracing process-wide; returns the tracer for convenience."""
    _tracer.enable(sample_rate)
    return _tracer


def disable_tracing() -> None:
    """Turn off tracing process-wide (already-recorded spans are kept)."""
    _tracer.disable()
