"""Zero-dependency observability for the execution stack.

Three pillars, all off by default:

* :mod:`repro.obs.trace` — structured spans with parent/child links whose
  context propagates across dispatcher threads *and* process boundaries
  (sharded workers, shm replay workers), so one broker job yields a single
  stitched tree: queue-wait → cache lookup → compile → shard dispatch →
  per-step replay → barrier wait → result reconcile.
* :mod:`repro.obs.metrics` — fixed-bucket latency histograms (p50/p95/p99)
  backing the broker's :class:`~repro.service.metrics.MetricsSnapshot`.
* :mod:`repro.obs.profiler` — opt-in per-kernel replay profiler attributing
  plan-replay time to each kernel class and to shm barrier wait; the
  measured constants the calibration roadmap item needs.

:mod:`repro.obs.export` renders any of it as Prometheus text exposition,
plain JSON, or Chrome trace-event JSON (loadable in Perfetto).
"""

from __future__ import annotations

from .export import chrome_trace_events, to_chrome_trace, to_json, to_prometheus
from .metrics import DEFAULT_LATENCY_BUCKETS, HistogramSnapshot, LatencyHistogram
from .profiler import (
    KernelTiming,
    ProfileSnapshot,
    ReplayProfiler,
    active_profiler,
    disable_profiler,
    enable_profiler,
)
from .trace import (
    Span,
    TraceContext,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "HistogramSnapshot",
    "KernelTiming",
    "LatencyHistogram",
    "ProfileSnapshot",
    "ReplayProfiler",
    "Span",
    "TraceContext",
    "Tracer",
    "active_profiler",
    "chrome_trace_events",
    "disable_profiler",
    "disable_tracing",
    "enable_profiler",
    "enable_tracing",
    "get_tracer",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
]
