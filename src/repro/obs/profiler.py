"""Opt-in per-kernel replay profiler.

Attributes plan-replay wall time to each kernel class
(single/controlled/diagonal/permutation/gather/dense/…) and to shm barrier
wait.  The hooks live in :meth:`ExecutionPlan.execute` and the shm step
loop; both check :func:`active_profiler` once per replay and run their
original tight loop untouched when it returns ``None``, so the disabled
cost is a single module-global read.

Kernel seconds are *cumulative worker-seconds* (like CPU time): a serial
replay's kernels sum to the replay's wall time, while an N-worker shm
replay contributes each worker's share, so the sum approaches N× wall.
That is exactly the quantity the cost-model calibration needs — per-kernel
work, not elapsed time.

Worker processes never share the parent's profiler object; they build a
local :class:`ReplayProfiler`, serialise it with :meth:`ReplayProfiler.to_wire`,
and the parent folds it in with :meth:`ReplayProfiler.merge_wire`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Iterator, Mapping

__all__ = [
    "KernelTiming",
    "ProfileSnapshot",
    "ReplayProfiler",
    "active_profiler",
    "disable_profiler",
    "enable_profiler",
    "profiler_installed",
]


@dataclass(frozen=True)
class KernelTiming:
    """Aggregate timing for one kernel class."""

    calls: int
    seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class ProfileSnapshot:
    """Immutable view of a :class:`ReplayProfiler`."""

    kernels: Mapping[str, KernelTiming]
    barrier_waits: int
    barrier_wait_seconds: float

    @property
    def total_kernel_seconds(self) -> float:
        return sum(t.seconds for t in self.kernels.values())

    @property
    def total_calls(self) -> int:
        return sum(t.calls for t in self.kernels.values())

    def as_table(self) -> str:
        """Fixed-width text table, slowest kernel class first."""
        rows = sorted(self.kernels.items(), key=lambda kv: kv[1].seconds, reverse=True)
        lines = [f"{'kernel':<14} {'calls':>8} {'total':>12} {'mean':>12}"]
        for name, timing in rows:
            lines.append(
                f"{name:<14} {timing.calls:>8} "
                f"{timing.seconds * 1e3:>10.3f}ms {timing.mean_seconds * 1e6:>10.2f}µs"
            )
        if self.barrier_waits:
            lines.append(
                f"{'barrier-wait':<14} {self.barrier_waits:>8} "
                f"{self.barrier_wait_seconds * 1e3:>10.3f}ms "
                f"{self.barrier_wait_seconds / self.barrier_waits * 1e6:>10.2f}µs"
            )
        return "\n".join(lines)


class ReplayProfiler:
    """Thread-safe accumulator of per-kernel replay time."""

    __slots__ = ("_kernels", "_barrier_waits", "_barrier_seconds", "_lock")

    def __init__(self) -> None:
        self._kernels: dict[str, list[float]] = {}
        self._barrier_waits = 0
        self._barrier_seconds = 0.0
        self._lock = threading.Lock()

    def record_kernel(self, name: str, seconds: float) -> None:
        with self._lock:
            slot = self._kernels.get(name)
            if slot is None:
                self._kernels[name] = [1, float(seconds)]
            else:
                slot[0] += 1
                slot[1] += float(seconds)

    def record_barrier(self, seconds: float, waits: int = 1) -> None:
        with self._lock:
            self._barrier_waits += int(waits)
            self._barrier_seconds += float(seconds)

    # -- cross-process plumbing -------------------------------------------
    def to_wire(self) -> dict[str, Any]:
        """Plain-dict form safe to pickle back with a worker's result."""
        with self._lock:
            return {
                "kernels": {k: list(v) for k, v in self._kernels.items()},
                "barrier": [self._barrier_waits, self._barrier_seconds],
            }

    def merge_wire(self, payload: Mapping[str, Any] | None) -> None:
        """Fold a worker's :meth:`to_wire` payload into this profiler."""
        if not payload:
            return
        kernels = payload.get("kernels") or {}
        barrier = payload.get("barrier") or (0, 0.0)
        with self._lock:
            for name, (calls, seconds) in kernels.items():
                slot = self._kernels.get(name)
                if slot is None:
                    self._kernels[name] = [int(calls), float(seconds)]
                else:
                    slot[0] += int(calls)
                    slot[1] += float(seconds)
            self._barrier_waits += int(barrier[0])
            self._barrier_seconds += float(barrier[1])

    def merge(self, other: "ReplayProfiler") -> None:
        self.merge_wire(other.to_wire())

    # -- views ---------------------------------------------------------------
    def snapshot(self) -> ProfileSnapshot:
        with self._lock:
            kernels = {
                name: KernelTiming(calls=int(calls), seconds=float(seconds))
                for name, (calls, seconds) in self._kernels.items()
            }
        return ProfileSnapshot(
            kernels=MappingProxyType(kernels),
            barrier_waits=self._barrier_waits,
            barrier_wait_seconds=self._barrier_seconds,
        )

    def reset(self) -> None:
        with self._lock:
            self._kernels.clear()
            self._barrier_waits = 0
            self._barrier_seconds = 0.0


_active: ReplayProfiler | None = None
_active_lock = threading.Lock()


def active_profiler() -> ReplayProfiler | None:
    """The installed profiler, or ``None`` (the hot-path check)."""
    return _active


def enable_profiler() -> ReplayProfiler:
    """Install (or return the already-installed) process-wide profiler."""
    global _active
    with _active_lock:
        if _active is None:
            _active = ReplayProfiler()
        return _active


def disable_profiler() -> None:
    """Uninstall the process-wide profiler; its data is discarded."""
    global _active
    with _active_lock:
        _active = None


@contextmanager
def profiler_installed(profiler: ReplayProfiler | None) -> Iterator[ReplayProfiler | None]:
    """Temporarily install ``profiler`` (worker processes, tests)."""
    global _active
    if profiler is None:
        yield None
        return
    with _active_lock:
        previous = _active
        _active = profiler
    try:
        yield profiler
    finally:
        with _active_lock:
            _active = previous
