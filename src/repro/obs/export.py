"""Exporters: Prometheus text, JSON, and Chrome trace-event JSON.

The renderers are duck-typed over the broker's
:class:`~repro.service.metrics.MetricsSnapshot` (absent fields render as
zero) so this module imports nothing from the service layer — the
dependency points one way, ``service → obs``, and the exporters keep
working on any snapshot-shaped object a test hands them.

Chrome trace-event output targets the stable subset of the format that
``chrome://tracing`` and Perfetto both load: complete (``"ph": "X"``)
events with microsecond ``ts``/``dur``, plus ``M``-phase metadata naming
each thread lane.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from .metrics import HistogramSnapshot
from .profiler import ProfileSnapshot
from .trace import Span

__all__ = ["chrome_trace_events", "to_chrome_trace", "to_json", "to_prometheus"]


def _fmt(value: float) -> str:
    """Prometheus float formatting: integers bare, floats via repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


#: (snapshot attribute, metric suffix, TYPE, HELP)
_COUNTER_FIELDS = (
    ("submitted", "jobs_submitted_total", "jobs accepted by submit/try_submit"),
    ("completed", "jobs_completed_total", "jobs resolved successfully"),
    ("failed", "jobs_failed_total", "jobs resolved with an error"),
    ("rejected", "jobs_rejected_total", "try_submit calls bounced by backpressure"),
    ("coalesced", "jobs_coalesced_total", "jobs attached to a pending identical batch"),
    ("cache_hits", "cache_hits_total", "jobs served entirely from the result cache"),
    ("executions", "executions_total", "backend executions dispatched"),
    (
        "sharded_executions",
        "sharded_executions_total",
        "executions routed to the process-sharded backend",
    ),
    (
        "sharded_plan_hits",
        "sharded_plan_hits_total",
        "sharded executions replaying an already-compiled worker plan",
    ),
    (
        "sweep_bindings",
        "sweep_bindings_total",
        "parameter-sweep bindings accepted via submit_sweep",
    ),
    (
        "sweep_fanout",
        "sweep_fanout_total",
        "sweep chunks fanned out to execution lanes",
    ),
    (
        "calibration_refinements",
        "calibration_refinements_total",
        "online cost-model EWMA refinements from measured replays",
    ),
    ("executed_shots", "executed_shots_total", "shots actually simulated"),
    ("served_shots", "served_shots_total", "shots delivered to clients"),
    ("shard_respawns", "shard_respawns_total", "shard workers respawned after dying"),
    ("shm_respawns", "shm_respawns_total", "shm worker sets respawned after a death"),
    (
        "shm_barrier_aborts",
        "shm_barrier_aborts_total",
        "shm step barriers aborted during recovery",
    ),
    (
        "breaker_fallbacks",
        "breaker_fallbacks_total",
        "batches degraded off a tripped execution lane",
    ),
    (
        "admission_rejected",
        "admission_rejected_jobs_total",
        "jobs resolved with AdmissionRejected",
    ),
    (
        "admission_admitted",
        "admission_admitted_total",
        "admission tickets granted",
    ),
    (
        "admission_rejected_tickets",
        "admission_rejected_tickets_total",
        "admission tickets refused (over budget or wait expired)",
    ),
    (
        "admission_waited",
        "admission_waited_total",
        "granted admission tickets that queued for the budget",
    ),
)

_GAUGE_FIELDS = (
    ("queue_depth", "queue_depth", "client jobs awaiting dispatch"),
    ("active_workers", "active_workers", "dispatcher threads alive"),
    ("process_shards", "process_shards", "process shards serving executions"),
    ("shm_workers", "shm_workers", "live shared-memory replay workers"),
    (
        "shm_resident_bytes",
        "shm_resident_bytes",
        "bytes resident in shared-memory amplitude segments",
    ),
    (
        "shm_resident_states",
        "shm_resident_states",
        "resident shm state slots (gangs) live across open pools",
    ),
    ("uptime_seconds", "uptime_seconds", "seconds since the service started"),
    (
        "admission_inflight_bytes",
        "admission_inflight_bytes",
        "bytes reserved by in-flight admission tickets",
    ),
    (
        "admission_inflight_tickets",
        "admission_inflight_tickets",
        "admission tickets granted and not yet released",
    ),
    (
        "admission_resident_bytes",
        "admission_resident_bytes",
        "bytes measured resident outside admission tickets",
    ),
)

#: (snapshot state attribute, snapshot trips attribute, lane label)
_BREAKER_FIELDS = (
    ("breaker_state", "breaker_trips", "sharded"),
    ("shm_breaker_state", "shm_breaker_trips", "shm"),
)

#: Breaker states as an enum gauge (healthy → degraded order).
_BREAKER_STATE_VALUES = {"closed": 0, "half-open": 1, "open": 2}

_CACHE_FIELDS = ("hits", "partial_hits", "misses", "insertions", "top_ups", "evictions")
_PLAN_CACHE_FIELDS = ("hits", "misses", "evictions")


def to_prometheus(
    snapshot: Any,
    *,
    profile: ProfileSnapshot | None = None,
    namespace: str = "repro",
) -> str:
    """Render a metrics snapshot in Prometheus text exposition format."""
    lines: list[str] = []

    def emit(suffix: str, kind: str, help_text: str, samples: list[tuple[str, float]]):
        name = f"{namespace}_{suffix}"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            lines.append(f"{name}{labels} {_fmt(value)}")

    for attr, suffix, help_text in _COUNTER_FIELDS:
        emit(suffix, "counter", help_text, [("", float(getattr(snapshot, attr, 0)))])
    for attr, suffix, help_text in _GAUGE_FIELDS:
        emit(suffix, "gauge", help_text, [("", float(getattr(snapshot, attr, 0)))])

    budget = getattr(snapshot, "admission_budget_bytes", None)
    if budget is not None:
        emit(
            "admission_budget_bytes",
            "gauge",
            "admission memory budget (absent when accounting is disabled)",
            [("", float(budget))],
        )
    emit(
        "breaker_state",
        "gauge",
        "lane circuit-breaker state (0=closed, 1=half-open, 2=open)",
        [
            (
                f'{{lane="{lane}"}}',
                float(
                    _BREAKER_STATE_VALUES.get(
                        str(getattr(snapshot, state_attr, "closed")), 0
                    )
                ),
            )
            for state_attr, _, lane in _BREAKER_FIELDS
        ],
    )
    emit(
        "breaker_trips_total",
        "counter",
        "times each lane circuit breaker tripped open",
        [
            (f'{{lane="{lane}"}}', float(getattr(snapshot, trips_attr, 0)))
            for _, trips_attr, lane in _BREAKER_FIELDS
        ],
    )

    depths = tuple(getattr(snapshot, "shard_queue_depths", ()) or ())
    if depths:
        emit(
            "shard_inflight",
            "gauge",
            "work submissions in flight per shard",
            [(f'{{shard="{i}"}}', float(d)) for i, d in enumerate(depths)],
        )

    cache = getattr(snapshot, "cache", None)
    if cache is not None:
        emit(
            "result_cache_entries",
            "gauge",
            "entries in the result cache",
            [("", float(getattr(cache, "size", 0)))],
        )
        for field_name in _CACHE_FIELDS:
            emit(
                f"result_cache_{field_name}_total",
                "counter",
                f"result cache {field_name.replace('_', ' ')}",
                [("", float(getattr(cache, field_name, 0)))],
            )
    plan_cache = getattr(snapshot, "plan_cache", None)
    if plan_cache is not None:
        emit(
            "plan_cache_entries",
            "gauge",
            "compiled plans held by the plan cache",
            [("", float(getattr(plan_cache, "size", 0)))],
        )
        for field_name in _PLAN_CACHE_FIELDS:
            emit(
                f"plan_cache_{field_name}_total",
                "counter",
                f"plan cache {field_name}",
                [("", float(getattr(plan_cache, field_name, 0)))],
            )

    latency = getattr(snapshot, "backend_latency", None) or {}
    if latency:
        name = f"{namespace}_backend_latency_seconds"
        lines.append(f"# HELP {name} backend execution latency")
        lines.append(f"# TYPE {name} histogram")
        for backend in sorted(latency):
            agg = latency[backend]
            hist: HistogramSnapshot | None = getattr(agg, "histogram", None)
            label = f'backend="{backend}"'
            if hist is not None and hist.count:
                cumulative = hist.cumulative_counts()
                for bound, running in zip(hist.bounds, cumulative):
                    lines.append(
                        f'{name}_bucket{{{label},le="{_fmt(bound)}"}} {running}'
                    )
                lines.append(f'{name}_bucket{{{label},le="+Inf"}} {hist.count}')
                lines.append(f"{name}_sum{{{label}}} {_fmt(hist.total_seconds)}")
                lines.append(f"{name}_count{{{label}}} {hist.count}")
            else:
                executions = int(getattr(agg, "executions", 0))
                total = float(getattr(agg, "total_seconds", 0.0))
                lines.append(f'{name}_bucket{{{label},le="+Inf"}} {executions}')
                lines.append(f"{name}_sum{{{label}}} {_fmt(total)}")
                lines.append(f"{name}_count{{{label}}} {executions}")

    if profile is not None:
        name = f"{namespace}_replay_kernel_seconds_total"
        lines.append(f"# HELP {name} replay time attributed to each kernel class")
        lines.append(f"# TYPE {name} counter")
        for kernel in sorted(profile.kernels):
            timing = profile.kernels[kernel]
            lines.append(f'{name}{{kernel="{kernel}"}} {_fmt(timing.seconds)}')
        calls = f"{namespace}_replay_kernel_calls_total"
        lines.append(f"# HELP {calls} kernel invocations during profiled replays")
        lines.append(f"# TYPE {calls} counter")
        for kernel in sorted(profile.kernels):
            timing = profile.kernels[kernel]
            lines.append(f'{calls}{{kernel="{kernel}"}} {timing.calls}')
        barrier = f"{namespace}_replay_barrier_wait_seconds_total"
        lines.append(f"# HELP {barrier} shm step-barrier wait during profiled replays")
        lines.append(f"# TYPE {barrier} counter")
        lines.append(f"{barrier} {_fmt(profile.barrier_wait_seconds)}")

    return "\n".join(lines) + "\n"


def _histogram_dict(hist: HistogramSnapshot) -> dict[str, Any]:
    return {
        "bounds": list(hist.bounds),
        "counts": list(hist.counts),
        "count": hist.count,
        "total_seconds": hist.total_seconds,
        "mean_seconds": hist.mean_seconds,
        "p50_seconds": hist.p50_seconds,
        "p95_seconds": hist.p95_seconds,
        "p99_seconds": hist.p99_seconds,
    }


def to_json(
    snapshot: Any,
    *,
    profile: ProfileSnapshot | None = None,
    indent: int | None = None,
) -> str:
    """Render a metrics snapshot (and optional profile) as a JSON document."""
    doc: dict[str, Any] = {}
    for attr, suffix, _ in _COUNTER_FIELDS + _GAUGE_FIELDS:
        doc[attr] = getattr(snapshot, attr, 0)
    doc["shard_queue_depths"] = list(getattr(snapshot, "shard_queue_depths", ()) or ())
    doc["admission"] = {
        "budget_bytes": getattr(snapshot, "admission_budget_bytes", None),
        "inflight_bytes": getattr(snapshot, "admission_inflight_bytes", 0),
        "inflight_tickets": getattr(snapshot, "admission_inflight_tickets", 0),
        "resident_bytes": getattr(snapshot, "admission_resident_bytes", 0),
        "admitted": getattr(snapshot, "admission_admitted", 0),
        "rejected": getattr(snapshot, "admission_rejected_tickets", 0),
        "waited": getattr(snapshot, "admission_waited", 0),
    }
    doc["breakers"] = {
        lane: {
            "state": str(getattr(snapshot, state_attr, "closed")),
            "trips": int(getattr(snapshot, trips_attr, 0)),
        }
        for state_attr, trips_attr, lane in _BREAKER_FIELDS
    }
    for section in ("cache", "plan_cache"):
        stats = getattr(snapshot, section, None)
        if stats is not None:
            doc[section] = {
                k: v
                for k, v in vars(stats).items()
                if isinstance(v, (int, float))
            }
    latency = getattr(snapshot, "backend_latency", None) or {}
    doc["backend_latency"] = {}
    for backend, agg in latency.items():
        entry: dict[str, Any] = {
            "executions": getattr(agg, "executions", 0),
            "total_seconds": getattr(agg, "total_seconds", 0.0),
            "mean_seconds": getattr(agg, "mean_seconds", 0.0),
        }
        hist = getattr(agg, "histogram", None)
        if hist is not None:
            entry["histogram"] = _histogram_dict(hist)
        doc["backend_latency"][backend] = entry
    if profile is not None:
        doc["replay_profile"] = {
            "kernels": {
                name: {"calls": t.calls, "seconds": t.seconds}
                for name, t in profile.kernels.items()
            },
            "barrier_waits": profile.barrier_waits,
            "barrier_wait_seconds": profile.barrier_wait_seconds,
        }
    return json.dumps(doc, indent=indent, sort_keys=True)


def chrome_trace_events(spans: Iterable[Span | Mapping[str, Any]]) -> list[dict]:
    """Spans as Chrome trace events (complete ``X`` events + lane metadata).

    ``tid`` must be an integer in the trace-event format, so thread names
    are mapped to stable small integers per pid and announced through
    ``thread_name`` metadata events.
    """
    events: list[dict] = []
    lanes: dict[tuple[int, str], int] = {}
    for span in spans:
        if isinstance(span, Span):
            span = span.to_dict()
        pid = int(span.get("pid", 0))
        thread = str(span.get("thread", "")) or "main"
        lane_key = (pid, thread)
        tid = lanes.get(lane_key)
        if tid is None:
            tid = len([k for k in lanes if k[0] == pid]) + 1
            lanes[lane_key] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        args = dict(span.get("attributes") or {})
        args["trace_id"] = span.get("trace_id")
        args["span_id"] = span.get("span_id")
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        error = span.get("error")
        if error:
            args["error"] = error
        events.append(
            {
                "name": str(span.get("name", "span")),
                "cat": "error" if error else "repro",
                "ph": "X",
                "ts": float(span.get("start_wall", 0.0)) * 1e6,
                "dur": max(0.0, float(span.get("duration") or 0.0)) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return events


def to_chrome_trace(spans: Iterable[Span | Mapping[str, Any]]) -> str:
    """Spans as a Chrome/Perfetto-loadable trace-event JSON document."""
    return json.dumps(
        {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"}
    )
