"""Fixed-bucket latency histograms with quantile estimation.

Prometheus-style cumulative-friendly histograms: a fixed tuple of
upper-bound buckets (seconds), an implicit ``+Inf`` overflow bucket, and a
running sum.  Fixed buckets keep :meth:`LatencyHistogram.observe` O(log n)
and allocation-free, so the broker can record every execution without a
measurable cost; quantiles are estimated by linear interpolation inside
the bucket containing the target rank, exactly as a Prometheus
``histogram_quantile`` would.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "HistogramSnapshot",
    "LatencyHistogram",
]

# Log-spaced from 10µs to 60s: wide enough for a cache-hit fast path at the
# bottom and a 20+ qubit sharded replay at the top.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    10e-6,
    25e-6,
    50e-6,
    100e-6,
    250e-6,
    500e-6,
    1e-3,
    2.5e-3,
    5e-3,
    10e-3,
    25e-3,
    50e-3,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable point-in-time view of a :class:`LatencyHistogram`.

    ``counts`` has ``len(bounds) + 1`` entries; the last is the ``+Inf``
    overflow bucket.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    total_seconds: float
    min_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (linear within the bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            lo = self.bounds[i - 1] if i > 0 else 0.0
            if i < len(self.bounds):
                hi = self.bounds[i]
            else:
                # Overflow bucket: no upper bound to interpolate toward;
                # report the largest value actually observed.
                hi = max(self.max_seconds, lo)
            if cumulative + bucket_count >= rank:
                within = max(0.0, rank - cumulative)
                estimate = lo + (hi - lo) * (within / bucket_count)
                return min(max(estimate, self.min_seconds), self.max_seconds or estimate)
            cumulative += bucket_count
        return self.max_seconds

    @property
    def p50_seconds(self) -> float:
        return self.quantile(0.50)

    @property
    def p95_seconds(self) -> float:
        return self.quantile(0.95)

    @property
    def p99_seconds(self) -> float:
        return self.quantile(0.99)

    def cumulative_counts(self) -> tuple[int, ...]:
        """Prometheus-style cumulative bucket counts (last == ``count``)."""
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return tuple(out)


class LatencyHistogram:
    """Thread-safe fixed-bucket histogram of durations in seconds."""

    __slots__ = ("_bounds", "_counts", "_count", "_total", "_min", "_max", "_lock")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(sorted(float(b) for b in bounds))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= 0 for b in bounds):
            raise ValueError("bucket bounds must be positive")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._total = 0.0
        self._min = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        index = bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            if self._count == 0:
                self._min = seconds
                self._max = seconds
            else:
                if seconds < self._min:
                    self._min = seconds
                if seconds > self._max:
                    self._max = seconds
            self._count += 1
            self._total += seconds

    def merge(self, other: "LatencyHistogram | HistogramSnapshot") -> None:
        """Fold another histogram (same bounds) into this one."""
        if isinstance(other, LatencyHistogram):
            other = other.snapshot()
        if other.bounds != self._bounds:
            raise ValueError("cannot merge histograms with different bucket bounds")
        if other.count == 0:
            return
        with self._lock:
            for i, c in enumerate(other.counts):
                self._counts[i] += c
            if self._count == 0:
                self._min = other.min_seconds
                self._max = other.max_seconds
            else:
                self._min = min(self._min, other.min_seconds)
                self._max = max(self._max, other.max_seconds)
            self._count += other.count
            self._total += other.total_seconds

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                bounds=self._bounds,
                counts=tuple(self._counts),
                count=self._count,
                total_seconds=self._total,
                min_seconds=self._min,
                max_seconds=self._max,
            )

    def __len__(self) -> int:
        with self._lock:
            return self._count
