"""User-facing runtime API (the QCOR surface).

The functions here are what a user program touches directly:

* :func:`initialize` / :func:`finalize` — the per-thread
  ``quantum::initialize()`` the paper requires before a thread can execute
  kernels; it resolves an accelerator from the service registry and
  registers it for the calling thread with the :class:`QPUManager`.
* :func:`qalloc` — re-export of the (thread-safe) register allocation.
* :func:`execute_circuit` — the execution path used by ``@qpu`` kernels:
  resolve the calling thread's QPU and run the circuit into the register's
  buffer.
* :func:`observe_expectation` — measure a Pauli observable against an
  ansatz (the primitive underlying :class:`ObjectiveFunction`).

Behaviour differences between thread-safe and legacy modes are confined to
how the QPU instance is resolved: thread-safe mode goes through the
QPUManager (per-thread clones); legacy mode uses a single shared module
global, faithfully reproducing Listing 7 and its data race.
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

from ..config import get_config, set_config
from ..exceptions import ExecutionError, NotInitializedError
from ..ir.composite import CompositeInstruction
from ..operators.pauli import PauliOperator, PauliTerm
from ..runtime.accelerator import Accelerator
from ..runtime.allocation import qalloc as _runtime_qalloc
from ..runtime.buffer import AcceleratorBuffer
from ..runtime.qreg import qreg
from ..runtime.service_registry import get_accelerator
from .qpu_manager import QPUManager
from .race_detector import get_race_detector

__all__ = [
    "initialize",
    "finalize",
    "is_initialized",
    "qalloc",
    "set_shots",
    "get_shots",
    "set_qpu",
    "get_qpu",
    "execute_circuit",
    "observe_expectation",
]

#: Legacy-mode shared accelerator (the global ``qpu`` of Listing 7).
_shared_qpu: Accelerator | None = None


# ---------------------------------------------------------------------------
# Initialisation
# ---------------------------------------------------------------------------


def initialize(
    accelerator: str | Accelerator | None = None,
    shots: int | None = None,
    options: Mapping[str, object] | None = None,
) -> Accelerator:
    """Register a QPU for the calling thread (``quantum::initialize()``).

    In thread-safe mode the resolved accelerator (a fresh clone for cloneable
    backends) is stored in the QPUManager under the calling thread's id.  In
    legacy mode the single shared global is (re)assigned, without
    synchronisation, matching the original implementation.

    Returns the accelerator instance that the thread will use.
    """
    global _shared_qpu
    if shots is not None:
        set_shots(shots)
    if isinstance(accelerator, Accelerator):
        qpu = accelerator
        if options:
            qpu.update_configuration(options)
        if not qpu.is_initialized:
            qpu.initialize({})
    else:
        qpu = get_accelerator(accelerator, options)
    if get_config().thread_safe:
        QPUManager.get_instance().set_qpu(qpu)
    else:
        with get_race_detector().access("global_qpu", safe=False):
            _shared_qpu = qpu
    return qpu


def finalize() -> None:
    """Drop the calling thread's QPU registration."""
    global _shared_qpu
    if get_config().thread_safe:
        QPUManager.get_instance().remove_qpu()
    else:
        _shared_qpu = None


def is_initialized() -> bool:
    """True when the calling thread can execute kernels without auto-init."""
    if get_config().thread_safe:
        return QPUManager.get_instance().has_qpu()
    return _shared_qpu is not None


def set_qpu(qpu: Accelerator) -> None:
    """Explicitly register an accelerator instance for the calling thread."""
    initialize(qpu)


def get_qpu() -> Accelerator:
    """Resolve the accelerator the calling thread should use.

    Thread-safe mode: the thread's QPUManager entry; if the thread never
    called :func:`initialize` and ``strict_initialization`` is disabled, an
    accelerator is resolved and registered on the fly (the convenience the
    paper suggests a compiler pass could provide).  Legacy mode: the shared
    global, initialising it lazily.
    """
    global _shared_qpu
    config = get_config()
    if config.thread_safe:
        manager = QPUManager.get_instance()
        if manager.has_qpu():
            return manager.get_qpu()
        if config.strict_initialization:
            raise NotInitializedError(
                f"thread {threading.get_ident()} must call repro.initialize() before "
                "executing kernels (strict_initialization is enabled)"
            )
        return initialize()
    with get_race_detector().access("global_qpu", safe=False):
        if _shared_qpu is None:
            _shared_qpu = get_accelerator()
        return _shared_qpu


# ---------------------------------------------------------------------------
# Allocation and global knobs
# ---------------------------------------------------------------------------


def qalloc(n_qubits: int) -> qreg:
    """Allocate a qubit register (thread-safe; see Listing 6 of the paper)."""
    return _runtime_qalloc(n_qubits)


def set_shots(shots: int) -> None:
    """Set the default number of measurement shots."""
    set_config(shots=shots)


def get_shots() -> int:
    """Current default number of measurement shots."""
    return get_config().shots


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def execute_circuit(
    circuit: CompositeInstruction,
    register: qreg | AcceleratorBuffer,
    shots: int | None = None,
    accelerator: Accelerator | None = None,
) -> dict[str, int]:
    """Execute ``circuit`` on the calling thread's QPU into ``register``.

    Returns the measurement histogram of this execution (the buffer
    accumulates across executions).
    """
    buffer = register.buffer if isinstance(register, qreg) else register
    qpu = accelerator if accelerator is not None else get_qpu()
    before = buffer.get_measurement_counts()
    qpu.execute(buffer, circuit, shots=shots)
    after = buffer.get_measurement_counts()
    delta: dict[str, int] = {}
    for key, value in after.items():
        diff = value - before.get(key, 0)
        if diff > 0:
            delta[key] = diff
    return delta


def observe_expectation(
    ansatz: CompositeInstruction,
    observable: PauliOperator | PauliTerm,
    register_size: int | None = None,
    shots: int | None = None,
    parameters: Sequence[float] | Mapping[str, float] | None = None,
    exact: bool = False,
) -> float:
    """Estimate ``<ansatz|observable|ansatz>`` on the calling thread's QPU.

    With ``exact=True`` the expectation is computed from the state vector
    (no sampling noise) — useful for optimiser tests; otherwise each
    non-identity Pauli term is measured with ``shots`` shots in its rotated
    basis and the histogram parities are combined.
    """
    from ..operators.expectation import expectation_from_counts
    from ..simulator.statevector import StateVector

    if isinstance(observable, PauliTerm):
        observable = PauliOperator([observable])
    circuit = ansatz
    symbolic = circuit.is_parameterized
    if symbolic and parameters is None:
        raise ExecutionError("ansatz has unbound parameters; provide values")
    n_qubits = register_size or max(circuit.n_qubits, observable.n_qubits, 1)

    if exact:
        # Compiled-plan fast path: for a symbolic ansatz the plan is cached
        # against the *unbound* circuit and only its rotation matrices are
        # re-bound per call — the VQE/QAOA optimiser hot loop.
        body = circuit if circuit.n_measurements == 0 else circuit.without_measurements()
        state = StateVector(n_qubits)
        state.run(body, parameter_values=parameters if symbolic else None)
        return state.expectation(observable)

    if symbolic:
        circuit = circuit.bind(parameters)

    qpu = get_qpu()
    energy = float(observable.constant.real)
    for term in observable.non_identity_terms():
        measured = CompositeInstruction(f"{circuit.name}_{term.pauli_string}", n_qubits)
        measured.add(circuit.without_measurements())
        measured.add(term.basis_rotation_circuit(n_qubits))
        from ..ir.gates import Measure

        for qubit in term.qubits:
            measured.add(Measure([qubit]))
        scratch = AcceleratorBuffer(n_qubits)
        qpu.execute(scratch, measured, shots=shots)
        counts = scratch.get_measurement_counts()
        positions = list(range(len(term.qubits)))
        energy += term.coefficient.real * expectation_from_counts(counts, positions)
    return energy
