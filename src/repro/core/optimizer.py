"""Classical optimizers (``createOptimizer``).

QCOR delegates to nlopt; we provide the same factory surface backed by
scipy (L-BFGS-B, Nelder-Mead, COBYLA) plus a self-contained SPSA
implementation (useful when objective evaluations are sampled and noisy).
``createOptimizer("nlopt", {"nlopt-optimizer": "l-bfgs"})`` therefore works
exactly as in Listing 3 of the paper, just without nlopt installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np
from scipy import optimize as scipy_optimize

from ..exceptions import OptimizationError

__all__ = [
    "OptimizerResult",
    "Optimizer",
    "ScipyOptimizer",
    "SPSAOptimizer",
    "createOptimizer",
    "create_optimizer",
]


@dataclass
class OptimizerResult:
    """Outcome of an optimisation run."""

    optimal_value: float
    optimal_parameters: np.ndarray
    iterations: int
    function_evaluations: int
    converged: bool
    history: list[float] = field(default_factory=list)

    def __iter__(self):
        """Support QCOR-style ``opt_val, opt_params = opt.optimize(obj)`` unpacking."""
        yield self.optimal_value
        yield self.optimal_parameters


class Optimizer:
    """Abstract optimizer interface."""

    def __init__(self, options: Mapping[str, object] | None = None):
        self.options = dict(options or {})
        self.max_iterations = int(self.options.get("maxiter", self.options.get("max-iterations", 200)))
        self.tolerance = float(self.options.get("tolerance", self.options.get("ftol", 1e-8)))

    def optimize(
        self,
        objective: Callable[[Sequence[float]], float],
        initial_parameters: Sequence[float] | None = None,
        n_parameters: int | None = None,
    ) -> OptimizerResult:
        """Minimise ``objective``; returns an :class:`OptimizerResult`.

        ``initial_parameters`` defaults to zeros of length ``n_parameters``
        (or the objective's ``n_parameters`` attribute when present).
        """
        raise NotImplementedError

    def _resolve_initial(
        self,
        objective: Callable,
        initial_parameters: Sequence[float] | None,
        n_parameters: int | None,
    ) -> np.ndarray:
        if initial_parameters is not None:
            return np.asarray(list(initial_parameters), dtype=float)
        if n_parameters is None:
            n_parameters = getattr(objective, "n_parameters", None)
        if n_parameters is None:
            raise OptimizationError(
                "cannot infer the parameter count; pass initial_parameters or n_parameters"
            )
        return np.zeros(int(n_parameters), dtype=float)


class ScipyOptimizer(Optimizer):
    """Optimizers backed by :func:`scipy.optimize.minimize`."""

    #: Map of QCOR/nlopt-style names to scipy method names and whether the
    #: scipy method consumes gradients.
    _METHODS = {
        "l-bfgs": ("L-BFGS-B", True),
        "l-bfgs-b": ("L-BFGS-B", True),
        "lbfgs": ("L-BFGS-B", True),
        "nelder-mead": ("Nelder-Mead", False),
        "cobyla": ("COBYLA", False),
        "bfgs": ("BFGS", True),
        "powell": ("Powell", False),
    }

    def __init__(self, method: str = "nelder-mead", options: Mapping[str, object] | None = None):
        super().__init__(options)
        key = method.lower()
        if key not in self._METHODS:
            raise OptimizationError(
                f"unknown optimizer {method!r}; known: {sorted(self._METHODS)}"
            )
        self.method, self._uses_gradient = self._METHODS[key]

    def optimize(
        self,
        objective: Callable[[Sequence[float]], float],
        initial_parameters: Sequence[float] | None = None,
        n_parameters: int | None = None,
    ) -> OptimizerResult:
        x0 = self._resolve_initial(objective, initial_parameters, n_parameters)
        history: list[float] = []

        def wrapped(x: np.ndarray) -> float:
            value = float(objective(x))
            history.append(value)
            return value

        jac = None
        if self._uses_gradient and hasattr(objective, "gradient"):
            jac = lambda x: np.asarray(objective.gradient(x), dtype=float)  # noqa: E731

        result = scipy_optimize.minimize(
            wrapped,
            x0,
            method=self.method,
            jac=jac,
            tol=self.tolerance,
            options={"maxiter": self.max_iterations},
        )
        return OptimizerResult(
            optimal_value=float(result.fun),
            optimal_parameters=np.atleast_1d(np.asarray(result.x, dtype=float)),
            iterations=int(getattr(result, "nit", 0) or 0),
            function_evaluations=int(getattr(result, "nfev", len(history)) or len(history)),
            converged=bool(result.success),
            history=history,
        )


class SPSAOptimizer(Optimizer):
    """Simultaneous Perturbation Stochastic Approximation.

    Robust to sampling noise in the objective, which makes it the natural
    choice when the objective runs with a finite shot count rather than the
    exact state-vector expectation.
    """

    def __init__(self, options: Mapping[str, object] | None = None):
        super().__init__(options)
        self.a = float(self.options.get("a", 0.2))
        self.c = float(self.options.get("c", 0.1))
        self.alpha = float(self.options.get("alpha", 0.602))
        self.gamma = float(self.options.get("gamma", 0.101))
        self.seed = self.options.get("seed")

    def optimize(
        self,
        objective: Callable[[Sequence[float]], float],
        initial_parameters: Sequence[float] | None = None,
        n_parameters: int | None = None,
    ) -> OptimizerResult:
        x = self._resolve_initial(objective, initial_parameters, n_parameters)
        rng = np.random.default_rng(self.seed)
        history: list[float] = []
        evaluations = 0
        best_value = float("inf")
        best_x = x.copy()
        for k in range(self.max_iterations):
            ak = self.a / (k + 1) ** self.alpha
            ck = self.c / (k + 1) ** self.gamma
            delta = rng.choice([-1.0, 1.0], size=x.size)
            plus = float(objective(x + ck * delta))
            minus = float(objective(x - ck * delta))
            evaluations += 2
            gradient_estimate = (plus - minus) / (2.0 * ck) * delta
            x = x - ak * gradient_estimate
            value = min(plus, minus)
            history.append(value)
            if value < best_value:
                best_value = value
                best_x = x.copy()
        final_value = float(objective(best_x))
        evaluations += 1
        if final_value < best_value:
            best_value = final_value
        return OptimizerResult(
            optimal_value=best_value,
            optimal_parameters=np.atleast_1d(best_x),
            iterations=self.max_iterations,
            function_evaluations=evaluations,
            converged=True,
            history=history,
        )


def createOptimizer(  # noqa: N802 - mirrors the QCOR API name
    name: str = "nlopt", options: Mapping[str, object] | None = None
) -> Optimizer:
    """QCOR-style optimizer factory.

    ``name`` selects the family (``"nlopt"`` and ``"scipy"`` both map to the
    scipy-backed optimizers; ``"spsa"`` selects SPSA); the concrete method is
    taken from ``options["nlopt-optimizer"]`` / ``options["method"]``
    (default: Nelder-Mead, matching QCOR's default of COBYLA-like
    derivative-free behaviour closely enough for the paper's workloads).
    """
    options = dict(options or {})
    family = name.lower()
    if family == "spsa":
        return SPSAOptimizer(options)
    if family in ("nlopt", "scipy", ""):
        method = str(options.get("nlopt-optimizer", options.get("method", "nelder-mead")))
        return ScipyOptimizer(method, options)
    raise OptimizationError(f"unknown optimizer family {name!r}")


#: PEP8-friendly alias.
create_optimizer = createOptimizer
