"""Data-race detection instrumentation.

The paper identifies two classes of races in the original QCOR/XACC code:
unsynchronised mutation of global containers (``allocated_buffers``) and
shared non-cloneable service instances.  When the reproduction runs with
``thread_safe=False`` (the legacy behaviour), the unsafe code paths wrap
their critical work in :meth:`RaceDetector.access` *without* holding a lock;
the detector records every interval during which two or more threads were
simultaneously inside an unsafe section on the same resource.

This gives the test suite and the ablation benchmark a deterministic way to
demonstrate the hazard the paper fixes, without relying on the corruption
actually materialising (which is timing dependent).
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Iterator

from ..config import get_config
from ..exceptions import ThreadSafetyViolation

__all__ = ["RaceEvent", "RaceDetector", "get_race_detector", "reset_race_detector"]


@dataclass(frozen=True)
class RaceEvent:
    """One observed unsafe overlap on a shared resource."""

    resource: str
    threads: tuple[int, ...]


@dataclass
class RaceDetector:
    """Tracks concurrent entries into unsafe critical sections."""

    #: Number of unsafe section entries seen, per resource.
    unsafe_entries: dict[str, int] = field(default_factory=dict)
    #: Recorded overlap events.
    events: list[RaceEvent] = field(default_factory=list)
    _active: dict[str, set[int]] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @contextlib.contextmanager
    def access(self, resource: str, safe: bool) -> Iterator[None]:
        """Mark the calling thread as inside a critical section on ``resource``.

        ``safe=True`` records nothing (the caller holds a real lock);
        ``safe=False`` records the entry and, if another thread is currently
        inside the same resource's unsafe section, records a
        :class:`RaceEvent` (and raises if the configuration demands it).
        """
        if safe or not get_config().detect_races:
            yield
            return
        thread_id = threading.get_ident()
        raise_on_race = get_config().raise_on_race
        overlap: tuple[int, ...] | None = None
        with self._lock:
            self.unsafe_entries[resource] = self.unsafe_entries.get(resource, 0) + 1
            active = self._active.setdefault(resource, set())
            if active:
                overlap = tuple(sorted(active | {thread_id}))
                self.events.append(RaceEvent(resource, overlap))
            active.add(thread_id)
        try:
            if overlap is not None and raise_on_race:
                raise ThreadSafetyViolation(resource, overlap)
            yield
        finally:
            with self._lock:
                self._active.get(resource, set()).discard(thread_id)

    # -- queries ------------------------------------------------------------------
    def race_count(self, resource: str | None = None) -> int:
        """Number of recorded overlaps, optionally filtered by resource."""
        with self._lock:
            if resource is None:
                return len(self.events)
            return sum(1 for e in self.events if e.resource == resource)

    def resources_with_races(self) -> set[str]:
        with self._lock:
            return {e.resource for e in self.events}

    def clear(self) -> None:
        with self._lock:
            self.unsafe_entries.clear()
            self.events.clear()
            self._active.clear()


_detector = RaceDetector()
_detector_lock = threading.Lock()


def get_race_detector() -> RaceDetector:
    """Return the process-wide race detector."""
    return _detector


def reset_race_detector() -> RaceDetector:
    """Replace the process-wide detector with a fresh one (test helper)."""
    global _detector
    with _detector_lock:
        _detector = RaceDetector()
        return _detector
