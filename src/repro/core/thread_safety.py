"""Thread-safety utilities used across the user-facing API.

The paper's approach is deliberately simple: wrap the non-thread-safe
sections of the user-facing API in mutexes (Listing 6).  This module
provides the Python equivalents used throughout :mod:`repro.core`:

* :func:`synchronized` — a decorator serialising calls to a function with a
  (re-entrant) lock, optionally shared by name through the
  :class:`GlobalLockRegistry`.
* :class:`GlobalLockRegistry` — named process-wide locks, so independent
  modules can protect the same logical resource without importing each
  other.
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, TypeVar

__all__ = ["GlobalLockRegistry", "synchronized"]

F = TypeVar("F", bound=Callable)


class GlobalLockRegistry:
    """Process-wide named re-entrant locks."""

    _locks: dict[str, threading.RLock] = {}
    _registry_lock = threading.Lock()

    @classmethod
    def get(cls, name: str) -> threading.RLock:
        """Return (creating if needed) the lock registered under ``name``."""
        with cls._registry_lock:
            lock = cls._locks.get(name)
            if lock is None:
                lock = threading.RLock()
                cls._locks[name] = lock
            return lock

    @classmethod
    def known_locks(cls) -> list[str]:
        with cls._registry_lock:
            return sorted(cls._locks)


def synchronized(lock_name: str | None = None) -> Callable[[F], F]:
    """Decorator serialising calls to the wrapped function.

    With ``lock_name`` the lock is shared through
    :class:`GlobalLockRegistry`; without it the function gets its own
    private re-entrant lock.

    Example::

        @synchronized("allocation")
        def qalloc(n):
            ...
    """

    def decorate(func: F) -> F:
        lock = GlobalLockRegistry.get(lock_name) if lock_name else threading.RLock()

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with lock:
                return func(*args, **kwargs)

        wrapper._lock = lock  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
