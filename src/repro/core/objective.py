"""Objective functions for variational workloads (``createObjectiveFunction``).

Mirrors the QCOR helper used in Listing 3 of the paper: an
:class:`ObjectiveFunction` binds an ansatz kernel, a Hamiltonian and a qubit
register; calling it with a parameter vector estimates the energy, and it
can also provide gradients using one of several strategies:

* ``"central"`` / ``"forward"`` — finite differences with a configurable
  step (the paper's Listing 3 uses central differences with step 1e-3),
* ``"parameter-shift"`` — the exact parameter-shift rule (valid for ansatz
  circuits whose parameters enter through Pauli rotations, which covers the
  deuteron ansatz and QAOA).

Evaluations are thread-safe: each call executes on the calling thread's QPU
instance, so multiple optimizers (or multiple asynchronous evaluations of
the same objective) can run concurrently — the VQE scenario discussed in the
paper's Section VII.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Mapping, Sequence

import numpy as np

from ..config import get_config
from ..exceptions import ConfigurationError, OptimizationError
from ..ir.composite import CompositeInstruction
from ..operators.pauli import PauliOperator, PauliTerm
from ..runtime.qreg import qreg
from .api import observe_expectation

__all__ = ["ObjectiveFunction", "createObjectiveFunction", "create_objective_function"]

_GRADIENT_STRATEGIES = ("central", "forward", "parameter-shift")


class ObjectiveFunction:
    """Callable ``f(parameters) -> energy`` with optional gradients."""

    def __init__(
        self,
        ansatz: CompositeInstruction | Callable[..., CompositeInstruction],
        observable: PauliOperator | PauliTerm,
        register: qreg | int,
        n_parameters: int,
        options: Mapping[str, object] | None = None,
    ):
        if isinstance(observable, PauliTerm):
            observable = PauliOperator([observable])
        self.observable = observable
        self.n_parameters = int(n_parameters)
        if self.n_parameters < 0:
            raise ConfigurationError("n_parameters must be non-negative")
        options = dict(options or {})
        self.gradient_strategy = str(options.pop("gradient-strategy", "central"))
        if self.gradient_strategy not in _GRADIENT_STRATEGIES:
            raise ConfigurationError(
                f"gradient-strategy must be one of {_GRADIENT_STRATEGIES}, "
                f"got {self.gradient_strategy!r}"
            )
        self.step = float(options.pop("step", 1e-3))
        if self.step <= 0:
            raise ConfigurationError(f"step must be positive, got {self.step}")
        self.shots = options.pop("shots", None)
        #: ``exact=True`` evaluates expectations from the state vector
        #: (noise-free); sampling mode uses the thread's QPU.
        self.exact = bool(options.pop("exact", True))
        #: Optional :class:`~repro.service.broker.QuantumJobService`: when
        #: set (and the ansatz is a symbolic parametric circuit),
        #: parameter-shift gradients ship as ONE ``2·P``-binding expectation
        #: sweep through the service — compile-once, fanned across its
        #: execution lanes — instead of ``2·P`` serial evaluations here.
        self.service = options.pop("service", None)
        self.options = options

        self._ansatz_callable: Callable[..., CompositeInstruction] | None
        self._ansatz_circuit: CompositeInstruction | None
        if isinstance(ansatz, CompositeInstruction):
            self._ansatz_circuit = ansatz
            self._ansatz_callable = None
        elif callable(ansatz):
            self._ansatz_callable = ansatz
            self._ansatz_circuit = None
        else:
            raise ConfigurationError(
                "ansatz must be a CompositeInstruction or a kernel callable"
            )

        self.register_size = register.size() if isinstance(register, qreg) else int(register)
        if self.register_size < 1:
            raise ConfigurationError("register must hold at least 1 qubit")

        self._evaluations = 0
        self._lock = threading.Lock()

    # -- bookkeeping ------------------------------------------------------------------
    @property
    def evaluation_count(self) -> int:
        """Number of energy evaluations performed so far (thread-safe)."""
        with self._lock:
            return self._evaluations

    def _record_evaluation(self) -> None:
        with self._lock:
            self._evaluations += 1

    # -- circuit construction ------------------------------------------------------------
    def ansatz_circuit(self, parameters: Sequence[float]) -> CompositeInstruction:
        """Concrete ansatz circuit for the given parameter values."""
        parameters = list(float(p) for p in parameters)
        if len(parameters) != self.n_parameters:
            raise OptimizationError(
                f"expected {self.n_parameters} parameter(s), got {len(parameters)}"
            )
        if self._ansatz_callable is not None:
            circuit = self._ansatz_callable(self.register_size, *parameters)
            if not isinstance(circuit, CompositeInstruction):
                # Support @qpu kernels: use their tracing API.
                as_circuit = getattr(self._ansatz_callable, "as_circuit", None)
                if as_circuit is None:
                    raise OptimizationError(
                        "ansatz callable must return a CompositeInstruction or be a @qpu kernel"
                    )
                circuit = as_circuit(self.register_size, *parameters)
            return circuit
        circuit = self._ansatz_circuit
        assert circuit is not None
        if circuit.is_parameterized:
            return circuit.bind(parameters)
        return circuit

    # -- evaluation ------------------------------------------------------------------------
    def __call__(self, parameters: Sequence[float]) -> float:
        """Estimate the energy at ``parameters``."""
        symbolic = self._ansatz_circuit is not None and self._ansatz_circuit.is_parameterized
        if symbolic:
            # Pass the *symbolic* ansatz down with its values: the exact
            # path then reuses one cached parametric execution plan across
            # every optimiser iteration instead of re-binding and
            # re-dispatching the whole circuit per evaluation.
            values = [float(p) for p in parameters]
            if len(values) != self.n_parameters:
                raise OptimizationError(
                    f"expected {self.n_parameters} parameter(s), got {len(values)}"
                )
            circuit, values_arg = self._ansatz_circuit, values
        else:
            circuit, values_arg = self.ansatz_circuit(parameters), None
        self._record_evaluation()
        return observe_expectation(
            circuit,
            self.observable,
            register_size=self.register_size,
            shots=self.shots if self.shots is not None else get_config().shots,
            parameters=values_arg,
            exact=self.exact,
        )

    def gradient(self, parameters: Sequence[float]) -> np.ndarray:
        """Gradient of the energy at ``parameters`` using the configured strategy."""
        parameters = np.asarray(list(parameters), dtype=float)
        if parameters.size != self.n_parameters:
            raise OptimizationError(
                f"expected {self.n_parameters} parameter(s), got {parameters.size}"
            )
        if self.gradient_strategy == "parameter-shift":
            if (
                self.service is not None
                and self.exact
                and self._ansatz_circuit is not None
                and self._ansatz_circuit.is_parameterized
            ):
                # One 2·P-binding expectation sweep through the service:
                # every shifted circuit shares a single compiled plan and
                # evaluates across the service's lanes concurrently.
                with self._lock:
                    self._evaluations += 2 * parameters.size
                return self.service.gradient(
                    self._ansatz_circuit, self.observable, parameters
                )
            shift = math.pi / 2
            grad = np.zeros_like(parameters)
            for i in range(parameters.size):
                plus = parameters.copy()
                minus = parameters.copy()
                plus[i] += shift
                minus[i] -= shift
                grad[i] = 0.5 * (self(plus) - self(minus))
            return grad
        if self.gradient_strategy == "forward":
            base = self(parameters)
            grad = np.zeros_like(parameters)
            for i in range(parameters.size):
                plus = parameters.copy()
                plus[i] += self.step
                grad[i] = (self(plus) - base) / self.step
            return grad
        # central differences (default)
        grad = np.zeros_like(parameters)
        for i in range(parameters.size):
            plus = parameters.copy()
            minus = parameters.copy()
            plus[i] += self.step
            minus[i] -= self.step
            grad[i] = (self(plus) - self(minus)) / (2.0 * self.step)
        return grad


def createObjectiveFunction(  # noqa: N802 - mirrors the QCOR API name
    ansatz: CompositeInstruction | Callable[..., CompositeInstruction],
    observable: PauliOperator | PauliTerm,
    register: qreg | int,
    n_parameters: int,
    options: Mapping[str, object] | None = None,
) -> ObjectiveFunction:
    """QCOR-style factory for :class:`ObjectiveFunction` (see Listing 3)."""
    return ObjectiveFunction(ansatz, observable, register, n_parameters, options)


#: PEP8-friendly alias.
create_objective_function = createObjectiveFunction
