"""Asynchronous quantum kernel compilation (Section VII of the paper).

The paper cites Shi et al. (ASPLOS'19): aggressive quantum-circuit
optimisation can take a long time (hours on a GPU), so with user-level
multi-threading one can *offload the compilation asynchronously* and launch
the compiled kernel only when it is ready, without blocking the main thread.

We do not have a GPU compiler, so this module provides the closest local
equivalent that exercises the same programming-model path:

* :class:`AsyncKernelCompiler` owns a background worker pool (the "GPU").
* :meth:`AsyncKernelCompiler.compile_async` submits a circuit and returns a
  :class:`CompilationHandle` immediately.
* Compilation itself runs the IR optimisation pipeline repeatedly at a
  configurable *effort* level (each extra effort unit re-runs the pass
  manager and attempts additional single-qubit fusion), recording what it
  did, so higher effort genuinely costs more time and genuinely changes the
  circuit — the behaviour the asynchronous launch is meant to hide.
* :meth:`CompilationHandle.execute_when_ready` blocks until compilation
  finishes and then executes the optimised kernel on the calling thread's
  QPU, mirroring "launch the compiled kernel on a QPU only when it is
  ready".
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

from ..exceptions import CompilationError, ExecutionError
from ..ir.composite import CompositeInstruction
from ..ir.transforms import (
    InverseCancellationPass,
    PassManager,
    RotationMergingPass,
    SingleQubitFusionPass,
)
from ..runtime.buffer import AcceleratorBuffer
from ..runtime.qreg import qreg

__all__ = ["CompilationResult", "CompilationHandle", "AsyncKernelCompiler"]


@dataclass
class CompilationResult:
    """Outcome of one asynchronous compilation job."""

    original: CompositeInstruction
    optimized: CompositeInstruction
    effort: int
    compile_seconds: float
    passes_applied: list[str] = field(default_factory=list)

    @property
    def gate_reduction(self) -> int:
        """Number of instructions removed by optimisation."""
        return self.original.n_instructions - self.optimized.n_instructions


class CompilationHandle:
    """Future-like handle to an in-flight compilation (``std::future`` analogue)."""

    def __init__(self, future: "concurrent.futures.Future[CompilationResult]", name: str):
        self._future = future
        self.kernel_name = name

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None) -> CompilationResult:
        """Block until the compilation finishes and return its result."""
        try:
            return self._future.result(timeout)
        except concurrent.futures.TimeoutError as exc:
            raise ExecutionError(
                f"compilation of kernel {self.kernel_name!r} did not finish in time"
            ) from exc

    def execute_when_ready(
        self,
        register: qreg | AcceleratorBuffer,
        shots: int | None = None,
        timeout: float | None = None,
    ) -> dict[str, int]:
        """Wait for the compiled kernel and execute it on this thread's QPU."""
        from .api import execute_circuit

        compiled = self.result(timeout)
        return execute_circuit(compiled.optimized, register, shots=shots)


class AsyncKernelCompiler:
    """Background compiler pool (the stand-in for the GPU compile service)."""

    def __init__(self, max_workers: int = 2, synthetic_latency_per_effort: float = 0.0):
        if max_workers < 1:
            raise CompilationError("the compiler pool needs at least one worker")
        if synthetic_latency_per_effort < 0:
            raise CompilationError("synthetic latency must be non-negative")
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-jit"
        )
        #: Extra sleep per effort unit, to emulate a genuinely slow compiler
        #: in examples/tests without burning CPU.
        self.synthetic_latency_per_effort = synthetic_latency_per_effort
        self._jobs_submitted = 0
        self._lock = threading.Lock()

    # -- compilation -----------------------------------------------------------------
    def _compile(self, circuit: CompositeInstruction, effort: int) -> CompilationResult:
        started = time.perf_counter()
        passes_applied: list[str] = []
        current = circuit
        pipeline = [RotationMergingPass(), InverseCancellationPass()]
        if effort >= 2:
            pipeline.append(SingleQubitFusionPass())
        manager = PassManager(pipeline)
        for _ in range(max(1, effort)):
            current = manager.run(current)
            passes_applied.extend(p.name for p in pipeline)
            if self.synthetic_latency_per_effort:
                time.sleep(self.synthetic_latency_per_effort)
        elapsed = time.perf_counter() - started
        return CompilationResult(
            original=circuit,
            optimized=current,
            effort=effort,
            compile_seconds=elapsed,
            passes_applied=passes_applied,
        )

    def compile_async(
        self, circuit: CompositeInstruction, effort: int = 1, name: str | None = None
    ) -> CompilationHandle:
        """Submit ``circuit`` for background optimisation; returns immediately."""
        if effort < 1:
            raise CompilationError(f"effort must be at least 1, got {effort}")
        if not isinstance(circuit, CompositeInstruction):
            raise CompilationError("compile_async expects a CompositeInstruction")
        with self._lock:
            self._jobs_submitted += 1
        future = self._pool.submit(self._compile, circuit, effort)
        return CompilationHandle(future, name or circuit.name)

    def compile(self, circuit: CompositeInstruction, effort: int = 1) -> CompilationResult:
        """Synchronous compilation (convenience for tests and baselines)."""
        return self._compile(circuit, effort)

    # -- bookkeeping -------------------------------------------------------------------
    @property
    def jobs_submitted(self) -> int:
        with self._lock:
            return self._jobs_submitted

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "AsyncKernelCompiler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


def compile_and_execute_async(
    circuit: CompositeInstruction,
    register: qreg | AcceleratorBuffer,
    effort: int = 2,
    shots: int | None = None,
    compiler_options: Mapping[str, object] | None = None,
) -> dict[str, int]:
    """One-shot helper: asynchronously compile, then execute when ready.

    This is the end-to-end "Asynchronous Quantum JIT Compilation" scenario of
    Section VII collapsed into a single call (the caller's thread is free
    between ``compile_async`` returning and ``execute_when_ready`` blocking).
    """
    options = dict(compiler_options or {})
    with AsyncKernelCompiler(
        max_workers=int(options.get("max_workers", 1)),
        synthetic_latency_per_effort=float(options.get("latency", 0.0)),
    ) as compiler:
        handle = compiler.compile_async(circuit, effort=effort)
        return handle.execute_when_ready(register, shots=shots)
