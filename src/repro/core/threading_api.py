"""QCOR-aware threading constructs (``qcor::thread`` / ``qcor::async``).

The paper notes a usability wart of its implementation: every user thread
must call ``quantum::initialize()`` before touching the runtime, and
proposes wrappers that do it automatically.  These are those wrappers:

* :func:`qcor_thread` — like ``std::thread`` but the target runs after a
  per-thread :func:`repro.core.api.initialize`.
* :func:`qcor_async` — like ``std::async``; returns a
  :class:`concurrent.futures.Future` whose callable is initialised the same
  way.
* :class:`TaskGroup` — a small structured-concurrency helper for launching
  several kernels and waiting for all of them (used by the parallel Shor
  driver).
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Callable, Mapping, Sequence, TypeVar

from ..runtime.accelerator import Accelerator
from .api import finalize, initialize

__all__ = ["qcor_thread", "qcor_async", "TaskGroup"]

R = TypeVar("R")


def _wrap_with_initialize(
    target: Callable[..., R],
    accelerator: str | Accelerator | None,
    shots: int | None,
    options: Mapping[str, object] | None,
) -> Callable[..., R]:
    """Return a callable that initialises the runtime for its thread, runs
    ``target`` and always finalises the thread's registration."""

    def runner(*args, **kwargs) -> R:
        initialize(accelerator, shots=shots, options=options)
        try:
            return target(*args, **kwargs)
        finally:
            finalize()

    return runner


def qcor_thread(
    target: Callable[..., object],
    *args,
    accelerator: str | Accelerator | None = None,
    shots: int | None = None,
    options: Mapping[str, object] | None = None,
    **kwargs,
) -> threading.Thread:
    """Start a thread that runs ``target`` with per-thread QPU initialisation.

    Mirrors Listing 4 of the paper but without the manual
    ``quantum::initialize()`` call inside the target.  The thread is started
    before being returned; callers ``join()`` it.
    """
    runner = _wrap_with_initialize(target, accelerator, shots, options)
    thread = threading.Thread(target=runner, args=args, kwargs=kwargs)
    thread.start()
    return thread


#: Executor backing qcor_async; sized generously because tasks are usually
#: I/O-or-simulation bound and short-lived.
_async_executor: concurrent.futures.ThreadPoolExecutor | None = None
_async_lock = threading.Lock()


def qcor_async(
    target: Callable[..., R],
    *args,
    accelerator: str | Accelerator | None = None,
    shots: int | None = None,
    options: Mapping[str, object] | None = None,
    **kwargs,
) -> "concurrent.futures.Future[R]":
    """Asynchronously run ``target`` with per-thread QPU initialisation.

    Mirrors Listing 5 of the paper: returns a future whose ``result()`` is
    the target's return value.
    """
    global _async_executor
    with _async_lock:
        if _async_executor is None:
            _async_executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=32, thread_name_prefix="qcor-async"
            )
        executor = _async_executor
    runner = _wrap_with_initialize(target, accelerator, shots, options)
    return executor.submit(runner, *args, **kwargs)


class TaskGroup:
    """Launch several quantum-classical tasks and wait for all of them.

    Example::

        with TaskGroup() as group:
            group.launch(run_shor, 15, 2)
            group.launch(run_shor, 15, 7)
        results = group.results()
    """

    def __init__(
        self,
        accelerator: str | Accelerator | None = None,
        shots: int | None = None,
        options: Mapping[str, object] | None = None,
    ):
        self._accelerator = accelerator
        self._shots = shots
        self._options = options
        self._futures: list[concurrent.futures.Future] = []

    def launch(self, target: Callable[..., R], *args, **kwargs) -> "concurrent.futures.Future[R]":
        """Launch one task; returns its future."""
        future = qcor_async(
            target,
            *args,
            accelerator=self._accelerator,
            shots=self._shots,
            options=self._options,
            **kwargs,
        )
        self._futures.append(future)
        return future

    def launch_all(
        self, target: Callable[..., R], argument_tuples: Sequence[Sequence]
    ) -> list["concurrent.futures.Future[R]"]:
        """Launch ``target`` once per argument tuple."""
        return [self.launch(target, *args) for args in argument_tuples]

    def wait(self, timeout: float | None = None) -> None:
        """Block until every launched task finishes."""
        concurrent.futures.wait(self._futures, timeout=timeout)

    def results(self, timeout: float | None = None) -> list:
        """Return every task's result (in launch order), waiting as needed."""
        return [future.result(timeout) for future in self._futures]

    @property
    def futures(self) -> tuple[concurrent.futures.Future, ...]:
        return tuple(self._futures)

    def __enter__(self) -> "TaskGroup":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Even on error we wait so no task outlives the group silently.
        self.wait()
