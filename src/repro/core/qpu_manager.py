"""QPUManager: per-thread accelerator instances (Listing 8 of the paper).

The manager is a process-wide singleton holding a map from thread id to the
accelerator instance that thread should use.  ``quantum::initialize()``
(our :func:`repro.core.api.initialize`) populates the map; kernel execution
reads it.  All map accesses are protected by a lock — the manager itself is
one of the thread-safe pieces the paper adds.

In legacy mode the manager is bypassed entirely and kernels go through the
single shared global ``qpu`` (Listing 7), which is what produces the data
races the race detector records.
"""

from __future__ import annotations

import threading
from typing import Mapping

from ..exceptions import NotInitializedError
from ..runtime.accelerator import Accelerator

__all__ = ["QPUManager"]


class QPUManager:
    """Singleton mapping thread ids to accelerator instances."""

    _instance: "QPUManager | None" = None
    _instance_lock = threading.Lock()

    def __init__(self) -> None:
        self._qpu_map: dict[int, Accelerator] = {}
        self._lock = threading.Lock()

    # -- singleton access ----------------------------------------------------------
    @classmethod
    def get_instance(cls) -> "QPUManager":
        """Return the process-wide manager (double-checked locking)."""
        if cls._instance is None:
            with cls._instance_lock:
                if cls._instance is None:
                    cls._instance = QPUManager()
        return cls._instance

    @classmethod
    def reset_instance(cls) -> "QPUManager":
        """Replace the singleton (test helper)."""
        with cls._instance_lock:
            cls._instance = QPUManager()
            return cls._instance

    # -- map operations --------------------------------------------------------------
    def set_qpu(self, qpu: Accelerator, thread_id: int | None = None) -> None:
        """Register ``qpu`` for the given (default: calling) thread."""
        tid = thread_id if thread_id is not None else threading.get_ident()
        with self._lock:
            self._qpu_map[tid] = qpu

    def get_qpu(self, thread_id: int | None = None) -> Accelerator:
        """Return the accelerator registered for the given (default: calling) thread.

        Raises :class:`NotInitializedError` when the thread has not called
        ``initialize()`` — the failure mode the paper's Section V-C warns
        about.
        """
        tid = thread_id if thread_id is not None else threading.get_ident()
        with self._lock:
            qpu = self._qpu_map.get(tid)
        if qpu is None:
            raise NotInitializedError(
                f"thread {tid} has no registered QPU; call repro.initialize() at the "
                "start of the thread (or use qcor_thread/qcor_async which do it for you)"
            )
        return qpu

    def has_qpu(self, thread_id: int | None = None) -> bool:
        tid = thread_id if thread_id is not None else threading.get_ident()
        with self._lock:
            return tid in self._qpu_map

    def remove_qpu(self, thread_id: int | None = None) -> None:
        """Drop the calling thread's registration (used by ``finalize()``)."""
        tid = thread_id if thread_id is not None else threading.get_ident()
        with self._lock:
            self._qpu_map.pop(tid, None)

    def clear(self) -> None:
        with self._lock:
            self._qpu_map.clear()

    # -- introspection -----------------------------------------------------------------
    def active_thread_count(self) -> int:
        """Number of threads currently holding a QPU registration."""
        with self._lock:
            return len(self._qpu_map)

    def snapshot(self) -> Mapping[int, Accelerator]:
        """Copy of the current thread-to-QPU map (diagnostics/tests)."""
        with self._lock:
            return dict(self._qpu_map)

    def distinct_instances(self) -> int:
        """Number of *distinct* accelerator objects registered.

        In thread-safe mode with cloneable accelerators this equals the
        number of threads; in legacy mode every thread shares one instance.
        """
        with self._lock:
            return len({id(qpu) for qpu in self._qpu_map.values()})
