"""Shot-level parallelism (Section II of the paper).

The paper identifies shot-level parallelism as the middle level of the
hierarchy (between task-level and inner-simulator parallelism) but does not
evaluate it.  We implement it so the ablation benchmark can: the requested
shots are split into chunks, each chunk is executed as an independent kernel
launch on its own worker (each worker initialising its own per-thread QPU
clone), and the histograms are merged.
"""

from __future__ import annotations

from typing import Mapping

from ..config import get_config
from ..exceptions import ConfigurationError
from ..ir.composite import CompositeInstruction
from ..runtime.buffer import AcceleratorBuffer
from ..runtime.service_registry import get_accelerator
from ..simulator.parallel_engine import merge_counts, split_shots
from .threading_api import qcor_async

__all__ = ["execute_shots_parallel"]


def execute_shots_parallel(
    circuit: CompositeInstruction,
    n_qubits: int,
    shots: int | None = None,
    workers: int = 2,
    backend: str | None = None,
    accelerator_options: Mapping[str, object] | None = None,
) -> dict[str, int]:
    """Execute ``circuit`` with its shots distributed over ``workers`` tasks.

    Returns the merged measurement histogram.  Each worker executes the full
    circuit with ``shots / workers`` shots on its own accelerator clone, so
    the workers are completely independent — the shot-level analogue of the
    paper's task-level parallelism.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be at least 1, got {workers}")
    total_shots = shots if shots is not None else get_config().shots
    chunks = split_shots(total_shots, workers)

    def run_chunk(chunk_shots: int) -> dict[str, int]:
        accelerator = get_accelerator(backend, dict(accelerator_options or {}))
        buffer = AcceleratorBuffer(n_qubits)
        accelerator.execute(buffer, circuit, shots=chunk_shots)
        return buffer.get_measurement_counts()

    if len(chunks) == 1:
        return run_chunk(chunks[0])
    futures = [qcor_async(run_chunk, chunk) for chunk in chunks]
    return merge_counts(future.result() for future in futures)
