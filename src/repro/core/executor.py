"""One-by-one vs parallel kernel execution (the paper's two variants).

The benchmark harness and examples use this module to run a set of
:class:`KernelTask` objects either

* **one-by-one** — the conventional baseline: each kernel runs to completion
  before the next starts, with all ``total_threads`` simulator workers given
  to the single running kernel; or
* **in parallel** — the paper's approach: all kernels run concurrently on
  their own user threads (each with its own per-thread QPU instance via
  :func:`qcor_thread`-style initialisation), and the simulator workers are
  split evenly between them.

Both variants return an :class:`ExecutionReport` with per-task results and
wall-clock timings so callers can compute the speed-up ratios of Figures
3-5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..config import get_config
from ..exceptions import ConfigurationError
from ..ir.composite import CompositeInstruction
from ..runtime.accelerator import Accelerator
from ..runtime.buffer import AcceleratorBuffer
from ..runtime.service_registry import get_accelerator
from .api import execute_circuit, finalize, initialize
from .threading_api import qcor_async

__all__ = ["KernelTask", "TaskResult", "ExecutionReport", "run_one_by_one", "run_parallel"]


@dataclass
class KernelTask:
    """One quantum kernel execution request.

    ``circuit_factory`` (rather than a pre-built circuit) lets workloads
    regenerate per-task circuits lazily; ``shots`` defaults to the global
    configuration.
    """

    name: str
    circuit_factory: Callable[[], CompositeInstruction]
    n_qubits: int
    shots: int | None = None
    #: Extra accelerator options (e.g. noise settings) for this task.
    accelerator_options: Mapping[str, object] = field(default_factory=dict)

    def build_circuit(self) -> CompositeInstruction:
        return self.circuit_factory()


@dataclass
class TaskResult:
    """Result of one task: counts plus its own wall-clock duration."""

    name: str
    counts: dict[str, int]
    duration_seconds: float
    threads: int


@dataclass
class ExecutionReport:
    """Aggregate outcome of a variant run."""

    variant: str
    total_threads: int
    threads_per_task: int
    results: list[TaskResult]
    wall_time_seconds: float

    def speedup_over(self, baseline: "ExecutionReport") -> float:
        if self.wall_time_seconds <= 0:
            raise ConfigurationError("cannot compute speed-up for a zero wall time")
        return baseline.wall_time_seconds / self.wall_time_seconds

    def counts_by_task(self) -> dict[str, dict[str, int]]:
        return {r.name: r.counts for r in self.results}


def _make_accelerator(
    task: KernelTask,
    threads: int,
    backend: str | None,
    processes: int | None = None,
) -> Accelerator:
    options: dict[str, object] = {"threads": threads}
    sharding = processes is not None and processes > 1
    if sharding:
        # Route this task through the process-sharded execution backend
        # (the accelerator adapter resolves the shared ShardedExecutor).
        options["processes"] = processes
    options.update(task.accelerator_options)
    accelerator = get_accelerator(backend, options)
    if sharding and not hasattr(accelerator, "num_processes"):
        # Mirror the broker: a backend that cannot shard must not silently
        # swallow the request and run in-process.
        raise ConfigurationError(
            f"backend {accelerator.name()!r} does not support process "
            f"sharding; drop processes= or use the 'qpp' backend"
        )
    return accelerator


def _run_task(
    task: KernelTask,
    threads: int,
    backend: str | None,
    processes: int | None = None,
) -> TaskResult:
    """Execute one task on the calling thread with its own accelerator clone."""
    accelerator = _make_accelerator(task, threads, backend, processes)
    initialize(accelerator)
    try:
        buffer = AcceleratorBuffer(task.n_qubits, name=f"{task.name}_buffer")
        circuit = task.build_circuit()
        started = time.perf_counter()
        counts = execute_circuit(circuit, buffer, shots=task.shots, accelerator=accelerator)
        duration = time.perf_counter() - started
        return TaskResult(task.name, counts, duration, threads)
    finally:
        finalize()


def run_one_by_one(
    tasks: Sequence[KernelTask],
    total_threads: int | None = None,
    backend: str | None = None,
    processes: int | None = None,
) -> ExecutionReport:
    """Run every task sequentially, each using all ``total_threads`` workers.

    ``processes=N`` routes each task's execution through the shared
    process-sharded backend (shots split over ``N`` worker processes) — the
    same seam every other execution path uses.
    """
    total = total_threads if total_threads is not None else get_config().omp_num_threads
    if total < 1:
        raise ConfigurationError(f"total_threads must be at least 1, got {total}")
    started = time.perf_counter()
    results = [_run_task(task, total, backend, processes) for task in tasks]
    wall = time.perf_counter() - started
    return ExecutionReport(
        variant="one-by-one",
        total_threads=total,
        threads_per_task=total,
        results=results,
        wall_time_seconds=wall,
    )


def run_parallel(
    tasks: Sequence[KernelTask],
    total_threads: int | None = None,
    backend: str | None = None,
    processes: int | None = None,
) -> ExecutionReport:
    """Run all tasks concurrently, splitting ``total_threads`` between them.

    ``processes=N`` additionally shards each task's shots across the shared
    worker processes, stacking process-level parallelism on top of the
    paper's thread-level kernel parallelism.
    """
    if not tasks:
        raise ConfigurationError("run_parallel requires at least one task")
    total = total_threads if total_threads is not None else get_config().omp_num_threads
    if total < 1:
        raise ConfigurationError(f"total_threads must be at least 1, got {total}")
    per_task = max(1, total // len(tasks))
    started = time.perf_counter()
    futures = [qcor_async(_run_task, task, per_task, backend, processes) for task in tasks]
    results = [future.result() for future in futures]
    wall = time.perf_counter() - started
    return ExecutionReport(
        variant="parallel",
        total_threads=total,
        threads_per_task=per_task,
        results=results,
        wall_time_seconds=wall,
    )
