"""QCOR-style user-facing layer — the paper's contribution.

This subpackage implements user-level multi-threading for the
quantum-classical programming model:

* :class:`QPUManager` — the singleton mapping each user thread to its own
  accelerator instance (Listing 8 of the paper).
* :func:`initialize` — the per-thread ``quantum::initialize()`` call that
  registers the calling thread's QPU.
* :func:`qcor_thread` / :func:`qcor_async` — wrappers around
  ``std::thread`` / ``std::async`` that perform that initialisation
  automatically (the convenience the paper proposes as future work).
* :class:`RaceDetector` — instrumentation that records unsynchronised
  concurrent accesses when the legacy (non-thread-safe) code paths are
  enabled, used to demonstrate *why* the thread-safety work is needed.
* One-by-one vs parallel kernel executors, shot-level parallelism, and the
  VQE support objects (:func:`createObjectiveFunction`,
  :func:`createOptimizer`).
"""

from .race_detector import RaceDetector, get_race_detector, reset_race_detector
from .qpu_manager import QPUManager
from .thread_safety import synchronized, GlobalLockRegistry
from .api import (
    initialize,
    finalize,
    is_initialized,
    qalloc,
    set_shots,
    get_shots,
    set_qpu,
    get_qpu,
    execute_circuit,
    observe_expectation,
)
from .threading_api import qcor_thread, qcor_async, TaskGroup
from .executor import KernelTask, run_one_by_one, run_parallel, ExecutionReport
from .shot_parallelism import execute_shots_parallel
from .objective import ObjectiveFunction, createObjectiveFunction
from .optimizer import Optimizer, createOptimizer, OptimizerResult
from .jit import AsyncKernelCompiler, CompilationHandle, CompilationResult, compile_and_execute_async
from .workflow import Workflow, WorkflowResult, WorkflowTask, result_of

__all__ = [
    "RaceDetector",
    "get_race_detector",
    "reset_race_detector",
    "QPUManager",
    "synchronized",
    "GlobalLockRegistry",
    "initialize",
    "finalize",
    "is_initialized",
    "qalloc",
    "set_shots",
    "get_shots",
    "set_qpu",
    "get_qpu",
    "execute_circuit",
    "observe_expectation",
    "qcor_thread",
    "qcor_async",
    "TaskGroup",
    "KernelTask",
    "run_one_by_one",
    "run_parallel",
    "ExecutionReport",
    "execute_shots_parallel",
    "ObjectiveFunction",
    "createObjectiveFunction",
    "Optimizer",
    "createOptimizer",
    "OptimizerResult",
    "AsyncKernelCompiler",
    "CompilationHandle",
    "CompilationResult",
    "compile_and_execute_async",
    "Workflow",
    "WorkflowResult",
    "WorkflowTask",
    "result_of",
    "QuantumJobService",
    "JobPriority",
]

_SERVICE_EXPORTS = {"QuantumJobService", "JobPriority"}


def __getattr__(name: str):
    """Forward broker exports lazily — the service layer is built *on top of*
    this package, so importing it eagerly here would invert the layering."""
    if name in _SERVICE_EXPORTS:
        from .. import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
