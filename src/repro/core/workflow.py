"""Parallel quantum-classical workflows (Section VII of the paper).

The last scenario the paper sketches is "an entire workflow in which
different tasks run on different processing units including CPUs, QPUs,
GPUs, and FPGAs".  This module provides a small dependency-graph executor
for such workflows:

* a :class:`Workflow` is a DAG of named :class:`WorkflowTask` objects;
* each task declares the *resource class* it needs (``"cpu"``, ``"qpu"``,
  ``"gpu"`` ...), and the executor enforces a per-resource concurrency limit
  (e.g. one physical QPU);
* tasks run on worker threads with per-thread QPU initialisation (via
  :func:`repro.core.threading_api.qcor_async`), so quantum tasks in
  independent branches genuinely execute concurrently — exactly what the
  paper's thread-safety work enables;
* a task can consume upstream results by referencing them with
  :func:`result_of`.

The dependency analysis uses :mod:`networkx` (cycle detection, topological
generations).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import networkx as nx

from ..exceptions import ConfigurationError, ExecutionError
from .threading_api import qcor_async

__all__ = ["WorkflowTask", "TaskReference", "result_of", "Workflow", "WorkflowResult"]


@dataclass(frozen=True)
class TaskReference:
    """Placeholder argument resolved to the named task's result at run time."""

    task_name: str


def result_of(task_name: str) -> TaskReference:
    """Reference another task's result as an argument (resolved lazily)."""
    return TaskReference(task_name)


@dataclass
class WorkflowTask:
    """One node of the workflow DAG."""

    name: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    depends_on: tuple[str, ...] = ()
    #: Resource class the task occupies while running ("cpu", "qpu", "gpu"...).
    resource: str = "cpu"


@dataclass
class WorkflowResult:
    """Aggregate outcome of a workflow run."""

    results: dict[str, Any]
    durations: dict[str, float]
    wall_time_seconds: float
    #: Task names in the order they finished.
    completion_order: list[str]

    def __getitem__(self, task_name: str) -> Any:
        return self.results[task_name]


class Workflow:
    """A DAG of quantum-classical tasks with per-resource concurrency limits."""

    def __init__(self, name: str = "workflow", resource_limits: Mapping[str, int] | None = None):
        self.name = name
        #: Maximum number of concurrently running tasks per resource class;
        #: resources not listed are unlimited.
        self.resource_limits: dict[str, int] = dict(resource_limits or {})
        self._tasks: dict[str, WorkflowTask] = {}

    # -- construction -----------------------------------------------------------------
    def add_task(
        self,
        name: str,
        fn: Callable[..., Any],
        *args: Any,
        depends_on: tuple[str, ...] | list[str] = (),
        resource: str = "cpu",
        **kwargs: Any,
    ) -> "Workflow":
        """Add a task; ``args``/``kwargs`` may contain :func:`result_of` references."""
        if name in self._tasks:
            raise ConfigurationError(f"duplicate workflow task name {name!r}")
        if not callable(fn):
            raise ConfigurationError(f"task {name!r} needs a callable, got {type(fn).__name__}")
        limit = self.resource_limits.get(resource)
        if limit is not None and limit < 1:
            raise ConfigurationError(f"resource limit for {resource!r} must be at least 1")
        self._tasks[name] = WorkflowTask(
            name=name,
            fn=fn,
            args=tuple(args),
            kwargs=dict(kwargs),
            depends_on=tuple(depends_on),
            resource=resource,
        )
        return self

    @property
    def task_names(self) -> tuple[str, ...]:
        return tuple(self._tasks)

    # -- graph analysis ------------------------------------------------------------------
    def graph(self) -> nx.DiGraph:
        """The dependency DAG (edge u -> v means v depends on u)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._tasks)
        for task in self._tasks.values():
            for dependency in task.depends_on:
                if dependency not in self._tasks:
                    raise ConfigurationError(
                        f"task {task.name!r} depends on unknown task {dependency!r}"
                    )
                graph.add_edge(dependency, task.name)
        return graph

    def validate(self) -> nx.DiGraph:
        """Check the workflow is a DAG with resolvable references."""
        graph = self.graph()
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise ConfigurationError(f"workflow contains a dependency cycle: {cycle}")
        for task in self._tasks.values():
            for value in list(task.args) + list(task.kwargs.values()):
                if isinstance(value, TaskReference):
                    if value.task_name not in self._tasks:
                        raise ConfigurationError(
                            f"task {task.name!r} references unknown task {value.task_name!r}"
                        )
                    if value.task_name not in task.depends_on:
                        raise ConfigurationError(
                            f"task {task.name!r} uses result_of({value.task_name!r}) but does "
                            "not declare it in depends_on"
                        )
        return graph

    def critical_path_length(self) -> int:
        """Longest chain of dependent tasks (a lower bound on parallel steps)."""
        graph = self.validate()
        if graph.number_of_nodes() == 0:
            return 0
        return int(nx.dag_longest_path_length(graph)) + 1

    # -- execution ----------------------------------------------------------------------------
    def run(self, poll_interval: float = 0.002, timeout: float | None = None) -> WorkflowResult:
        """Execute the workflow, honouring dependencies and resource limits."""
        graph = self.validate()
        results: dict[str, Any] = {}
        durations: dict[str, float] = {}
        completion_order: list[str] = []
        failures: dict[str, BaseException] = {}
        lock = threading.Lock()

        pending = set(self._tasks)
        running: dict[str, Any] = {}  # task name -> future
        resource_in_use: dict[str, int] = {}
        started = time.perf_counter()

        def resolve(value: Any) -> Any:
            if isinstance(value, TaskReference):
                return results[value.task_name]
            return value

        def launch(task: WorkflowTask) -> None:
            def run_task():
                task_started = time.perf_counter()
                value = task.fn(
                    *(resolve(a) for a in task.args),
                    **{k: resolve(v) for k, v in task.kwargs.items()},
                )
                return value, time.perf_counter() - task_started

            running[task.name] = qcor_async(run_task)
            resource_in_use[task.resource] = resource_in_use.get(task.resource, 0) + 1

        while pending or running:
            if timeout is not None and time.perf_counter() - started > timeout:
                raise ExecutionError(f"workflow {self.name!r} exceeded its {timeout}s timeout")
            # Launch every ready task whose resource still has capacity.
            for name in sorted(pending):
                task = self._tasks[name]
                # Failure propagation must precede the readiness check: a
                # failed dependency never lands in `results`, so checking
                # readiness first would leave its dependents pending forever.
                if any(dep in failures for dep in task.depends_on):
                    pending.discard(name)
                    failures[name] = ExecutionError(
                        f"upstream dependency of {name!r} failed"
                    )
                    continue
                if any(dep not in results for dep in task.depends_on):
                    continue
                limit = self.resource_limits.get(task.resource)
                if limit is not None and resource_in_use.get(task.resource, 0) >= limit:
                    continue
                pending.discard(name)
                launch(task)
            # Collect finished tasks.
            finished = [name for name, future in running.items() if future.done()]
            for name in finished:
                future = running.pop(name)
                task = self._tasks[name]
                resource_in_use[task.resource] -= 1
                try:
                    value, duration = future.result()
                except BaseException as exc:  # noqa: BLE001 - recorded and re-raised below
                    failures[name] = exc
                    continue
                with lock:
                    results[name] = value
                    durations[name] = duration
                    completion_order.append(name)
            if not finished:
                time.sleep(poll_interval)

        if failures:
            first_name = next(iter(failures))
            raise ExecutionError(
                f"workflow {self.name!r} failed: task {first_name!r} raised "
                f"{failures[first_name]!r}"
            ) from failures[first_name]
        _ = graph  # validated above; kept for symmetry/debugging
        return WorkflowResult(
            results=results,
            durations=durations,
            wall_time_seconds=time.perf_counter() - started,
            completion_order=completion_order,
        )
