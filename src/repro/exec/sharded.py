"""Process-sharded plan replay: execution that scales past the GIL.

Every in-process execution path ultimately serialises Python dispatch
behind the GIL, no matter how many threads the engine spins up.  The
:class:`ShardedExecutor` is the process-level answer: ``N`` *shards*, each
a persistent single-worker ``ProcessPoolExecutor``, with circuits shipped
by **content hash + canonical JSON payload**
(:mod:`repro.ir.serialization`).  Each worker process keeps its own
bounded plan cache keyed by the parent-computed hash, so a circuit is
compiled at most once per worker and replayed thereafter — the same
compile-once/execute-many amortisation the in-process plan cache provides,
multiplied across processes.

Two dispatch modes cover the two traffic shapes:

* **shot sharding** (``shard=None``): the shot budget is split across all
  shards with :func:`~repro.simulator.parallel_engine.split_shots` and
  per-shard seeds are spawned from one ``numpy.random.SeedSequence`` —
  the *identical* chunk/seed derivation the in-process engine uses for its
  worker threads, so fixed-seed counts are bit-identical to
  ``ParallelSimulationEngine`` with ``num_threads == n_shards``;
* **key affinity** (``shard=k`` or :meth:`execute_for_key`): the whole job
  runs on one shard chosen by hashing the job key, so a worker's warm plan
  cache keeps receiving the circuits it has already compiled.  A pinned
  single-chunk run spawns ``SeedSequence(seed).spawn(1)`` exactly like the
  single-threaded engine path, preserving bit-identity there too.

Workers are expendable: a chunk whose worker dies (OOM-killed, ``SIGKILL``,
crashed interpreter) is re-executed on a freshly respawned shard rather
than failing the job.  ``close()`` is exception-safe and idempotent — no
orphaned worker processes on error paths.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures.process import BrokenProcessPool
from typing import Mapping, Sequence

import numpy as np

from ..cancellation import CancelToken, active_cancel_token, cancel_scope
from ..exceptions import (
    DeadlineExceeded,
    ExecutionError,
    JobCancelled,
    RetryExhausted,
)
from ..ir.composite import CompositeInstruction
from ..ir.serialization import circuit_from_json, circuit_to_json
from ..obs.profiler import ReplayProfiler, active_profiler, profiler_installed
from ..obs.trace import TraceContext, get_tracer
from ..testing import faults
from .retry import RetryPolicy
from ..simulator.execution_plan import (
    DEFAULT_PRECISION,
    compile_parametric_plan,
    compile_plan,
)
from ..simulator.parallel_engine import (
    merge_counts,
    replay_trajectory_chunk,
    split_shots,
)
from ..simulator.plan_cache import cached_content_hash
from ..simulator.sampling import sample_counts
from .backend import ExecutionBackend, Params, _resolve_width
from .result import ExecutionResult

__all__ = [
    "ShardedExecutor",
    "get_sharded_executor",
    "shutdown_sharded_executors",
]

#: Seconds between cancellation checks while awaiting a shard's result.
_WAIT_POLL = 0.05


# ---------------------------------------------------------------------------
# Parent-side payload preparation
# ---------------------------------------------------------------------------


def _circuit_payload(circuit: CompositeInstruction) -> tuple[str, str]:
    """``(canonical_json, content_hash)`` for ``circuit``, memoised on it.

    The memo follows the same invalidation rule as
    :func:`~repro.simulator.plan_cache.cached_content_hash`: it is keyed by
    the instruction count, the only thing ``CompositeInstruction.add`` can
    change.
    """
    n = circuit.n_instructions
    memo = circuit.__dict__.get("_exec_payload")
    if memo is not None and memo[0] == n:
        return memo[1], memo[2]
    payload = circuit_to_json(circuit)
    digest = cached_content_hash(circuit)
    circuit.__dict__["_exec_payload"] = (n, payload, digest)
    return payload, digest


# ---------------------------------------------------------------------------
# Worker-side code (runs inside shard processes; must stay module level so
# it is picklable by reference)
# ---------------------------------------------------------------------------

#: Per-process plan cache: (content_hash, width, compile options) -> plan.
_WORKER_PLANS: "OrderedDict[tuple, object]" = OrderedDict()
_WORKER_PLAN_CAPACITY = 128

#: Lazily-created per-worker-process engine used to chunk-parallelise each
#: shard's single-state plan replays across its own worker threads (the
#: shard process is otherwise single-threaded, so its pool is never nested).
_WORKER_ENGINE = None
#: Total shard count, set by the pool initializer so each worker sizes its
#: chunk pool to its fair share of the host instead of cpu_count threads
#: per shard (P shards x cpu_count chunk threads would oversubscribe the
#: machine exactly when every shard replays a large state at once).
_WORKER_SHARDS = 1
#: Shared-memory lane width for this shard worker (0 = thread engine only),
#: set by the pool initializer from ``ShardedExecutor(shm_processes=...)``.
_WORKER_SHM = 0
#: Lazily-created per-worker-process SharedStatePool when _WORKER_SHM > 1.
_WORKER_SHM_POOL = None


def _init_worker_process(total_shards: int, shm_processes: int = 0) -> None:
    """Pool initializer: runs in each shard worker as it starts.

    Besides recording the shard topology, merely importing this module
    (which the spawn/forkserver pickling of this initializer forces)
    preloads the whole simulator stack, so a worker's first chunk pays no
    import latency mid-traffic.
    """
    global _WORKER_SHARDS, _WORKER_SHM
    _WORKER_SHARDS = max(1, int(total_shards))
    _WORKER_SHM = max(0, int(shm_processes))


def _worker_engine():
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:
        import os

        from ..simulator.parallel_engine import ParallelSimulationEngine

        cores = os.cpu_count() or 1
        _WORKER_ENGINE = ParallelSimulationEngine(
            num_threads=max(1, cores // _WORKER_SHARDS)
        )
    return _WORKER_ENGINE


def _worker_replay_pool(plan):
    """The chunk pool this shard worker replays ``plan`` on.

    With ``shm_processes`` configured, a shard borrows a shared-memory
    pool for super-threshold states instead of chunking on its private
    thread engine.  ``shm_processes`` is the *total* worker budget for
    the lane: each shard takes its fair share (``shm_processes //
    shards``), mirroring how worker engines size their thread pools —
    otherwise P shards replaying large states at once would spawn
    ``P * shm_processes`` worker processes and oversubscribe the host
    exactly when the lane matters most.  A share below 2 (no room to
    split) stays on the thread engine, as do plans the pool cannot ship
    (resets), so trajectory workloads are unaffected.
    """
    global _WORKER_SHM_POOL
    engine = _worker_engine()
    share = _WORKER_SHM // _WORKER_SHARDS
    if share > 1:
        if _WORKER_SHM_POOL is None or _WORKER_SHM_POOL.closed:
            from .shm import SharedStatePool

            _WORKER_SHM_POOL = SharedStatePool(
                share, name="shard-shm", fallback=engine
            )
        if _WORKER_SHM_POOL.can_replay(plan):
            return _WORKER_SHM_POOL
    return engine


def _worker_plan(
    payload: str,
    digest: str,
    width: int,
    optimize: bool,
    batch_diagonals: bool = True,
    chunk_threshold: int | None = None,
    precision: str = DEFAULT_PRECISION,
):
    """Compile-once lookup inside a worker process.

    ``batch_diagonals`` participates in the key because batched plans are
    ulp-level different artefacts — the parent compiled with the same flag,
    and fixed-seed bit-identity across processes depends on both sides
    replaying the same kernels.  ``precision`` participates because a
    complex64 plan is a semantically different artefact (different
    payload dtypes, different results).
    """
    key = (digest, width, optimize, batch_diagonals, chunk_threshold, precision)
    plan = _WORKER_PLANS.get(key)
    if plan is not None:
        _WORKER_PLANS.move_to_end(key)
        return plan, True
    faults.fire("sharded.worker.compile")
    circuit = circuit_from_json(payload)
    if circuit.is_parameterized:
        plan = compile_parametric_plan(
            circuit,
            width,
            optimize=optimize,
            batch_diagonals=batch_diagonals,
            chunk_threshold=chunk_threshold,
            precision=precision,
        )
    else:
        plan = compile_plan(
            circuit,
            width,
            optimize=optimize,
            batch_diagonals=batch_diagonals,
            chunk_threshold=chunk_threshold,
            precision=precision,
        )
    _WORKER_PLANS[key] = plan
    while len(_WORKER_PLANS) > _WORKER_PLAN_CAPACITY:
        _WORKER_PLANS.popitem(last=False)
    return plan, False


def _replay_chunk_body(
    payload: str,
    digest: str,
    width: int,
    optimize: bool,
    shots: int,
    seed_seq: np.random.SeedSequence,
    params: Params,
    trajectories: bool,
    batch_diagonals: bool,
    chunk_threshold: int | None,
    precision: str = DEFAULT_PRECISION,
) -> tuple[dict[str, int], int, int, bool]:
    """The chunk execution itself: (counts, depth, n_gates, plan_cached).

    Mirrors the in-process paths operation for operation so fixed-seed
    results reduce bit-identically: non-reset circuits replay the plan once
    and multinomial-sample the chunk from one RNG stream
    (:meth:`ParallelSimulationEngine.sample_parallel`'s per-chunk body);
    reset circuits run one trajectory per shot with the chunk RNG shared
    between collapses and sampling (:meth:`run_trajectories`'s chunk body).
    Large states chunk-parallelise each replay on the worker's own engine —
    chunked replay is bitwise identical to serial, so the cross-process
    bit-identity guarantee is untouched.

    The spans below record only under an active trace (the tracer hands
    out shared no-op spans otherwise), mirroring ``LocalBackend.execute``'s
    compile/replay/sample stages.
    """
    faults.fire("sharded.worker.replay")
    tracer = get_tracer()
    with tracer.span("compile") as compile_span:
        plan, cached = _worker_plan(
            payload, digest, width, optimize, batch_diagonals, chunk_threshold,
            precision,
        )
        compile_span.set_attribute("plan_cached", cached)
    if plan.is_parametric:
        plan = plan.bind(params if params is not None else ())
    measured = plan.measured_qubits or tuple(range(width))
    rng = np.random.default_rng(seed_seq)
    if plan.has_reset or trajectories:
        with tracer.span("replay", attrs={"mode": "trajectories", "shots": shots}):
            counts = replay_trajectory_chunk(
                plan, shots, rng, measured, width, pool=_worker_replay_pool(plan)
            )
    else:
        with tracer.span("replay", attrs={"n_qubits": width}):
            data = plan.execute(plan.new_state(), pool=_worker_replay_pool(plan))
        with tracer.span("sample", attrs={"shots": shots}):
            counts = sample_counts(np.abs(data) ** 2, shots, measured, width, rng)
    return counts, plan.depth, plan.n_gates, cached


def _replay_chunk(
    payload: str,
    digest: str,
    width: int,
    optimize: bool,
    shots: int,
    seed_seq: np.random.SeedSequence,
    params: Params = None,
    trajectories: bool = False,
    batch_diagonals: bool = True,
    chunk_threshold: int | None = None,
    precision: str = DEFAULT_PRECISION,
    obs: dict | None = None,
    ctl: dict | None = None,
) -> tuple[dict[str, int], int, int, bool, dict | None]:
    """Execute one shard chunk; returns
    ``(counts, depth, n_gates, plan_cached, obs_payload)``.

    ``obs`` is the parent's observability request: a serialised trace
    context to record this worker's spans under, and/or a profile flag.
    The returned ``obs_payload`` (``None`` when nothing was requested)
    carries the worker's finished spans and per-kernel profile back across
    the process boundary for the parent to stitch — including spans the
    worker's own shm lane ingested from *its* workers, so two-hop traces
    (broker → shard → shm) assemble into one tree.

    ``ctl`` is the parent's lifecycle request: a wall-clock ``deadline``
    installed as this worker's ambient cancel token, so the replay loops
    abandon an expired job at the next step boundary and the typed
    :class:`~repro.exceptions.DeadlineExceeded` travels back through the
    future instead of the chunk running to completion for nothing.
    """
    body_args = (
        payload, digest, width, optimize, shots, seed_seq, params,
        trajectories, batch_diagonals, chunk_threshold, precision,
    )
    token = (
        CancelToken(deadline=ctl.get("deadline")) if ctl is not None else None
    )
    with cancel_scope(token):
        if token is not None:
            token.check()
        if obs is None:
            counts, depth, n_gates, cached = _replay_chunk_body(*body_args)
            return counts, depth, n_gates, cached, None
        tracer = get_tracer()
        parent_ctx = TraceContext.from_wire(obs.get("trace"))
        profiler = ReplayProfiler() if obs.get("profile") else None
        with tracer.capture() as sink:
            with tracer.span(
                "shard-replay",
                attrs={"pid": os.getpid(), "shots": shots},
                parent=parent_ctx,
            ):
                with profiler_installed(profiler):
                    counts, depth, n_gates, cached = _replay_chunk_body(*body_args)
        obs_payload = {
            "spans": [span.to_dict() for span in sink],
            "profile": profiler.to_wire() if profiler is not None else None,
        }
    return counts, depth, n_gates, cached, obs_payload


def _sweep_chunk_body(
    payload: str,
    digest: str,
    width: int,
    optimize: bool,
    bindings: Sequence,
    shots: int,
    seed: int | None,
    batch_diagonals: bool,
    chunk_threshold: int | None,
    precision: str,
    observable,
) -> tuple[list, int, int, bool]:
    """Compile once, evaluate a contiguous binding range in place.

    Returns ``(results, depth, n_gates, plan_cached)`` where ``results``
    holds one ``(counts_or_expectation, seconds)`` pair per binding, in
    binding order.  Bit-identity: each binding derives its RNG as
    ``SeedSequence(seed).spawn(1)[0]`` — exactly the derivation a pinned
    single-chunk independent job of the pre-bound circuit uses — so sweep
    counts match the equivalent independent submissions bit for bit.
    """
    faults.fire("sharded.worker.replay")
    tracer = get_tracer()
    with tracer.span("compile") as compile_span:
        plan, cached = _worker_plan(
            payload, digest, width, optimize, batch_diagonals, chunk_threshold,
            precision,
        )
        compile_span.set_attribute("plan_cached", cached)
    token = active_cancel_token()
    measured = plan.measured_qubits or tuple(range(width))
    results: list = []
    for values in bindings:
        if token is not None:
            # Per-binding boundary: an expired sweep stops between
            # evaluations instead of draining the whole range.
            token.check()
        started = time.perf_counter()
        # Rebind mutates this worker's thread-local plan clone in place
        # (PR 2's trig-rebind path); the previous binding has fully
        # executed by the time the next bind runs, so reuse is safe.
        bound = plan.bind(values) if plan.is_parametric else plan
        pool = _worker_replay_pool(bound)
        if observable is not None:
            if bound.has_reset:
                raise ExecutionError(
                    "exact expectations are undefined for circuits with "
                    "mid-circuit resets"
                )
            from ..simulator.statevector import StateVector

            state = StateVector(
                width,
                data=bound.execute(bound.new_state(), pool=pool),
                dtype=bound.dtype,
            )
            results.append(
                (float(state.expectation(observable)), time.perf_counter() - started)
            )
            continue
        rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])
        if bound.has_reset:
            with tracer.span("replay", attrs={"mode": "trajectories", "shots": shots}):
                counts = replay_trajectory_chunk(
                    bound, shots, rng, measured, width, pool=pool
                )
        else:
            with tracer.span("replay", attrs={"n_qubits": width}):
                data = bound.execute(bound.new_state(), pool=pool)
            with tracer.span("sample", attrs={"shots": shots}):
                counts = sample_counts(np.abs(data) ** 2, shots, measured, width, rng)
        results.append((counts, time.perf_counter() - started))
    return results, plan.depth, plan.n_gates, cached


def _sweep_chunk(
    payload: str,
    digest: str,
    width: int,
    optimize: bool,
    bindings: Sequence,
    shots: int,
    seed: int | None = None,
    batch_diagonals: bool = True,
    chunk_threshold: int | None = None,
    precision: str = DEFAULT_PRECISION,
    observable=None,
    obs: dict | None = None,
    ctl: dict | None = None,
) -> tuple[list, int, int, bool, dict | None]:
    """Execute one sweep binding-range on this shard; returns
    ``(results, depth, n_gates, plan_cached, obs_payload)``.

    The circuit ships once per worker by content hash (``_worker_plan``'s
    compile-once cache); every binding in the range replays the same plan
    clone via in-place rebind.  ``obs``/``ctl`` behave exactly as in
    :func:`_replay_chunk`.
    """
    body_args = (
        payload, digest, width, optimize, bindings, shots, seed,
        batch_diagonals, chunk_threshold, precision, observable,
    )
    token = CancelToken(deadline=ctl.get("deadline")) if ctl is not None else None
    with cancel_scope(token):
        if token is not None:
            token.check()
        if obs is None:
            results, depth, n_gates, cached = _sweep_chunk_body(*body_args)
            return results, depth, n_gates, cached, None
        tracer = get_tracer()
        parent_ctx = TraceContext.from_wire(obs.get("trace"))
        profiler = ReplayProfiler() if obs.get("profile") else None
        with tracer.capture() as sink:
            with tracer.span(
                "sweep-chunk",
                attrs={"pid": os.getpid(), "bindings": len(bindings)},
                parent=parent_ctx,
            ):
                with profiler_installed(profiler):
                    results, depth, n_gates, cached = _sweep_chunk_body(*body_args)
        obs_payload = {
            "spans": [span.to_dict() for span in sink],
            "profile": profiler.to_wire() if profiler is not None else None,
        }
    return results, depth, n_gates, cached, obs_payload


def _chunk_expectation(
    payload: str,
    digest: str,
    width: int,
    optimize: bool,
    params: Params,
    observable,
    batch_diagonals: bool = True,
    chunk_threshold: int | None = None,
    precision: str = DEFAULT_PRECISION,
) -> float:
    """Exact expectation evaluated inside a worker (plan replay + <O>)."""
    from ..simulator.statevector import StateVector

    plan, _ = _worker_plan(
        payload, digest, width, optimize, batch_diagonals, chunk_threshold, precision
    )
    if plan.is_parametric:
        plan = plan.bind(params if params is not None else ())
    if plan.has_reset:
        raise ExecutionError(
            "exact expectations are undefined for circuits with mid-circuit resets"
        )
    state = StateVector(
        width,
        data=plan.execute(plan.new_state(), pool=_worker_replay_pool(plan)),
        dtype=plan.dtype,
    )
    return float(state.expectation(observable))


def _warm_worker_plan(
    payload: str,
    digest: str,
    width: int,
    optimize: bool,
    batch_diagonals: bool = True,
    chunk_threshold: int | None = None,
    precision: str = DEFAULT_PRECISION,
) -> bool:
    """Compile into the worker's plan cache; returns whether it was warm.

    (Plans hold thread-local scratch state and never cross the process
    boundary — only this flag does.)
    """
    _, cached = _worker_plan(
        payload, digest, width, optimize, batch_diagonals, chunk_threshold, precision
    )
    return cached


def _worker_pid() -> int:
    import os

    return os.getpid()


def _worker_plan_cache_size() -> int:
    return len(_WORKER_PLANS)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class ShardedExecutor(ExecutionBackend):
    """Plan replay farmed out to ``processes`` persistent worker processes."""

    backend_name = "sharded"

    def __init__(
        self,
        processes: int = 2,
        *,
        name: str = "exec-shard",
        max_retries: int = 1,
        warm_start: bool = True,
        mp_context: str | None = None,
        shm_processes: int = 0,
        retry_policy: RetryPolicy | None = None,
    ):
        """``mp_context`` picks the worker start method (``"fork"``,
        ``"spawn"``, ``"forkserver"``; ``None`` = platform default) — the
        spawn paths matter on macOS/Windows, where fork is unavailable or
        unsafe; the pool initializer preloads the simulator stack so
        spawned workers pay their import cost at startup, not mid-batch.
        ``shm_processes=N`` is a *total* worker budget letting shards
        borrow the shared-memory lane for super-threshold single-state
        replays instead of their private thread engines; each shard's
        pool gets ``N // processes`` workers (shares below 2 stay on the
        thread engine)."""
        if processes < 1:
            raise ExecutionError(f"processes must be at least 1, got {processes}")
        if max_retries < 0:
            raise ExecutionError(f"max_retries must be non-negative, got {max_retries}")
        self.processes = int(processes)
        self.name = name
        self.max_retries = int(max_retries)
        #: Worker-death recovery policy.  ``retry_policy`` supersedes the
        #: legacy ``max_retries`` knob when given; otherwise ``max_retries``
        #: extra attempts with a short backoff reproduce the historical
        #: behaviour in policy form.
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_attempts=self.max_retries + 1, base_delay=0.01, max_delay=0.5
            )
        )
        self.shm_processes = int(shm_processes or 0)
        import multiprocessing

        self._mp_context = (
            multiprocessing.get_context(mp_context) if mp_context is not None else None
        )
        self._lock = threading.Lock()
        self._pools: list[concurrent.futures.ProcessPoolExecutor | None] = [
            None for _ in range(self.processes)
        ]
        self._closed = False
        self._retries = 0
        self._steals = 0
        #: Cold-key ownership decisions (see :meth:`_owner_for_key`): once a
        #: cache-miss job is routed — stolen or affine — future hits for the
        #: same key stay with that owner so its plan cache stays warm.
        self._key_owners: "OrderedDict[str, int]" = OrderedDict()
        self._key_owner_capacity = 4096
        #: Work submissions in flight per shard (health metric: a hot shard
        #: under key affinity shows up as a deep per-shard queue here).
        self._inflight = [0] * self.processes
        if warm_start:
            # Fork every shard up front (ideally from the constructing
            # thread, before dispatcher threads and their locks exist) so
            # no later submit pays — or risks — a mid-traffic fork.
            for index in range(self.processes):
                self._pool(index)
            self.shard_pids()

    # -- pool lifecycle -----------------------------------------------------------
    def _pool(self, index: int) -> concurrent.futures.ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise ExecutionError(f"sharded executor {self.name!r} is closed")
            pool = self._pools[index]
            if pool is None:
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=self._mp_context,
                    initializer=_init_worker_process,
                    initargs=(self.processes, self.shm_processes),
                )
                self._pools[index] = pool
            return pool

    def _replace_pool(
        self, index: int, broken: concurrent.futures.ProcessPoolExecutor
    ) -> None:
        """Retire a broken shard pool; the next `_pool` respawns the shard."""
        with self._lock:
            if self._pools[index] is broken:
                self._pools[index] = None
            self._retries += 1
        try:
            broken.shutdown(wait=False)
        except Exception:
            pass

    def close(self, wait: bool = True) -> None:
        """Shut every shard down.  Exception-safe and idempotent: a pool
        whose shutdown raises never prevents the remaining shards from
        being released, so no worker process is orphaned on error paths."""
        with self._lock:
            self._closed = True
            pools, self._pools = self._pools, [None for _ in range(self.processes)]
        for pool in pools:
            if pool is None:
                continue
            try:
                pool.shutdown(wait=wait)
            except Exception:
                pass

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close(wait=False)
        except Exception:
            pass

    # -- shard routing ------------------------------------------------------------
    def shard_for(self, key: str) -> int:
        """Stable shard index for a job/content key (hash affinity).

        Keys are the hex digests produced by :func:`repro.service.keys.job_key`
        / :func:`circuit_content_hash`; non-hex keys fall back to Python's
        string hash (stable within a process, which is all affinity needs).
        """
        try:
            value = int(key[:16], 16)
        except (ValueError, TypeError):
            value = hash(key)
        return value % self.processes

    def _owner_for_key(self, key: str) -> int:
        """The shard that should run ``key``'s job, with cold-key stealing.

        A key seen before keeps its recorded owner (plan-cache affinity).
        A *cold* key normally goes to its hash-affine shard — but when that
        shard is busier than the idlest one (by live in-flight depth, the
        ``shard_queue_depths()`` health metric), the job is stolen by the
        least-loaded shard, and the key stays affine to the new owner so
        future hits keep landing on the worker whose cache is now warm.
        Ties prefer the hash-affine shard, so an idle executor routes
        exactly like pure hash affinity.
        """
        affine = self.shard_for(key)
        with self._lock:
            owner = self._key_owners.get(key)
            if owner is not None:
                self._key_owners.move_to_end(key)
                return owner
            depths = self._inflight
            best = min(
                range(self.processes), key=lambda i: (depths[i], i != affine)
            )
            if depths[best] < depths[affine]:
                owner = best
                self._steals += 1
            else:
                owner = affine
            self._key_owners[key] = owner
            while len(self._key_owners) > self._key_owner_capacity:
                self._key_owners.popitem(last=False)
            return owner

    def shard_pids(self) -> list[int]:
        """PID of each shard's worker process (spawning idle shards)."""
        futures = [self._pool(i).submit(_worker_pid) for i in range(self.processes)]
        return [future.result() for future in futures]

    def worker_plan_cache_sizes(self) -> list[int]:
        """Compiled plans held by each shard's worker (observability)."""
        futures = [
            self._pool(i).submit(_worker_plan_cache_size)
            for i in range(self.processes)
        ]
        return [future.result() for future in futures]

    # -- submission with worker-failure retry ------------------------------------
    def _submit_tracked(
        self, index: int, pool: concurrent.futures.ProcessPoolExecutor, fn, /, *args
    ):
        """``pool.submit`` with per-shard in-flight accounting."""
        with self._lock:
            self._inflight[index] += 1
        try:
            future = pool.submit(fn, *args)
        except BaseException:
            with self._lock:
                self._inflight[index] -= 1
            raise
        future.add_done_callback(lambda _f, i=index: self._work_done(i))
        return future

    def _work_done(self, index: int) -> None:
        with self._lock:
            self._inflight[index] -= 1

    def shard_queue_depths(self) -> list[int]:
        """Work submissions currently in flight on each shard (health metric)."""
        with self._lock:
            return list(self._inflight)

    def _await_result(self, future, token):
        """Await a shard future; with a token, poll so a tripped token
        raises its typed error promptly (the submitted chunk keeps running
        to harmless completion in the worker — cancellation never kills a
        healthy worker process)."""
        if token is None:
            return future.result()
        while True:
            try:
                return future.result(timeout=_WAIT_POLL)
            except concurrent.futures.TimeoutError:
                token.check()

    def _run_on_shard(self, index: int, fn, /, *args, policy: RetryPolicy | None = None):
        """Run ``fn(*args)`` on shard ``index``, respawning it on worker death.

        Worker deaths are retried under :attr:`retry_policy` (bounded
        attempts, exponential backoff + jitter); exhaustion raises
        :class:`~repro.exceptions.RetryExhausted`.  ``policy`` overrides
        the executor-wide policy for this call (the broker's per-tenant
        retry defaults arrive through it).  Under an active trace
        every attempt gets its own span: a worker death closes the
        attempt's span error-tagged (the killed worker's own spans die
        with it — the parent-side record is what keeps the trace
        complete), and the respawned retry appears as the next attempt
        under the same trace id.
        """
        attempts = 0
        tracer = get_tracer()
        token = active_cancel_token()
        policy = policy if policy is not None else self.retry_policy
        while True:
            attempts += 1
            pool = self._pool(index)
            span = tracer.span(
                "shard-attempt", attrs={"shard": index, "attempt": attempts - 1}
            )
            try:
                future = self._submit_tracked(index, pool, fn, *args)
                result = self._await_result(future, token)
                span.finish()
                return result
            except (JobCancelled, DeadlineExceeded) as exc:
                span.mark_error(str(exc))
                span.finish()
                raise
            except (BrokenProcessPool, EOFError, OSError) as exc:
                span.mark_error(f"shard worker died: {exc}")
                span.set_attribute("respawned", True)
                span.finish()
                self._replace_pool(index, pool)
                if policy.should_retry(attempts, exc):
                    policy.sleep(attempts, token)
                    continue
                raise RetryExhausted(
                    f"shard {index} of {self.name!r} failed {attempts} time(s): {exc}",
                    attempts=attempts,
                ) from exc
            except BaseException as exc:
                span.mark_error(str(exc))
                span.finish()
                raise

    # -- protocol -----------------------------------------------------------------
    def compile(
        self,
        circuit: CompositeInstruction,
        n_qubits: int | None = None,
        *,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ):
        """Warm the affine shard's plan cache; returns the parent-side plan.

        The returned plan comes from the shared in-process cache (plans
        cannot cross process boundaries); as a side effect the shard that
        will execute this circuit compiles it too, so the first `execute`
        replays instead of compiling.
        """
        payload, digest = _circuit_payload(circuit)
        width = _resolve_width(circuit, n_qubits)
        shard = self.shard_for(digest)
        self._run_on_shard(
            shard, _warm_worker_plan, payload, digest, width, optimize,
            batch_diagonals, chunk_threshold, precision,
        )
        from ..simulator.plan_cache import get_plan_cache

        plan, _ = get_plan_cache().lookup_or_compile(
            circuit,
            width,
            optimize=optimize,
            batch_diagonals=batch_diagonals,
            chunk_threshold=chunk_threshold,
            precision=precision,
        )
        return plan

    def execute(
        self,
        circuit: CompositeInstruction,
        shots: int,
        *,
        n_qubits: int | None = None,
        seed: int | None = None,
        params: Params = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
        shard: int | None = None,
        trajectories: bool = False,
        retry_policy: RetryPolicy | None = None,
    ) -> ExecutionResult:
        """Run ``circuit`` across the shards (or pinned to one).

        ``shard=None`` splits the shots over every shard; ``shard=k`` runs
        the whole job on shard ``k`` (the broker's key-affinity mode).
        Shot sharding replicates the *state evolution* on every shard (each
        worker replays the plan once) and shards only the shot work, so it
        pays off when shots/trajectories dominate — trajectory workloads,
        high shot counts, small-to-mid states.  For deep circuits at low
        shot counts prefer key affinity, which evolves once on one shard;
        evolving one large state cooperatively across shards needs shared
        memory and is a ROADMAP follow-up.
        ``trajectories=True`` forces one-simulation-per-shot replay even
        without mid-circuit resets (matching the engine's trajectory path
        RNG-draw for RNG-draw).  Results reduce deterministically: chunks
        are merged in shard order and the per-chunk seeds derive from
        ``SeedSequence(seed)`` exactly as the in-process engine derives its
        per-thread streams.
        """
        if circuit.is_parameterized and params is None:
            raise ExecutionError(
                f"circuit {circuit.name!r} has unbound parameters; provide params"
            )
        token = active_cancel_token()
        ctl: dict | None = None
        if token is not None:
            token.check()  # refuse to ship a job that is already dead
            if token.deadline is not None:
                # The deadline crosses the process boundary (wall clock);
                # client-side cancels cannot — the parent stops awaiting
                # instead, and the chunk completes harmlessly.
                ctl = {"deadline": token.deadline}
        payload, digest = _circuit_payload(circuit)
        width = _resolve_width(circuit, n_qubits)
        if shard is None:
            chunks = split_shots(shots, self.processes)
            indices = list(range(len(chunks)))
        else:
            if not 0 <= shard < self.processes:
                raise ExecutionError(
                    f"shard {shard} out of range for {self.processes} shard(s)"
                )
            chunks = [shots]
            indices = [shard]
        seeds = np.random.SeedSequence(seed).spawn(len(chunks))
        retries_before = self._retries

        # Observability request shipped with every chunk: the ambient trace
        # context (workers parent their spans to it) and whether a replay
        # profiler is active here.  ``None`` — the common case — keeps the
        # worker on its branch-free path.
        tracer = get_tracer()
        ctx = tracer.current_context()
        profiler = active_profiler()
        obs: dict | None = None
        if ctx is not None or profiler is not None:
            obs = {
                "trace": ctx.to_wire() if ctx is not None else None,
                "profile": profiler is not None,
            }

        started = time.perf_counter()
        if len(chunks) == 1:
            outcomes = [
                self._run_on_shard(
                    indices[0],
                    _replay_chunk,
                    payload, digest, width, optimize, chunks[0], seeds[0], params,
                    trajectories, batch_diagonals, chunk_threshold, precision,
                    obs, ctl,
                    policy=retry_policy,
                )
            ]
        else:
            outcomes = self._gather(
                [
                    (
                        index,
                        (
                            payload, digest, width, optimize, chunk, seq, params,
                            trajectories, batch_diagonals, chunk_threshold,
                            precision, obs, ctl,
                        ),
                    )
                    for index, chunk, seq in zip(indices, chunks, seeds)
                ],
                token,
                policy=retry_policy,
            )
        elapsed = time.perf_counter() - started

        # Stitch worker-side observations back into this process: spans join
        # the parent trace (and any active capture sinks, for two-hop
        # shipping) and per-kernel timings merge into the active profiler.
        if obs is not None:
            for outcome in outcomes:
                payload_obs = outcome[4]
                if not payload_obs:
                    continue
                spans = payload_obs.get("spans")
                if spans:
                    tracer.ingest(spans)
                profile = payload_obs.get("profile")
                if profiler is not None and profile:
                    profiler.merge_wire(profile)

        counts = merge_counts(outcome[0] for outcome in outcomes)
        depth, n_gates = outcomes[0][1], outcomes[0][2]
        plan_cached = all(outcome[3] for outcome in outcomes)
        return ExecutionResult(
            counts=counts,
            shots=shots,
            n_qubits=width,
            backend=self.backend_name,
            seconds=elapsed,
            shards=len(chunks),
            plan_cached=plan_cached,
            depth=depth,
            n_gates=n_gates,
            retries=self._retries - retries_before,
        )

    def _gather(
        self,
        jobs: list[tuple[int, tuple]],
        token=None,
        fn=_replay_chunk,
        policy: RetryPolicy | None = None,
    ) -> list[tuple]:
        """Run chunk jobs concurrently across shards, retrying dead workers.

        All chunks are submitted before any result is awaited so shards
        genuinely overlap.  Both failure points route into the retry path:
        ``submit`` itself raising (another thread's chunk already broke the
        pool) and the awaited result raising (this chunk's worker died).
        Retried chunks re-run synchronously on their respawned shard.
        A tripped ``token`` raises its typed error from the await loop —
        in-flight chunks complete harmlessly on their live workers.
        ``fn`` is the worker function each job runs (shot chunks by
        default, sweep binding-ranges for ``execute_sweep``).
        """
        tracer = get_tracer()
        entries: list[tuple[int, tuple, object, object]] = []
        for index, args in jobs:
            pool = self._pool(index)
            try:
                entries.append(
                    (index, args, pool, self._submit_tracked(index, pool, fn, *args))
                )
            except (BrokenProcessPool, EOFError, OSError) as exc:
                tracer.record(
                    "shard-attempt",
                    parent=tracer.current_context(),
                    start_wall=time.time(),
                    duration=0.0,
                    attrs={"shard": index, "respawned": True},
                    error=f"shard worker died: {exc}",
                )
                self._replace_pool(index, pool)
                entries.append((index, args, None, None))
        outcomes = []
        for index, args, pool, future in entries:
            if future is None:
                outcomes.append(self._run_on_shard(index, fn, *args, policy=policy))
                continue
            try:
                outcomes.append(self._await_result(future, token))
            except (BrokenProcessPool, EOFError, OSError) as exc:
                tracer.record(
                    "shard-attempt",
                    parent=tracer.current_context(),
                    start_wall=time.time(),
                    duration=0.0,
                    attrs={"shard": index, "respawned": True},
                    error=f"shard worker died: {exc}",
                )
                self._replace_pool(index, pool)
                outcomes.append(self._run_on_shard(index, fn, *args, policy=policy))
        return outcomes

    def execute_for_key(
        self,
        key: str,
        circuit: CompositeInstruction,
        shots: int,
        *,
        n_qubits: int | None = None,
        seed: int | None = None,
        params: Params = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
        retry_policy: RetryPolicy | None = None,
    ) -> ExecutionResult:
        """Affinity mode: the shard owning ``key`` runs the whole job, so
        its warm plan cache keeps getting the circuits it already compiled.
        Cold keys whose affine shard is busy are stolen by the least-loaded
        shard and stay affine to it (see :meth:`_owner_for_key`)."""
        return self.execute(
            circuit,
            shots,
            n_qubits=n_qubits,
            seed=seed,
            params=params,
            optimize=optimize,
            batch_diagonals=batch_diagonals,
            chunk_threshold=chunk_threshold,
            precision=precision,
            shard=self._owner_for_key(key),
            retry_policy=retry_policy,
        )

    def _sweep_dispatch(
        self,
        circuit: CompositeInstruction,
        bindings: Sequence,
        shots: int,
        *,
        n_qubits: int | None,
        seed: int | None,
        optimize: bool,
        batch_diagonals: bool,
        chunk_threshold: int | None,
        precision: str,
        observable,
        retry_policy: RetryPolicy | None,
    ) -> tuple[list, int, int, bool]:
        """Fan a binding list out across the shards in contiguous ranges.

        The circuit ships once per shard (content hash + compile-once
        worker cache); each shard evaluates its range with in-place
        rebinds.  Returns the flattened per-binding ``(value, seconds)``
        list in binding order plus ``(depth, n_gates, all_cached)``.
        """
        token = active_cancel_token()
        ctl: dict | None = None
        if token is not None:
            token.check()
            if token.deadline is not None:
                ctl = {"deadline": token.deadline}
        payload, digest = _circuit_payload(circuit)
        width = _resolve_width(circuit, n_qubits)
        bindings = list(bindings)
        if not bindings:
            return [], 0, 0, True
        n_chunks = max(1, min(self.processes, len(bindings)))
        base, extra = divmod(len(bindings), n_chunks)
        ranges: list[list] = []
        cursor = 0
        for i in range(n_chunks):
            size = base + (1 if i < extra else 0)
            ranges.append(bindings[cursor : cursor + size])
            cursor += size
        # Start the round-robin at the content-affine shard so a
        # single-range sweep lands exactly where key affinity would put it.
        first = self.shard_for(digest)
        indices = [(first + i) % self.processes for i in range(n_chunks)]

        tracer = get_tracer()
        ctx = tracer.current_context()
        profiler = active_profiler()
        obs: dict | None = None
        if ctx is not None or profiler is not None:
            obs = {
                "trace": ctx.to_wire() if ctx is not None else None,
                "profile": profiler is not None,
            }

        if n_chunks == 1:
            outcomes = [
                self._run_on_shard(
                    indices[0],
                    _sweep_chunk,
                    payload, digest, width, optimize, ranges[0], shots, seed,
                    batch_diagonals, chunk_threshold, precision, observable,
                    obs, ctl,
                    policy=retry_policy,
                )
            ]
        else:
            outcomes = self._gather(
                [
                    (
                        index,
                        (
                            payload, digest, width, optimize, chunk, shots, seed,
                            batch_diagonals, chunk_threshold, precision,
                            observable, obs, ctl,
                        ),
                    )
                    for index, chunk in zip(indices, ranges)
                ],
                token,
                fn=_sweep_chunk,
                policy=retry_policy,
            )

        if obs is not None:
            for outcome in outcomes:
                payload_obs = outcome[4]
                if not payload_obs:
                    continue
                spans = payload_obs.get("spans")
                if spans:
                    tracer.ingest(spans)
                profile = payload_obs.get("profile")
                if profiler is not None and profile:
                    profiler.merge_wire(profile)

        flat = [pair for outcome in outcomes for pair in outcome[0]]
        depth, n_gates = outcomes[0][1], outcomes[0][2]
        cached = all(outcome[3] for outcome in outcomes)
        return flat, depth, n_gates, cached

    def execute_sweep(
        self,
        circuit: CompositeInstruction,
        bindings: Sequence[Mapping[str, float] | Sequence[float]],
        shots: int,
        *,
        n_qubits: int | None = None,
        seed: int | None = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
        retry_policy: RetryPolicy | None = None,
    ) -> list[ExecutionResult]:
        """Compile-once sweep fanned across the shards.

        Per-binding counts are bit-identical to pinned independent
        submissions of the pre-bound circuits at the same seed: every
        binding derives its RNG as ``SeedSequence(seed).spawn(1)[0]``
        regardless of which shard's range it lands in, so fan-out width
        and chunk boundaries never change results.
        """
        width = _resolve_width(circuit, n_qubits)
        retries_before = self._retries
        started = time.perf_counter()
        flat, depth, n_gates, cached = self._sweep_dispatch(
            circuit,
            bindings,
            shots,
            n_qubits=n_qubits,
            seed=seed,
            optimize=optimize,
            batch_diagonals=batch_diagonals,
            chunk_threshold=chunk_threshold,
            precision=precision,
            observable=None,
            retry_policy=retry_policy,
        )
        retries = self._retries - retries_before
        return [
            ExecutionResult(
                counts=counts,
                shots=shots,
                n_qubits=width,
                backend=self.backend_name,
                seconds=seconds,
                shards=1,
                plan_cached=cached or index > 0,
                depth=depth,
                n_gates=n_gates,
                retries=retries if index == 0 else 0,
            )
            for index, (counts, seconds) in enumerate(flat)
        ]

    def expectation_sweep(
        self,
        circuit: CompositeInstruction,
        observable,
        bindings: Sequence[Mapping[str, float] | Sequence[float]],
        *,
        n_qubits: int | None = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
        retry_policy: RetryPolicy | None = None,
    ) -> list[float]:
        """Exact per-binding expectations fanned across the shards.

        This is the parameter-shift gradient's execution primitive: 2·P
        shifted bindings ship as one sweep and evaluate concurrently on
        every shard.
        """
        flat, _, _, _ = self._sweep_dispatch(
            circuit,
            bindings,
            0,
            n_qubits=n_qubits,
            seed=None,
            optimize=optimize,
            batch_diagonals=batch_diagonals,
            chunk_threshold=chunk_threshold,
            precision=precision,
            observable=observable,
            retry_policy=retry_policy,
        )
        return [value for value, _seconds in flat]

    def expectation(
        self,
        circuit: CompositeInstruction,
        observable,
        *,
        n_qubits: int | None = None,
        params: Params = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> float:
        payload, digest = _circuit_payload(circuit)
        width = _resolve_width(circuit, n_qubits)
        shard = self.shard_for(digest)
        return self._run_on_shard(
            shard, _chunk_expectation, payload, digest, width, optimize, params,
            observable, batch_diagonals, chunk_threshold, precision,
        )

    # -- introspection ------------------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def total_retries(self) -> int:
        """Chunks re-executed after worker deaths over this executor's life."""
        with self._lock:
            return self._retries

    @property
    def total_steals(self) -> int:
        """Cold-key jobs routed away from their busy hash-affine shard."""
        with self._lock:
            return self._steals

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor(name={self.name!r}, processes={self.processes}, "
            f"closed={self.closed})"
        )


# ---------------------------------------------------------------------------
# Process-wide shared executors (accelerator `processes` option)
# ---------------------------------------------------------------------------

_shared_executors: dict[int, ShardedExecutor] = {}
_shared_lock = threading.Lock()


def get_sharded_executor(processes: int) -> ShardedExecutor:
    """The process-wide executor with ``processes`` shards (created once).

    Shared so that every accelerator clone asking for the same shard count
    reuses one set of worker processes — and their warm plan caches —
    instead of forking per clone.
    """
    if processes < 1:
        raise ExecutionError(f"processes must be at least 1, got {processes}")
    with _shared_lock:
        executor = _shared_executors.get(processes)
        if executor is None or executor.closed:
            executor = ShardedExecutor(processes, name=f"shared-{processes}")
            _shared_executors[processes] = executor
        return executor


def shutdown_sharded_executors(wait: bool = True) -> None:
    """Close every shared executor (tests, interpreter exit)."""
    with _shared_lock:
        executors = list(_shared_executors.values())
        _shared_executors.clear()
    for executor in executors:
        try:
            executor.close(wait=wait)
        except Exception:
            pass


atexit.register(shutdown_sharded_executors, False)
