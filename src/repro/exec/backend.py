"""The canonical execution seam: one protocol, every execution path.

Before this layer existed the repo had five slightly different ways of
turning a circuit into counts — ``StateVector.run``, the accelerator
subclasses, :class:`~repro.simulator.parallel_engine.ParallelSimulationEngine`,
``core/executor.py`` and the broker's dispatcher — each re-implementing
plan lookup, seeding and sampling.  :class:`ExecutionBackend` is the single
protocol they now share:

* :meth:`ExecutionBackend.compile` lowers a circuit into a reusable
  :class:`~repro.simulator.execution_plan.ExecutionPlan` (backends that do
  not precompile, like the density path, return ``None``);
* :meth:`ExecutionBackend.execute` turns ``(circuit, params, shots)`` into
  an :class:`~repro.exec.result.ExecutionResult`;
* :meth:`ExecutionBackend.expectation` evaluates an exact observable
  expectation against the same compiled artefacts.

:class:`LocalBackend` is the in-process implementation (and the default
everywhere): shared plan cache + per-instance
:class:`ParallelSimulationEngine`.  :class:`DensityBackend` wraps the
density-matrix simulator behind the same protocol so the noisy accelerator
is an adapter like the others.  The process-sharded implementation lives in
:mod:`repro.exec.sharded`.
"""

from __future__ import annotations

import abc
import time
from typing import Mapping, Sequence

import numpy as np

from ..cancellation import active_cancel_token
from ..exceptions import ExecutionError
from ..ir.composite import CompositeInstruction
from ..obs.trace import get_tracer
from ..testing import faults
from ..simulator.execution_plan import DEFAULT_PRECISION
from ..simulator.parallel_engine import ParallelSimulationEngine
from ..simulator.plan_cache import PlanCache, get_plan_cache
from ..simulator.statevector import StateVector
from .result import ExecutionResult

__all__ = ["ExecutionBackend", "LocalBackend", "DensityBackend"]

#: Accepted parameter shapes for parametric execution.
Params = Mapping[str, float] | Sequence[float] | None


class ExecutionBackend(abc.ABC):
    """Protocol shared by every execution path (local, sharded, density)."""

    backend_name = "abstract"

    def compile(
        self,
        circuit: CompositeInstruction,
        n_qubits: int | None = None,
        *,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ):
        """Lower ``circuit`` into a reusable plan; ``None`` when the backend
        executes directly (density-matrix evolution has no plan form).

        ``batch_diagonals`` collapses adjacent diagonal runs at compile
        time; ``chunk_threshold`` sets the minimum state size for
        chunk-parallel replay (``None`` = the compiled default).  Both are
        performance knobs — they never change measurement distributions.
        ``precision`` is NOT a performance knob: ``"single"`` compiles and
        replays in complex64 (half the memory traffic, ~1e-4 amplitude
        deviation), so it participates in plan and job identity.
        """
        return None

    @abc.abstractmethod
    def execute(
        self,
        circuit: CompositeInstruction,
        shots: int,
        *,
        n_qubits: int | None = None,
        seed: int | None = None,
        params: Params = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> ExecutionResult:
        """Run ``circuit`` for ``shots`` and return the reduced result."""

    def expectation(
        self,
        circuit: CompositeInstruction,
        observable,
        *,
        n_qubits: int | None = None,
        params: Params = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> float:
        """Exact ``<circuit|observable|circuit>`` (no sampling noise)."""
        raise ExecutionError(
            f"backend {self.backend_name!r} does not support exact expectations"
        )

    def execute_sweep(
        self,
        circuit: CompositeInstruction,
        bindings: Sequence[Mapping[str, float] | Sequence[float]],
        shots: int,
        *,
        n_qubits: int | None = None,
        seed: int | None = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> list[ExecutionResult]:
        """Run one parametric ``circuit`` once per binding (sweep).

        The default implementation loops :meth:`execute` — correct for any
        backend (each binding is executed exactly as an equivalent
        independent submission would be, same seed derivation included) but
        unamortised.  Plan-based backends override this to compile once and
        fan the bindings out over the rebind path.
        """
        return [
            self.execute(
                circuit,
                shots,
                n_qubits=n_qubits,
                seed=seed,
                params=binding,
                optimize=optimize,
                batch_diagonals=batch_diagonals,
                chunk_threshold=chunk_threshold,
                precision=precision,
            )
            for binding in bindings
        ]

    def expectation_sweep(
        self,
        circuit: CompositeInstruction,
        observable,
        bindings: Sequence[Mapping[str, float] | Sequence[float]],
        *,
        n_qubits: int | None = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> list[float]:
        """Exact expectation of ``observable`` per binding.

        Default implementation loops :meth:`expectation`; plan-based
        backends override to compile once and rebind in place.
        """
        return [
            self.expectation(
                circuit,
                observable,
                n_qubits=n_qubits,
                params=binding,
                optimize=optimize,
                batch_diagonals=batch_diagonals,
                chunk_threshold=chunk_threshold,
                precision=precision,
            )
            for binding in bindings
        ]

    def close(self, wait: bool = True) -> None:
        """Release worker pools/processes; safe to call more than once."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _resolve_width(circuit: CompositeInstruction, n_qubits: int | None) -> int:
    return max(circuit.n_qubits, 1 if n_qubits is None else int(n_qubits), 1)


class LocalBackend(ExecutionBackend):
    """In-process execution: shared plan cache + a worker-thread engine.

    This is the seam the single-process paths sit on: the qpp accelerator,
    ``core/executor.py`` and the broker's default dispatcher all reduce to
    ``LocalBackend.execute``.  Fixed-seed results are the reference the
    sharded backend must reproduce bit for bit.  With ``shm_pool`` set the
    backend stops being strictly in-process: super-threshold plan replays
    run across the pool's shared-memory worker processes (bitwise
    identical, so the reference property is untouched).
    """

    backend_name = "local"

    def __init__(
        self,
        engine: ParallelSimulationEngine | None = None,
        plan_cache: PlanCache | None = None,
        shm_pool=None,
        adaptive: bool = False,
        cost_model=None,
    ):
        self._engine = engine if engine is not None else ParallelSimulationEngine()
        self._owns_engine = engine is None
        self._plan_cache = plan_cache
        #: Optional :class:`~repro.exec.shm.SharedStatePool`: super-threshold
        #: plan replays run across its worker *processes* (the ≥20-qubit
        #: lane) instead of the engine's threads.  Not owned — shared pools
        #: outlive any one backend, so ``close()`` leaves it running.
        self.shm_pool = shm_pool
        #: When True, each plan replays on the lane the cost model predicts
        #: cheapest (serial / threads / shm) instead of the fixed
        #: shm-then-threads preference.  Never changes results: every lane
        #: is bit-identical at a given precision.
        self.adaptive = bool(adaptive)
        self._cost_model = cost_model

    @property
    def engine(self) -> ParallelSimulationEngine:
        return self._engine

    def _cache(self) -> PlanCache:
        return self._plan_cache if self._plan_cache is not None else get_plan_cache()

    def cost_model(self):
        """The lane-selection cost model (calibrated for this host if a
        profile is persisted, the hand-set defaults otherwise)."""
        if self._cost_model is None:
            from ..calibrate import load_calibrated_model

            self._cost_model = load_calibrated_model()
        return self._cost_model

    def _replay_pool(self, plan, shots: int = 0):
        """The chunk pool this plan replays on (``None`` = serial replay).

        Fixed routing prefers the shm lane when it applies, the thread
        engine otherwise; ``adaptive=True`` instead asks the (calibrated)
        cost model to rank {serial, threads, shm} for *this* plan and shot
        count and routes to the predicted-cheapest lane.
        """
        pool, _, _ = self._route_replay(plan, shots)
        return pool

    def _route_replay(self, plan, shots: int = 0):
        """Route a replay: ``(pool, lane_name, predicted_units)``.

        ``predicted_units`` is the cost model's wall-clock estimate for the
        chosen lane when adaptive selection ran (so the caller can feed the
        measured replay time back via ``observe_lane``), ``None`` under
        fixed routing.
        """
        shm = self.shm_pool
        shm_ok = shm is not None and shm.can_replay(plan)
        if not self.adaptive:
            if shm_ok:
                return shm, "shm", None
            return self._engine, "threads", None
        try:
            threads = self._engine.effective_threads()
        except ExecutionError:
            threads = 1
        shm_workers = shm.effective_threads() if shm_ok else 0
        model = self.cost_model()
        lane, costs = model.choose_lane_with_costs(
            plan, shots, threads=threads, shm_workers=shm_workers
        )

        def raw_units(name: str) -> float | None:
            # lane_costs returns EWMA-scaled values once observations exist;
            # observe_lane needs the *unscaled* units or the correction
            # would compound against itself, so divide the scale back out.
            value = costs.get(name)
            if value is None or not model.lane_seconds_per_unit:
                return value
            return value / model._lane_scale(name)

        if lane == "shm" and shm_ok:
            return shm, lane, raw_units(lane)
        if lane == "threads" and threads > 1:
            return self._engine, lane, raw_units(lane)
        return None, "serial", raw_units("serial")

    # -- protocol -----------------------------------------------------------------
    def compile(
        self,
        circuit: CompositeInstruction,
        n_qubits: int | None = None,
        *,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ):
        plan, _ = self._cache().lookup_or_compile(
            circuit,
            _resolve_width(circuit, n_qubits),
            optimize=optimize,
            batch_diagonals=batch_diagonals,
            chunk_threshold=chunk_threshold,
            precision=precision,
        )
        return plan

    def execute(
        self,
        circuit: CompositeInstruction,
        shots: int,
        *,
        n_qubits: int | None = None,
        seed: int | None = None,
        params: Params = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> ExecutionResult:
        width = _resolve_width(circuit, n_qubits)
        tracer = get_tracer()
        token = active_cancel_token()
        if token is not None:
            # Pre-compile boundary: a job already past its deadline (or
            # cancelled while queued) must not pay for compilation.
            token.check()
        faults.fire("local.replay")
        # The timer covers the cache lookup so a plan-cache miss reports its
        # compilation cost in `seconds` (matching the historical accelerator
        # path); cached replays pay only the lookup.
        started = time.perf_counter()
        with tracer.span("compile", attrs={"circuit": circuit.name}) as compile_span:
            plan, cached = self._cache().lookup_or_compile(
                circuit,
                width,
                optimize=optimize,
                batch_diagonals=batch_diagonals,
                chunk_threshold=chunk_threshold,
                precision=precision,
            )
            compile_span.set_attribute("plan_cached", cached)
        if plan.is_parametric:
            if params is None:
                raise ExecutionError(
                    f"circuit {circuit.name!r} has unbound parameters; provide params"
                )
            plan = plan.bind(params)
        if plan.has_reset:
            with tracer.span("replay", attrs={"mode": "trajectories", "shots": shots}):
                counts = self._engine.run_trajectories(
                    width, circuit, shots, seed=seed, plan=plan
                )
        else:
            state = StateVector(width, dtype=plan.dtype)
            # The chunk pool — shm processes for large states when
            # configured, the engine's threads otherwise, or None for a
            # serial replay when adaptive selection predicts chunking
            # cannot pay — parallelises the single large-state replay
            # (bitwise identical to serial); sampling then draws shots on
            # the engine's threads either way.
            pool, lane, predicted_units = self._route_replay(plan, shots)
            replay_started = time.perf_counter()
            with tracer.span(
                "replay",
                attrs={
                    "n_qubits": width,
                    "lane": type(pool).__name__ if pool is not None else "serial",
                },
            ):
                state.apply_plan(plan, pool=pool)
            if predicted_units is not None:
                # Online calibration refinement: fold the measured replay
                # time for the lane the model chose back into its EWMA so
                # subsequent selections reflect this host's served jobs.
                self.cost_model().observe_lane(
                    lane, predicted_units, time.perf_counter() - replay_started
                )
            measured = plan.measured_qubits or tuple(range(width))
            with tracer.span("sample", attrs={"shots": shots}):
                counts = self._engine.sample_parallel(
                    state, shots, measured, seed=seed
                )
        elapsed = time.perf_counter() - started
        return ExecutionResult(
            counts=counts,
            shots=shots,
            n_qubits=width,
            backend=self.backend_name,
            seconds=elapsed,
            shards=1,
            plan_cached=cached,
            depth=plan.depth,
            n_gates=plan.n_gates,
        )

    def expectation(
        self,
        circuit: CompositeInstruction,
        observable,
        *,
        n_qubits: int | None = None,
        params: Params = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> float:
        width = _resolve_width(circuit, n_qubits)
        plan, _ = self._cache().lookup_or_compile(
            circuit,
            width,
            optimize=optimize,
            batch_diagonals=batch_diagonals,
            chunk_threshold=chunk_threshold,
            precision=precision,
        )
        if plan.is_parametric:
            if params is None:
                raise ExecutionError(
                    f"circuit {circuit.name!r} has unbound parameters; provide params"
                )
            plan = plan.bind(params)
        if plan.has_reset:
            raise ExecutionError(
                "exact expectations are undefined for circuits with mid-circuit resets"
            )
        state = StateVector(width, dtype=plan.dtype)
        state.apply_plan(plan, pool=self._replay_pool(plan))
        return float(state.expectation(observable))

    def execute_sweep(
        self,
        circuit: CompositeInstruction,
        bindings: Sequence[Mapping[str, float] | Sequence[float]],
        shots: int,
        *,
        n_qubits: int | None = None,
        seed: int | None = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> list[ExecutionResult]:
        """Compile-once sweep: one plan lookup, N in-place rebinds.

        Each binding replays and samples exactly as an independent
        :meth:`execute` of the pre-bound circuit would (same ``seed`` to the
        sampler per binding), so per-binding counts are bit-identical to
        the equivalent independent jobs — only the compile and dispatch
        costs are amortised.
        """
        width = _resolve_width(circuit, n_qubits)
        tracer = get_tracer()
        token = active_cancel_token()
        if token is not None:
            token.check()
        faults.fire("local.replay")
        with tracer.span("compile", attrs={"circuit": circuit.name}) as compile_span:
            plan, cached = self._cache().lookup_or_compile(
                circuit,
                width,
                optimize=optimize,
                batch_diagonals=batch_diagonals,
                chunk_threshold=chunk_threshold,
                precision=precision,
            )
            compile_span.set_attribute("plan_cached", cached)
        if not plan.is_parametric or plan.has_reset:
            # Nothing to rebind (or the trajectory path applies): the
            # protocol's per-binding loop is already the right execution.
            return super().execute_sweep(
                circuit,
                bindings,
                shots,
                n_qubits=n_qubits,
                seed=seed,
                optimize=optimize,
                batch_diagonals=batch_diagonals,
                chunk_threshold=chunk_threshold,
                precision=precision,
            )
        results: list[ExecutionResult] = []
        for index, binding in enumerate(bindings):
            if token is not None:
                # Per-binding boundary: a cancelled/expired sweep stops
                # between evaluations, not after the whole fan-out.
                token.check()
            started = time.perf_counter()
            bound = plan.bind(binding)
            state = StateVector(width, dtype=bound.dtype)
            pool, lane, predicted_units = self._route_replay(bound, shots)
            replay_started = time.perf_counter()
            with tracer.span(
                "replay",
                attrs={
                    "n_qubits": width,
                    "binding": index,
                    "lane": type(pool).__name__ if pool is not None else "serial",
                },
            ):
                state.apply_plan(bound, pool=pool)
            if predicted_units is not None:
                self.cost_model().observe_lane(
                    lane, predicted_units, time.perf_counter() - replay_started
                )
            measured = bound.measured_qubits or tuple(range(width))
            with tracer.span("sample", attrs={"shots": shots}):
                counts = self._engine.sample_parallel(state, shots, measured, seed=seed)
            results.append(
                ExecutionResult(
                    counts=counts,
                    shots=shots,
                    n_qubits=width,
                    backend=self.backend_name,
                    seconds=time.perf_counter() - started,
                    shards=1,
                    plan_cached=cached or index > 0,
                    depth=bound.depth,
                    n_gates=bound.n_gates,
                )
            )
        return results

    def expectation_sweep(
        self,
        circuit: CompositeInstruction,
        observable,
        bindings: Sequence[Mapping[str, float] | Sequence[float]],
        *,
        n_qubits: int | None = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> list[float]:
        width = _resolve_width(circuit, n_qubits)
        token = active_cancel_token()
        if token is not None:
            token.check()
        plan, _ = self._cache().lookup_or_compile(
            circuit,
            width,
            optimize=optimize,
            batch_diagonals=batch_diagonals,
            chunk_threshold=chunk_threshold,
            precision=precision,
        )
        if plan.has_reset:
            raise ExecutionError(
                "exact expectations are undefined for circuits with mid-circuit resets"
            )
        if not plan.is_parametric:
            return super().expectation_sweep(
                circuit,
                observable,
                bindings,
                n_qubits=n_qubits,
                optimize=optimize,
                batch_diagonals=batch_diagonals,
                chunk_threshold=chunk_threshold,
                precision=precision,
            )
        values: list[float] = []
        for binding in bindings:
            if token is not None:
                token.check()
            bound = plan.bind(binding)
            state = StateVector(width, dtype=bound.dtype)
            state.apply_plan(bound, pool=self._replay_pool(bound))
            values.append(float(state.expectation(observable)))
        return values

    def close(self, wait: bool = True) -> None:
        if self._owns_engine:
            self._engine.close(wait=wait)

    def __repr__(self) -> str:
        return f"LocalBackend(engine={self._engine!r})"


class DensityBackend(ExecutionBackend):
    """Density-matrix execution behind the common protocol.

    No plan form exists for (noisy) density evolution, so :meth:`compile`
    returns ``None`` and :meth:`execute` evolves the matrix directly; the
    noisy accelerator is a thin adapter over this class.
    """

    backend_name = "density"

    def __init__(self, noise_model=None):
        self.noise_model = noise_model

    def execute(
        self,
        circuit: CompositeInstruction,
        shots: int,
        *,
        n_qubits: int | None = None,
        seed: int | None = None,
        params: Params = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> ExecutionResult:
        # batch_diagonals / chunk_threshold are plan-replay knobs; density
        # evolution has no plan form, so they are accepted (protocol
        # uniformity) and ignored.  precision is semantic: "single" evolves
        # the matrix in complex64 (half the footprint, diagonal-probability
        # error ≤ 1e-4 at the guarded sizes — Kraus sums accumulate error
        # linearly in depth, so the bound is looser than the statevector
        # lane's) and participates in the job identity like every other
        # semantic option.
        from ..simulator.density import DensityMatrix
        from ..simulator.execution_plan import resolve_precision

        tier = resolve_precision(precision)
        dtype = np.complex128 if tier == "double" else np.complex64
        token = active_cancel_token()
        if token is not None:
            token.check()
        faults.fire("density.execute")
        if params is not None:
            circuit = circuit.bind(params)
        elif circuit.is_parameterized:
            raise ExecutionError(
                f"circuit {circuit.name!r} has unbound parameters; provide params"
            )
        width = _resolve_width(circuit, n_qubits)
        rng = np.random.default_rng(seed)
        started = time.perf_counter()
        rho = DensityMatrix(width, dtype=dtype)
        rho.apply_circuit(circuit, noise_model=self.noise_model)
        if token is not None:
            # Post-evolution boundary: sampling can be a large share of a
            # noisy job, so honour cancellation between the two phases.
            token.check()
        measured = circuit.measured_qubits() or tuple(range(width))
        counts = rho.sample(shots, measured, rng)
        elapsed = time.perf_counter() - started
        return ExecutionResult(
            counts=counts,
            shots=shots,
            n_qubits=width,
            backend=self.backend_name,
            seconds=elapsed,
            shards=1,
            depth=circuit.depth(),
            n_gates=circuit.n_gates,
            extra={"purity": rho.purity(), "precision": tier},
        )

    def __repr__(self) -> str:
        return f"DensityBackend(noise_model={self.noise_model!r})"
