"""Retry policies: bounded attempts, exponential backoff, typed classification.

Before this module the stack had exactly one recovery behaviour — the
sharded executor's hard-coded "respawn the pool and re-run the chunk once"
— and the shm lane had none.  :class:`RetryPolicy` replaces that with an
explicit object the caller owns: how many attempts, how long to back off
between them (exponential with deterministic jitter), and *which* failures
are worth retrying at all.

Classification is the load-bearing part.  Infrastructure failures (a
worker process SIGKILLed, a broken pool, an OS-level pipe error, memory
pressure) are transient-by-assumption: the respawned worker set is a fresh
environment and the replay is deterministic, so re-running is safe and
usually succeeds.  Job-shaped failures (a circuit that does not compile, a
cancelled job, a passed deadline, an admission rejection) are terminal:
retrying re-runs the same deterministic failure, so the policy refuses to
burn attempts on them no matter the budget.
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..exceptions import (
    AdmissionRejected,
    CompilationError,
    DeadlineExceeded,
    IRError,
    JobCancelled,
    RetryExhausted,
    WorkerCrashed,
)

__all__ = [
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY",
    "is_retryable",
    "is_infrastructure_failure",
]

#: Failure types that indicate the *environment* broke, not the job: a new
#: attempt on a respawned worker set is expected to succeed.
_RETRYABLE_TYPES = (BrokenProcessPool, EOFError, ConnectionError, OSError, WorkerCrashed)

#: Failure types that are properties of the job itself (or of an explicit
#: lifecycle decision) — deterministic, so retrying cannot help.  Checked
#: before the retryable set: ``TimeoutError`` is an ``OSError`` subclass.
_TERMINAL_TYPES = (
    JobCancelled,
    DeadlineExceeded,
    AdmissionRejected,
    CompilationError,
    IRError,
    TimeoutError,
)


def is_retryable(error: BaseException) -> bool:
    """Whether a fresh attempt could plausibly succeed after ``error``."""
    if isinstance(error, _TERMINAL_TYPES):
        return False
    return isinstance(error, _RETRYABLE_TYPES)


def is_infrastructure_failure(error: BaseException) -> bool:
    """Whether ``error`` signals lane ill-health (circuit-breaker food).

    Broader than :func:`is_retryable`: a :class:`RetryExhausted` is not
    worth retrying again, but it absolutely counts against the lane that
    produced it, as does memory pressure.  Job-lifecycle and compile errors
    never count — a breaker must not trip because clients submit bad
    circuits or tight deadlines.
    """
    if isinstance(error, _TERMINAL_TYPES):
        return False
    return isinstance(error, _RETRYABLE_TYPES + (RetryExhausted, MemoryError))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff and deterministic jitter.

    ``max_attempts`` counts *executions*, not retries: ``max_attempts=3``
    means one initial try plus up to two retries; ``max_attempts=1`` means
    never retry.  Delays grow as ``base_delay * multiplier**retry`` capped
    at ``max_delay``; ``jitter`` spreads each delay by a deterministic
    per-attempt factor in ``[1-jitter, 1+jitter]`` so a fleet of callers
    retrying the same incident does not stampede in lockstep (the factor
    derives from the attempt index, keeping tests reproducible).
    """

    max_attempts: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    # -- decisions -------------------------------------------------------------
    def is_retryable(self, error: BaseException) -> bool:
        return is_retryable(error)

    def should_retry(self, attempt: int, error: BaseException) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be followed by
        another, given it failed with ``error``."""
        return attempt < self.max_attempts and self.is_retryable(error)

    def delay_for(self, retry: int) -> float:
        """Backoff before retry number ``retry`` (1-based)."""
        if self.base_delay == 0.0:
            return 0.0
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** (retry - 1)
        )
        if self.jitter:
            # Deterministic spread: a cheap hash of the retry index mapped
            # into [1-jitter, 1+jitter].  Reproducible under test, still
            # de-synchronising across distinct retry sequences at runtime.
            spread = ((retry * 2654435761) % 1000) / 1000.0
            delay *= 1.0 - self.jitter + 2.0 * self.jitter * spread
        return delay

    def sleep(self, retry: int, token=None) -> None:
        """Back off before retry ``retry``, honouring an optional token.

        Sleeps in short slices so a cancellation or deadline trips the
        typed error promptly instead of after the full backoff.
        """
        remaining = self.delay_for(retry)
        if token is None:
            if remaining > 0:
                time.sleep(remaining)
            return
        token.check()
        while remaining > 0:
            slice_ = min(remaining, 0.05)
            time.sleep(slice_)
            remaining -= slice_
            token.check()

    def exhausted(
        self, what: str, attempts: int, last_error: BaseException
    ) -> RetryExhausted:
        """The terminal error after ``attempts`` failed executions."""
        error = RetryExhausted(
            f"{what} failed {attempts} time(s); retry budget "
            f"({self.max_attempts} attempt(s)) exhausted: {last_error}",
            attempts=attempts,
        )
        error.__cause__ = last_error
        return error


#: The stack-wide default: one retry with a short first backoff — the
#: behaviour the sharded executor has always had, now in policy form.
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.5)

#: Never retry (the shm pool's historical contract: fail fast and typed).
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0)
