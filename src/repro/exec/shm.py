"""Shared-memory process-parallel replay of one large state.

The thread lane (PR 4's chunk-parallel replay) splits every kernel across
a :class:`~repro.simulator.parallel_engine.ParallelSimulationEngine`, but
in CPython the per-step Python dispatch still serialises behind the GIL
and every chunk fights for one process's memory bandwidth.  For the
paper's strong-scaling regime — one ≥20-qubit state, every core — this
module provides the process-grade twin:

* :class:`SharedStatePool` owns ``processes`` persistent worker processes
  plus two ``multiprocessing.shared_memory`` amplitude buffers (state +
  ping-pong scratch), mapped as numpy views in the parent *and* in every
  worker — the state is evolved cooperatively with **zero copies** of
  amplitude data between processes.
* The plan-replay driver ships each job as *(canonical circuit JSON,
  content hash, compile options, binding)*; every worker compiles a
  bitwise-identical plan into its own bounded cache (compile once per
  worker, replay forever) and rebuilds the same deterministic chunk
  decomposition PR 4 built for threads
  (:meth:`~repro.simulator.execution_plan.ExecutionPlan.chunk_program`).
  Worker ``i`` then executes task slice ``i::processes`` of every step,
  with a **barrier per step** (dense steps barrier per phase: gather /
  exact serial matmul / scatter), so replay stays **bitwise identical**
  to serial replay.
* Workers are monitored, not trusted: a worker that dies mid-step
  (OOM-killed, ``SIGKILL``) breaks the step barrier from the parent, the
  whole worker set is respawned, and the replay fails with a clean
  :class:`~repro.exceptions.ExecutionError` instead of a hang.  Segments
  are unlinked by ``close()``, by a finalizer, and by an atexit sweep —
  no ``/dev/shm`` litter on any path.

The pool implements the same :class:`~repro.simulator.execution_plan.ChunkPool`
protocol as the thread engine, so ``ExecutionPlan.execute(state, pool=...)``,
``StateVector.run/apply_plan``, :class:`~repro.exec.backend.LocalBackend`
and the sharded workers can swap lanes without touching kernel code.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
import time
import traceback
import weakref
from collections import OrderedDict
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from ..cancellation import active_cancel_token
from ..exceptions import ExecutionError, WorkerCrashed
from ..obs.profiler import ReplayProfiler, active_profiler
from ..obs.trace import TraceContext, get_tracer
from ..testing import faults
from .retry import is_infrastructure_failure
from ..simulator.execution_plan import (
    KERNEL_DENSE,
    KERNEL_GATHER,
    KERNEL_RESET,
    ExecutionPlan,
    _ChunkDense,
    compile_parametric_plan,
    compile_plan,
)

__all__ = [
    "SharedStatePool",
    "get_shared_state_pool",
    "shm_health",
    "shutdown_shared_state_pools",
    "SEGMENT_PREFIX",
]

#: Every segment this module creates is named ``repro-shm-<pid>-<token>-…``
#: so leak checks (tests, CI) can assert ``/dev/shm`` holds none afterwards.
SEGMENT_PREFIX = "repro-shm"

#: Seconds between liveness checks while the parent waits for worker acks.
_POLL_INTERVAL = 0.05


# ---------------------------------------------------------------------------
# Worker-side code (runs inside pool worker processes; module level so it is
# picklable by reference under the spawn/forkserver start methods)
# ---------------------------------------------------------------------------

#: Per-process plan cache: (content hash, width, compile options) -> plan.
_POOL_WORKER_PLANS: "OrderedDict[tuple, object]" = OrderedDict()
_POOL_WORKER_PLAN_CAPACITY = 64


def _attach_segment(name: str) -> SharedMemory:
    """Attach to a parent-owned segment without confusing the tracker.

    Pool workers are children of the segment-owning parent, so they share
    its resource-tracker process: a worker's attach re-registers the same
    name into the tracker's (set-based) cache — idempotent — and the
    parent's ``unlink`` unregisters it exactly once.  Workers must
    therefore *not* unregister on their own (that would strip the parent's
    registration and make the later unlink complain).  Python 3.13+ skips
    the redundant worker-side registration entirely via ``track=False``.
    """
    try:
        return SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13
        return SharedMemory(name=name)


def _worker_plan_for_job(job: dict):
    """Compile-once lookup inside a pool worker (mirrors the shard workers).

    The worker compiles from the shipped canonical JSON with the *same*
    compile options the parent used, so its plan — and therefore its chunk
    decomposition and its per-chunk arithmetic — is bitwise identical to
    the parent's.  Parametric circuits compile once and rebind per job.
    """
    from ..ir.serialization import circuit_from_json

    options = job["options"]
    precision = options.get("precision", "double")
    key = (
        job["digest"],
        job["width"],
        options["optimize"],
        options["fusion_max_qubits"],
        options["batch_diagonals"],
        options["chunk_threshold"],
        precision,
    )
    plan = _POOL_WORKER_PLANS.get(key)
    if plan is None:
        faults.fire("shm.worker.compile")
        circuit = circuit_from_json(job["payload"])
        compiler = (
            compile_parametric_plan if circuit.is_parameterized else compile_plan
        )
        plan = compiler(
            circuit,
            job["width"],
            optimize=options["optimize"],
            fusion_max_qubits=options["fusion_max_qubits"],
            batch_diagonals=options["batch_diagonals"],
            chunk_threshold=options["chunk_threshold"],
            precision=precision,
        )
        _POOL_WORKER_PLANS[key] = plan
        while len(_POOL_WORKER_PLANS) > _POOL_WORKER_PLAN_CAPACITY:
            _POOL_WORKER_PLANS.popitem(last=False)
    else:
        _POOL_WORKER_PLANS.move_to_end(key)
    if plan.is_parametric:
        plan = plan.bind(job["params"])
    return plan


def _run_step_shm(plan, step, spec, cur, spare, shape, index, workers, barrier,
                  profiler=None):
    """Execute this worker's share of one plan step; returns ``swapped``.

    Every worker walks the identical step/spec sequence, so the ping-pong
    bookkeeping (which buffer currently holds the state) stays in lockstep
    without any communication.  Steps with no chunk spec run serially on
    worker 0 while the others wait at the barrier; dense steps barrier
    between their gather / matmul / scatter phases because each phase
    reads what the previous one wrote.

    With a ``profiler`` the work and the barrier waits are timed
    separately — work seconds land on the step's kernel class, wait
    seconds on the barrier counter — through an instrumented twin of the
    same control flow, so the unprofiled path stays branch-free.
    """
    if profiler is None:
        if spec is None:
            if index == 0:
                plan._apply_step(step, cur, spare, shape, None)
            barrier.wait()
            return step.tag in (KERNEL_DENSE, KERNEL_GATHER)
        if isinstance(spec, _ChunkDense):
            for task in spec.tasks[index::workers]:
                spec.gather_part(task, cur, spare)
            barrier.wait()
            if index == 0:
                spec.matmul(cur, spare)
            barrier.wait()
            for task in spec.tasks[index::workers]:
                spec.scatter_part(task, cur, spare)
            barrier.wait()
            return True
        for task in spec.tasks[index::workers]:
            spec.apply(task, cur, spare, shape)
        barrier.wait()
        return spec.swaps

    perf_counter = time.perf_counter

    def wait():
        t0 = perf_counter()
        barrier.wait()
        profiler.record_barrier(perf_counter() - t0)

    if spec is None:
        if index == 0:
            t0 = perf_counter()
            plan._apply_step(step, cur, spare, shape, None)
            profiler.record_kernel(step.kernel, perf_counter() - t0)
        wait()
        return step.tag in (KERNEL_DENSE, KERNEL_GATHER)
    if isinstance(spec, _ChunkDense):
        t0 = perf_counter()
        for task in spec.tasks[index::workers]:
            spec.gather_part(task, cur, spare)
        work = perf_counter() - t0
        wait()
        if index == 0:
            t0 = perf_counter()
            spec.matmul(cur, spare)
            work += perf_counter() - t0
        wait()
        t0 = perf_counter()
        for task in spec.tasks[index::workers]:
            spec.scatter_part(task, cur, spare)
        work += perf_counter() - t0
        profiler.record_kernel(step.kernel, work)
        wait()
        return True
    t0 = perf_counter()
    for task in spec.tasks[index::workers]:
        spec.apply(task, cur, spare, shape)
    profiler.record_kernel(step.kernel, perf_counter() - t0)
    wait()
    return spec.swaps


def _worker_replay(
    job: dict, segments: dict, index: int, workers: int, barrier
) -> tuple[bool, dict | None, bool]:
    """One worker's full replay; returns
    ``(final_in_state, obs_payload, aborted)``.

    ``final_in_state`` says whether the result landed in the state buffer
    (as opposed to the scratch buffer).  ``obs_payload`` carries this
    worker's observability data home when the parent asked for any —
    spans recorded against the shipped trace context and/or the local
    per-kernel/barrier profile — and is ``None`` otherwise.  ``aborted``
    reports a cooperative cancellation/deadline abort: the step loop was
    abandoned in lockstep, the half-evolved state is the parent's to
    discard, and this worker is still healthy.
    """
    faults.fire("shm.worker.replay")
    plan = _worker_plan_for_job(job)
    dim = 1 << plan.n_qubits
    # Attach (and memoise) the parent's segments; drop stale ones when the
    # parent grew its buffers under new names.
    names = tuple(
        n for n in (job["state"], job["scratch"], job.get("control")) if n
    )
    for stale in [n for n in segments if n not in names]:
        try:
            segments.pop(stale).close()
        except Exception:
            pass
    for name in names:
        if name not in segments:
            segments[name] = _attach_segment(name)
    cur = np.ndarray(dim, dtype=plan.dtype, buffer=segments[job["state"]].buf)
    spare = np.ndarray(dim, dtype=plan.dtype, buffer=segments[job["scratch"]].buf)
    state_buffer = cur
    shape = (2,) * plan.n_qubits
    program = plan.chunk_program(workers)
    # Cancellation guard (only shipped for jobs carrying a cancel token).
    # Byte 0 is the parent's stop request; byte 1 is the per-step verdict.
    # Worker 0 freezes the verdict *before* a barrier and everyone reads it
    # *after*, so all workers abort at the same step — independent clock or
    # flag reads could diverge by one step and deadlock the step barrier.
    guard = None
    deadline = None
    if job.get("control"):
        guard = np.ndarray(
            2, dtype=np.uint8, buffer=segments[job["control"]].buf
        )
        deadline = job.get("deadline")

    obs_req = job.get("obs") or {}
    parent_ctx = TraceContext.from_wire(obs_req.get("trace"))
    want_profile = bool(obs_req.get("profile"))
    # Tracing needs the barrier timings too (for the barrier-wait span), so
    # any observability request instruments the step loop; the profile only
    # ships home when it was asked for.
    profiler = ReplayProfiler() if (want_profile or parent_ctx is not None) else None
    tracer = get_tracer()
    aborted = False
    with tracer.capture() as sink:
        with tracer.span(
            "shm-worker-replay",
            attrs={"worker": index, "pid": os.getpid(), "n_qubits": plan.n_qubits},
            parent=parent_ctx,
        ) as span:
            for step, spec in zip(plan.steps, program):
                if guard is not None:
                    if index == 0 and not guard[1]:
                        if guard[0] or (
                            deadline is not None and time.time() >= deadline
                        ):
                            guard[1] = 1
                    barrier.wait()
                    if guard[1]:
                        aborted = True
                        span.mark_error("replay aborted (cancel/deadline)")
                        break
                faults.fire("shm.worker.step")
                if _run_step_shm(
                    plan, step, spec, cur, spare, shape, index, workers, barrier,
                    profiler,
                ):
                    cur, spare = spare, cur
        if profiler is not None and span.recording:
            snap = profiler.snapshot()
            if snap.barrier_waits:
                # Summary child: total time this worker spent blocked at the
                # step barrier (anchored at the replay start; the individual
                # waits are interleaved with work, not one interval).
                tracer.record(
                    "barrier-wait",
                    parent=span.context(),
                    start_wall=span.start_wall,
                    duration=snap.barrier_wait_seconds,
                    attrs={"waits": snap.barrier_waits, "worker": index},
                )
    obs_out = None
    if obs_req:
        obs_out = {
            "spans": [s.to_dict() for s in sink],
            "profile": profiler.to_wire() if want_profile and profiler else None,
        }
    return cur is state_buffer, obs_out, aborted


def _shm_worker_main(conn, barrier, index: int, workers: int) -> None:
    """Worker process loop: replay commands until ``stop`` or pipe EOF."""
    segments: dict[str, SharedMemory] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            command = message[0]
            if command == "stop":
                break
            if command == "ping":
                conn.send(("ok", os.getpid()))
                continue
            # command == "replay"
            try:
                final_in_state, obs_payload, aborted = _worker_replay(
                    message[1], segments, index, workers, barrier
                )
                if aborted:
                    # Cooperative abort: the worker is healthy and keeps
                    # serving; only this replay was abandoned.
                    conn.send(("aborted", obs_payload))
                else:
                    conn.send(("ok", final_in_state, obs_payload))
            except BaseException:
                # Release siblings blocked at the step barrier, then report;
                # the parent tears the whole worker set down either way.
                try:
                    barrier.abort()
                except Exception:
                    pass
                try:
                    conn.send(("error", traceback.format_exc()))
                except Exception:
                    break
    finally:
        for shm in segments.values():
            try:
                shm.close()
            except Exception:
                pass


# ---------------------------------------------------------------------------
# Parent-side pool
# ---------------------------------------------------------------------------


class _SegmentAllocationError(MemoryError):
    """Shared-segment allocation failed: degrade instead of crashing."""


class _PoolClosedDuringAcquire(Exception):
    """The pool closed while a replay was waiting for a gang."""


class _Gang:
    """One resident state slot: a worker set plus its shared segments.

    Multi-state residency (``SharedStatePool(max_states=K)``) partitions
    the pool's worker budget into K gangs.  Each gang independently
    replays one state at a time through the same barrier-per-step
    protocol, so K sweep evaluations evolve K states in shared memory
    *concurrently* instead of serialising through one state+scratch pair.
    """

    __slots__ = (
        "slot",
        "workers",
        "barrier",
        "state",
        "scratch",
        "control",
        "capacity",
        "reserved",
        "busy",
    )

    def __init__(self, slot: int):
        self.slot = slot
        self.workers: list[tuple] = []  # (process, parent_connection)
        self.barrier = None
        self.state: SharedMemory | None = None
        self.scratch: SharedMemory | None = None
        self.control: SharedMemory | None = None
        self.capacity = 0  # bytes per shared buffer (state / scratch)
        #: Bytes per buffer the in-flight replay will grow this gang to
        #: (set at acquisition, settles to ``capacity`` at release) — the
        #: byte budget must see claimed-but-not-yet-allocated segments.
        self.reserved = 0
        self.busy = False


class SharedStatePool:
    """Persistent worker processes cooperating on shared-memory states.

    The pool implements the :class:`~repro.simulator.execution_plan.ChunkPool`
    protocol: pass it as ``pool=`` to ``ExecutionPlan.execute`` /
    ``StateVector.run`` / ``StateVector.apply_plan``, or hang it on a
    :class:`~repro.exec.backend.LocalBackend` — for states at or above the
    plan's ``chunk_threshold`` the replay runs across the worker processes
    instead of the calling process's threads, bitwise identical either way.

    ``max_states`` (default 1) is the multi-state residency count: the
    worker budget splits into up to that many *gangs*, each with its own
    state+scratch segments, so that many replays proceed concurrently —
    the lane parameter sweeps need to stop serialising through one pair.
    Gang 0 spawns eagerly (warm start); the rest spawn lazily, only when
    every live gang is busy and ``byte_budget`` (when set) still has room
    for another resident state pair.  ``max_states=1`` is exactly the
    historical single-state pool.

    ``mp_context`` selects the multiprocessing start method (``"fork"``,
    ``"spawn"``, ``"forkserver"``; default: the platform default).  Under
    spawn/forkserver each worker preloads the simulator stack while
    starting (the worker target lives in this module, so unpickling it
    imports everything), keeping first-replay latency off the hot path.

    ``fallback`` is an optional :class:`ChunkPool` consulted when this pool
    cannot replay a plan (mid-circuit resets, plans without provenance) —
    a :class:`ParallelSimulationEngine` keeps such replays thread-chunked
    instead of dropping to serial.
    """

    def __init__(
        self,
        processes: int = 2,
        *,
        name: str = "shm-pool",
        mp_context: str | None = None,
        fallback=None,
        breaker=None,
        retry_policy=None,
        max_states: int = 1,
        byte_budget: int | None = None,
    ):
        if processes < 1:
            raise ExecutionError(f"processes must be at least 1, got {processes}")
        if max_states < 1:
            raise ExecutionError(f"max_states must be at least 1, got {max_states}")
        self.processes = int(processes)
        self.name = name
        self.fallback = fallback
        #: Optional :class:`~repro.service.breaker.CircuitBreaker` guarding
        #: this lane: consulted before each replay, fed infrastructure
        #: failures, and — when open — traffic degrades to ``fallback``.
        self.breaker = breaker
        #: Optional :class:`~repro.exec.retry.RetryPolicy`.  ``None`` keeps
        #: the historical contract: a worker death fails the replay
        #: immediately (typed, workers respawned) with no silent re-run.
        self.retry_policy = retry_policy
        self.max_states = int(max_states)
        #: Optional cap (bytes) on total shared-segment residency across
        #: gangs.  Only gates *lazy gang spawning*: when adding another
        #: resident state+scratch pair would exceed it, the replay waits
        #: for a live gang instead.  The broker wires the admission
        #: controller's memory budget here, so K is bounded by the same
        #: accounting that admits jobs (and the complex64 tier's halved
        #: per-state footprint buys proportionally more resident states).
        self.byte_budget = byte_budget
        self._ctx = get_context(mp_context)
        self.start_method = self._ctx.get_start_method()
        self._lock = threading.RLock()
        #: Signals gang state transitions (release, spawn, close) to
        #: replays waiting in :meth:`_acquire_gang`.
        self._gang_cv = threading.Condition(self._lock)
        self._closed = False
        #: Set (without the lock) at the *start* of close(): refuses new
        #: replays and tells _recover not to respawn while shutting down.
        self._closing = False
        if self.processes < 2 or self.max_states <= 1:
            #: Workers per gang.  A replay splits across one gang, so this
            #: is also what ``effective_threads()`` reports.
            self.gang_size = self.processes
            slots = 1
        else:
            self.gang_size = max(2, self.processes // self.max_states)
            slots = max(1, min(self.max_states, self.processes // self.gang_size))
        self._gangs: list[_Gang | None] = [None] * slots
        self._respawns = 0
        self._barrier_aborts = 0
        # Registered for the atexit/finalizer sweep: the segment-name set
        # below tracks every live allocation, and _sweep_at_exit unlinks
        # whatever close() did not get to (including after worker SIGKILLs).
        _ensure_exit_sweep()
        _register_pool(self)
        # Gang 0 spawns eagerly (warm start; constructor errors surface
        # here, matching the historical single-gang behaviour).
        self._gangs[0] = self._spawn_gang(0)

    # -- lifecycle -----------------------------------------------------------
    def _spawn_gang(self, slot: int) -> _Gang:
        gang = _Gang(slot)
        self._spawn_gang_workers(gang)
        return gang

    def _spawn_gang_workers(self, gang: _Gang) -> None:
        # Start the resource tracker *before* forking workers: a worker
        # forked while no tracker exists spawns its own, and a private
        # tracker believes every attached segment leaked when the worker
        # exits.  With the parent's tracker already running, every worker
        # inherits it and register/unregister reconcile exactly once.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        barrier = self._ctx.Barrier(self.gang_size)
        workers = []
        try:
            for index in range(self.gang_size):
                parent_conn, child_conn = self._ctx.Pipe()
                process = self._ctx.Process(
                    target=_shm_worker_main,
                    args=(child_conn, barrier, index, self.gang_size),
                    name=f"{self.name}-g{gang.slot}-worker-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                workers.append((process, parent_conn))
        except BaseException:
            for process, conn in workers:
                try:
                    conn.close()
                    process.terminate()
                except Exception:
                    pass
            raise
        gang.barrier = barrier
        gang.workers = workers

    def _teardown_gang_workers(self, gang: _Gang, graceful: bool) -> None:
        workers, gang.workers = gang.workers, []
        for process, conn in workers:
            if graceful:
                try:
                    conn.send(("stop",))
                except Exception:
                    pass
        for process, conn in workers:
            process.join(timeout=2.0 if graceful else 0.2)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            try:
                conn.close()
            except Exception:
                pass
        gang.barrier = None

    def _release_gang_segments(self, gang: _Gang) -> None:
        for attr in ("state", "scratch", "control"):
            shm = getattr(gang, attr)
            setattr(gang, attr, None)
            if shm is None:
                continue
            _forget_segment(shm.name)
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except Exception:
                pass
        gang.capacity = 0

    def close(self, wait: bool = True) -> None:
        """Stop the workers and unlink the shared segments.

        Idempotent and exception-safe; after close the pool refuses new
        replays (``can_replay`` returns ``False``).

        Safe to call while replays are in flight on other threads: close()
        first flags ``_closing`` and aborts every gang's step barrier.
        Workers blocked at a barrier wake with ``BrokenBarrierError``, each
        in-flight replay fails over its normal recovery path (which sees
        ``_closing`` and skips the respawn) and releases its gang; close()
        waits for the busy gangs to drain before unlinking segments — never
        under a worker still mapping them into a live step.
        """
        self._closing = True
        for gang in [g for g in list(self._gangs) if g is not None]:
            barrier = gang.barrier
            if barrier is not None:
                try:
                    barrier.abort()
                except Exception:
                    pass
        with self._gang_cv:
            if self._closed:
                return
            deadline = time.time() + 5.0
            while any(g is not None and g.busy for g in self._gangs):
                if time.time() >= deadline:
                    break
                self._gang_cv.wait(timeout=_POLL_INTERVAL)
            self._closed = True
            for index, gang in enumerate(self._gangs):
                if gang is None:
                    continue
                self._teardown_gang_workers(gang, graceful=wait)
                self._release_gang_segments(gang)
                self._gangs[index] = None
            self._gang_cv.notify_all()
        _unregister_pool(self)

    def __enter__(self) -> "SharedStatePool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close(wait=False)
        except Exception:
            pass

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def respawns(self) -> int:
        """Times a gang's worker set was rebuilt after a worker death."""
        with self._lock:
            return self._respawns

    @property
    def barrier_aborts(self) -> int:
        """Step barriers aborted while recovering from a worker death."""
        return self._barrier_aborts

    @property
    def resident_bytes(self) -> int:
        """Bytes held in shared amplitude segments across all gangs."""
        with self._lock:
            return sum(g.capacity * 2 for g in self._gangs if g is not None)

    @property
    def resident_states(self) -> int:
        """Gangs currently live (each holds one resident state slot)."""
        with self._lock:
            return sum(1 for g in self._gangs if g is not None)

    def worker_pids(self) -> list[int]:
        """PID of each live worker process, across all gangs."""
        with self._lock:
            return [
                process.pid
                for gang in self._gangs
                if gang is not None
                for process, _ in gang.workers
            ]

    def segment_names(self) -> tuple[str, ...]:
        """Names of the currently allocated shared segments (tests/CI)."""
        with self._lock:
            return tuple(
                shm.name
                for gang in self._gangs
                if gang is not None
                for shm in (gang.state, gang.scratch)
                if shm is not None
            )

    # -- ChunkPool protocol ---------------------------------------------------
    def effective_threads(self) -> int:
        """Worker processes one replay splits across (ChunkPool parity).

        One replay occupies one gang, so this is the gang size — not the
        pool's total worker budget.
        """
        return self.gang_size

    def can_replay(self, plan) -> bool:
        """Whether :meth:`replay_plan` would handle ``plan`` itself.

        Requires gangs of ≥2 workers, an open pool, no mid-circuit resets
        (the global probability reduction + RNG draw cannot span
        processes) and plan provenance (the source circuit to ship; see
        :meth:`ExecutionPlan.replay_descriptor`).
        """
        if self.gang_size < 2 or self._closing or self.closed:
            return False
        if not isinstance(plan, ExecutionPlan):
            return False
        if any(step.tag == KERNEL_RESET for step in plan.steps):
            return False
        return plan.replay_descriptor() is not None

    def replay_plan(
        self, plan: ExecutionPlan, data: np.ndarray, rng=None
    ) -> np.ndarray | None:
        """Replay ``plan`` over ``data`` across the worker processes.

        ``data`` is copied into the shared state buffer once, evolved in
        place by every worker cooperatively, and copied back — the only
        amplitude traffic between processes is through the shared mapping.
        Returns ``data`` (mutated to the final state), or delegates to
        ``fallback``/serial (``None``) when the plan is not replayable
        here.  Raises :class:`WorkerCrashed` when a worker dies mid-step
        (after exhausting ``retry_policy``, if one is set); the worker set
        is respawned so the next replay starts clean.

        With a :attr:`breaker` attached the lane degrades instead of
        cascading: an open breaker (and any segment-allocation failure)
        routes the replay to ``fallback``/serial, and infrastructure
        failures feed the breaker while cancellations/deadlines do not.
        """
        if not self.can_replay(plan):
            fallback = self.fallback
            if fallback is not None:
                return fallback.replay_plan(plan, data, rng=rng)
            return None
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            return self._degraded_replay(plan, data, rng)
        token = active_cancel_token()
        policy = self.retry_policy
        attempts = 0
        while True:
            attempts += 1
            try:
                result = self._replay_shared(plan, data, rng, token)
            except _SegmentAllocationError as exc:
                # Memory pressure: degrade to the thread/serial lane rather
                # than crash the host.  Counts against the lane's health.
                if breaker is not None:
                    breaker.record_failure()
                with get_tracer().span(
                    "shm-alloc-degraded", attrs={"pool": self.name}
                ) as degrade_span:
                    degrade_span.mark_error(str(exc))
                return self._degraded_replay(plan, data, rng)
            except ExecutionError as exc:
                if breaker is not None and is_infrastructure_failure(exc):
                    breaker.record_failure()
                if policy is not None and policy.should_retry(attempts, exc):
                    policy.sleep(attempts, token)
                    continue
                if policy is not None and attempts > 1:
                    raise policy.exhausted(
                        f"shared-memory pool {self.name!r}", attempts, exc
                    )
                raise
            if breaker is not None:
                breaker.record_success()
            return result

    def _degraded_replay(self, plan, data, rng) -> np.ndarray | None:
        """Graceful degradation: fallback pool, else ``None`` (serial)."""
        fallback = self.fallback
        if fallback is not None:
            return fallback.replay_plan(plan, data, rng=rng)
        return None

    def _budget_allows(self, nbytes: int) -> bool:
        """Whether a new gang's state+scratch pair fits ``byte_budget``.

        Called with the lock held.  No budget set → always allowed.
        """
        if self.byte_budget is None:
            return True
        resident = sum(
            max(g.capacity, g.reserved) * 2
            for g in self._gangs
            if g is not None
        )
        return resident + 2 * nbytes <= self.byte_budget

    def _acquire_gang(self, nbytes: int, token) -> _Gang:
        """Claim an idle gang for one replay (spawning lazily if needed).

        Preference order per wakeup: an idle live gang whose segments are
        already big enough (warm — no realloc), any idle live gang, then a
        lazy spawn into an empty slot when the byte budget still has room
        for another resident pair.  Otherwise wait on the condition
        variable until a release/spawn/close changes the picture.  Raises
        through ``token.check()`` while waiting so a cancelled caller does
        not camp on the queue.
        """
        with self._gang_cv:
            while True:
                if self._closed or self._closing:
                    raise _PoolClosedDuringAcquire()
                if token is not None:
                    token.check()
                idle = [
                    g for g in self._gangs if g is not None and not g.busy
                ]
                if idle:
                    warm = [g for g in idle if g.capacity >= nbytes]
                    gang = warm[0] if warm else idle[0]
                    gang.busy = True
                    gang.reserved = max(gang.capacity, nbytes)
                    return gang
                empty = next(
                    (i for i, g in enumerate(self._gangs) if g is None), None
                )
                if empty is not None and self._budget_allows(nbytes):
                    gang = self._spawn_gang(empty)
                    self._gangs[empty] = gang
                    gang.busy = True
                    gang.reserved = nbytes
                    return gang
                self._gang_cv.wait(timeout=_POLL_INTERVAL)

    def _release_gang(self, gang: _Gang) -> None:
        with self._gang_cv:
            gang.busy = False
            gang.reserved = gang.capacity
            self._gang_cv.notify_all()

    def _replay_shared(
        self, plan: ExecutionPlan, data: np.ndarray, rng, token
    ) -> np.ndarray | None:
        circuit, options, params = plan.replay_descriptor()
        from .sharded import _circuit_payload

        payload, digest = _circuit_payload(circuit)
        # Observability request: the ambient trace context (so worker spans
        # stitch under the caller's replay span) and the profile flag.  Both
        # read here, before acquiring a gang, on the caller's thread.
        tracer = get_tracer()
        ctx = tracer.current_context()
        profiler = active_profiler()
        obs_req = None
        if ctx is not None or profiler is not None:
            obs_req = {
                "trace": ctx.to_wire() if ctx is not None else None,
                "profile": profiler is not None,
            }
        replay_started = time.time()
        dim = int(data.size)
        nbytes = dim * data.dtype.itemsize
        try:
            if token is not None:
                token.check()  # don't queue for a gang with a dead token
            try:
                gang = self._acquire_gang(nbytes, token)
            except _PoolClosedDuringAcquire:
                return None
            # The gang is exclusively ours until released: replays on other
            # gangs proceed concurrently (the point of multi-state
            # residency), and pool-level state is only touched under the
            # lock inside the helpers below.
            try:
                if not gang.workers:
                    self._spawn_gang_workers(gang)
                try:
                    faults.fire("shm.alloc")
                    self._ensure_capacity(gang, nbytes)
                    control = (
                        self._ensure_control(gang) if token is not None else None
                    )
                except (MemoryError, OSError) as exc:
                    raise _SegmentAllocationError(
                        f"pool {self.name!r} could not allocate {nbytes * 2} "
                        f"bytes of shared segments: {exc}"
                    ) from exc
                state = np.ndarray(dim, dtype=data.dtype, buffer=gang.state.buf)
                np.copyto(state, data)
                job = {
                    "payload": payload,
                    "digest": digest,
                    "width": plan.n_qubits,
                    "options": options,
                    "params": params,
                    "state": gang.state.name,
                    "scratch": gang.scratch.name,
                    "obs": obs_req,
                }
                if control is not None:
                    np.ndarray(2, dtype=np.uint8, buffer=control.buf)[:] = 0
                    job["control"] = control.name
                    job["deadline"] = token.deadline
                try:
                    for _, conn in gang.workers:
                        conn.send(("replay", job))
                except (BrokenPipeError, OSError) as exc:
                    # A worker died between replays; siblings that did get
                    # the job will block at the first barrier — same
                    # recovery as a mid-step death.
                    self._recover(gang, f"worker pipe rejected the job: {exc}")
                final_in_state, obs_payloads = self._collect_acks(gang, token)
                source = (
                    state
                    if final_in_state
                    else np.ndarray(dim, dtype=data.dtype, buffer=gang.scratch.buf)
                )
                np.copyto(data, source)
            finally:
                self._release_gang(gang)
        except ExecutionError as exc:
            # The dead worker's spans died with it; this parent-side record
            # is what keeps the trace complete through the failure.
            tracer.record(
                "shm-replay",
                parent=ctx,
                start_wall=replay_started,
                duration=max(0.0, time.time() - replay_started),
                attrs={"pool": self.name},
                error=str(exc),
            )
            raise
        # Stitch the workers' observability data after release: spans go
        # into this process's tracer (and any active capture sink, so a
        # shard worker re-ships them another hop), profiles into the
        # installed profiler.
        for obs_payload in obs_payloads:
            if not obs_payload:
                continue
            spans = obs_payload.get("spans")
            if spans:
                tracer.ingest(spans)
            if profiler is not None:
                profiler.merge_wire(obs_payload.get("profile"))
        return data

    # -- internals ------------------------------------------------------------
    def _ensure_capacity(self, gang: _Gang, nbytes: int) -> None:
        """(Re)allocate the gang's state + scratch segments to ``nbytes`` each.

        Grow-only: replaying a smaller state reuses the larger segments
        (workers view only the leading bytes they need).  Byte-based so a
        complex64 state occupies half the shared footprint of a complex128
        one at the same width.
        """
        if gang.state is not None and gang.capacity >= nbytes:
            return
        self._release_gang_segments(gang)
        token = secrets.token_hex(4)
        prefix = f"{SEGMENT_PREFIX}-{os.getpid()}-{token}"
        state = SharedMemory(create=True, size=nbytes, name=f"{prefix}-state")
        _remember_segment(state.name)
        try:
            scratch = SharedMemory(create=True, size=nbytes, name=f"{prefix}-scratch")
        except BaseException:
            _forget_segment(state.name)
            state.close()
            state.unlink()
            raise
        _remember_segment(scratch.name)
        gang.state, gang.scratch, gang.capacity = state, scratch, nbytes

    def _ensure_control(self, gang: _Gang) -> SharedMemory:
        """The (tiny, lazily created) cancellation-control segment.

        Byte 0: parent's stop request.  Byte 1: the per-step verdict worker
        0 freezes before each step barrier.  One segment per gang, reused
        across replays (zeroed per guarded job), unlinked with the others.
        """
        if gang.control is None:
            token = secrets.token_hex(4)
            control = SharedMemory(
                create=True,
                size=16,
                name=f"{SEGMENT_PREFIX}-{os.getpid()}-{token}-control",
            )
            _remember_segment(control.name)
            gang.control = control
        return gang.control

    def _collect_acks(
        self, gang: _Gang, token=None
    ) -> tuple[bool, list[dict | None]]:
        """Wait for every worker's replay ack; recover from worker death.
        Returns ``(final_in_state, per-worker observability payloads)``.

        A worker that died mid-step leaves its siblings blocked at the
        step barrier, so the parent aborts the barrier (releasing them
        with ``BrokenBarrierError``), rebuilds the entire worker set and
        raises.  Acks are awaited with :func:`multiprocessing.connection.wait`
        over *all* pending pipes, and every quiet interval re-checks the
        liveness of *every* pending worker — waiting on workers in order
        would hang forever on a live worker blocked at the barrier while a
        different worker is the one that died.  Called holding the gang.

        With a ``token``, every poll interval also drives cancellation: a
        tripped token writes the stop request into the control segment,
        the workers abort in lockstep at their next step boundary and ack
        ``aborted`` — still alive, no respawn — and the typed lifecycle
        error is raised here.
        """
        from multiprocessing.connection import wait as connection_wait

        finals: list[bool] = []
        observations: list[dict | None] = []
        failure: str | None = None
        aborted = False
        signalled = False
        pending = list(gang.workers)
        while pending and failure is None:
            if token is not None and not signalled:
                if token.cancelled or token.expired():
                    control = gang.control
                    if control is not None:
                        np.ndarray(2, dtype=np.uint8, buffer=control.buf)[0] = 1
                        signalled = True
            ready = connection_wait(
                [conn for _, conn in pending], timeout=_POLL_INTERVAL
            )
            if not ready:
                for process, _ in pending:
                    if not process.is_alive():
                        failure = (
                            f"worker {process.name!r} (pid {process.pid}) "
                            "died mid-replay"
                        )
                        break
                continue
            for done in ready:
                entry = next(e for e in pending if e[1] is done)
                try:
                    message = done.recv()
                except (EOFError, OSError):
                    failure = (
                        f"worker {entry[0].name!r} closed its pipe mid-replay"
                    )
                    break
                if message[0] == "error":
                    failure = message[1]
                    break
                if message[0] == "aborted":
                    aborted = True
                    observations.append(message[1])
                else:
                    finals.append(message[1])
                    observations.append(message[2] if len(message) > 2 else None)
                pending.remove(entry)
        if failure is not None:
            self._recover(gang, failure)
        if aborted:
            # All workers abandoned the replay in lockstep and stay alive;
            # surface the reason as the typed lifecycle error.
            if token is not None:
                token.check()
            raise ExecutionError(
                f"pool {self.name!r} aborted a replay without a tripped "
                "token (control segment written unexpectedly)"
            )
        return finals[0], observations

    def _recover(self, gang: _Gang, failure: str) -> None:
        """Abort the gang's step barrier, rebuild its worker set, raise.

        Unblocks survivors (they see ``BrokenBarrierError``), then rebuilds
        the whole gang: a broken barrier and a half-applied step are not
        worth salvaging worker by worker.  Other gangs are untouched —
        their replays proceed.  During :meth:`close` the respawn is
        skipped — the pool is going away.  Called holding the gang (busy),
        not the lock; counters are bumped under the lock.
        """
        try:
            gang.barrier.abort()
        except Exception:
            pass
        with self._lock:
            self._barrier_aborts += 1
        self._teardown_gang_workers(gang, graceful=False)
        if self._closing:
            raise ExecutionError(
                f"shared-memory pool {self.name!r} was closed mid-replay "
                f"(state discarded): {failure}"
            )
        with self._lock:
            self._respawns += 1
        self._spawn_gang_workers(gang)
        raise WorkerCrashed(
            f"shared-memory pool {self.name!r} lost a worker mid-replay "
            f"(workers respawned, state discarded): {failure}"
        )

    def __repr__(self) -> str:
        return (
            f"SharedStatePool(name={self.name!r}, processes={self.processes}, "
            f"gangs={len(self._gangs)}x{self.gang_size}, "
            f"start_method={self.start_method!r}, closed={self.closed})"
        )


# ---------------------------------------------------------------------------
# Process-wide registries: shared pools + segment sweep
# ---------------------------------------------------------------------------

_pools_lock = threading.Lock()
#: Every open pool, so the atexit sweep can close them (and their segments).
_open_pools: "weakref.WeakSet[SharedStatePool]" = weakref.WeakSet()
#: Segment names currently owned by this process; the sweep unlinks any that
#: survive (a pool leaked without close(), or close() interrupted mid-way).
_owned_segments: set[str] = set()
#: Shared pools keyed by ``(worker count, max_states)`` — the accelerator's
#: ``shm-processes`` and ``shm-states`` options respectively.
_shared_pools: dict[tuple[int, int], SharedStatePool] = {}
_shared_pools_lock = threading.Lock()


def _register_pool(pool: SharedStatePool) -> None:
    with _pools_lock:
        _open_pools.add(pool)


def _unregister_pool(pool: SharedStatePool) -> None:
    with _pools_lock:
        _open_pools.discard(pool)


def _remember_segment(name: str) -> None:
    with _pools_lock:
        _owned_segments.add(name)


def _forget_segment(name: str) -> None:
    with _pools_lock:
        _owned_segments.discard(name)


def get_shared_state_pool(
    processes: int,
    max_states: int = 1,
    *,
    byte_budget: int | None = None,
) -> SharedStatePool:
    """The process-wide shared pool with ``processes`` workers (created once).

    Shared for the same reason the sharded executors are: every accelerator
    clone asking for the same lane reuses one worker set — and its warm
    per-worker plan caches — instead of forking per clone.  Pools are keyed
    by ``(processes, max_states)`` so a sweep asking for multi-state
    residency does not steal (or reshape) the single-state pool other
    traffic relies on.  ``byte_budget`` is applied on first creation; an
    existing pool keeps its original budget.
    """
    if processes < 1:
        raise ExecutionError(f"processes must be at least 1, got {processes}")
    if max_states < 1:
        raise ExecutionError(f"max_states must be at least 1, got {max_states}")
    key = (int(processes), int(max_states))
    with _shared_pools_lock:
        pool = _shared_pools.get(key)
        if pool is None or pool.closed:
            suffix = f"-x{max_states}" if max_states > 1 else ""
            pool = SharedStatePool(
                processes,
                name=f"shared-shm-{processes}{suffix}",
                max_states=max_states,
                byte_budget=byte_budget,
            )
            _shared_pools[key] = pool
        return pool


def shm_health() -> dict[str, int]:
    """Aggregate health of this process's open shm pools (broker metrics).

    Lock-free by design: the gauges are read racily so a metrics snapshot
    never blocks behind a replay in flight.  Shard-hosted pools live inside
    shard worker processes and are invisible here — each process reports
    its own pools.
    """
    workers = respawns = barrier_aborts = resident_bytes = resident_states = 0
    with _pools_lock:
        pools = list(_open_pools)
    for pool in pools:
        try:
            if pool._closed:
                continue
            for gang in list(pool._gangs):
                if gang is None:
                    continue
                workers += sum(
                    1 for process, _ in list(gang.workers) if process.is_alive()
                )
                resident_bytes += gang.capacity * 2
                resident_states += 1
            respawns += pool._respawns
            barrier_aborts += pool._barrier_aborts
        except Exception:  # a pool mid-teardown; skip it rather than block
            continue
    return {
        "workers": workers,
        "respawns": respawns,
        "barrier_aborts": barrier_aborts,
        "resident_bytes": resident_bytes,
        "resident_states": resident_states,
    }


def shutdown_shared_state_pools(wait: bool = True) -> None:
    """Close every shared pool (tests, interpreter exit)."""
    with _shared_pools_lock:
        pools = list(_shared_pools.values())
        _shared_pools.clear()
    for pool in pools:
        try:
            pool.close(wait=wait)
        except Exception:
            pass


def _sweep_at_exit() -> None:
    shutdown_shared_state_pools(wait=False)
    with _pools_lock:
        pools = list(_open_pools)
        leftovers = list(_owned_segments)
        _owned_segments.clear()
    for pool in pools:
        try:
            pool.close(wait=False)
        except Exception:
            pass
    for name in leftovers:
        try:
            segment = SharedMemory(name=name)
        except FileNotFoundError:
            continue
        except Exception:
            continue
        try:
            segment.close()
            segment.unlink()
        except Exception:
            pass


#: PID that last registered the exit sweep.  The registration must be
#: re-done per process: multiprocessing children clear the inherited
#: finalizer registry in ``_bootstrap``, so an import-time hook from the
#: parent silently disappears in every fork child.
_sweep_registered_pid: int | None = None


def _ensure_exit_sweep() -> None:
    """Register the sweep for *this* process (idempotent per PID).

    Both hooks are needed: ``atexit`` covers normal interpreters, while
    multiprocessing children (e.g. shard workers that borrowed an shm
    pool) exit through ``util._exit_function()`` + ``os._exit()`` without
    ever running atexit handlers — only a ``multiprocessing.util.Finalize``
    fires there.  The sweep is idempotent, so a process hitting both hooks
    is fine.
    """
    global _sweep_registered_pid
    pid = os.getpid()
    if _sweep_registered_pid == pid:
        return
    _sweep_registered_pid = pid
    atexit.register(_sweep_at_exit)
    try:
        from multiprocessing import util

        util.Finalize(None, _sweep_at_exit, exitpriority=100)
    except Exception:  # pragma: no cover - registration best-effort
        pass


def _neuter_after_fork(_module) -> None:
    """Disarm bookkeeping a fork child inherited from its parent.

    A forked child gets copies of the parent's open pools, shared-pool
    registry and owned-segment names.  Acting on any of it — a child-side
    ``close()``, ``__del__`` or exit sweep — would stop worker processes
    and unlink ``/dev/shm`` segments the *parent* is still using.  Mark
    every inherited pool closed-and-empty and forget the names; pools the
    child creates itself register fresh.
    """
    global _sweep_registered_pid
    _sweep_registered_pid = None
    for pool in list(_open_pools):
        pool._closed = True
        pool._closing = True
        pool._gangs = [None] * len(pool._gangs)
    _open_pools.clear()
    _owned_segments.clear()
    _shared_pools.clear()


try:
    from multiprocessing import util as _mp_util
    import sys as _sys

    _mp_util.register_after_fork(_sys.modules[__name__], _neuter_after_fork)
except Exception:  # pragma: no cover - registration best-effort
    pass
