"""The result type every execution backend returns.

One dataclass covers the in-process path, the process-sharded path and the
density-matrix path: a histogram plus enough provenance (shard count,
plan-cache behaviour, retry count) for callers — accelerators, the job
broker, benchmarks — to assert on *how* the result was produced, not just
what it contains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ExecutionResult"]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one backend execution."""

    #: Measurement histogram (bitstring -> observations).
    counts: Mapping[str, int]
    #: Number of shots the execution produced (``counts`` sums to this).
    shots: int
    #: Width of the simulated register.
    n_qubits: int
    #: Name of the backend that produced the result.
    backend: str
    #: Wall-clock seconds of the execution, including plan compilation when
    #: the plan cache missed (cached replays pay only the lookup).
    seconds: float = 0.0
    #: Number of process shards that contributed (1 for in-process paths).
    shards: int = 1
    #: True when the execution replayed an already-compiled plan.
    plan_cached: bool = False
    #: Depth of the optimised circuit the plan was lowered from.
    depth: int = 0
    #: Unitary gate count of the optimised circuit.
    n_gates: int = 0
    #: Shard chunks that had to be re-executed after a worker died.
    retries: int = 0
    #: Backend-specific extras (e.g. density-matrix purity).
    extra: Mapping[str, object] = field(default_factory=dict)

    def total_counts(self) -> int:
        return sum(self.counts.values())

    def __post_init__(self) -> None:
        if self.shots <= 0:
            raise ValueError(f"shots must be positive, got {self.shots}")
