"""Stabilizer (CHP tableau) execution behind the common backend protocol.

Every other lane in the repo replays a dense statevector, so cost grows as
O(2^n) regardless of how well the replay parallelises.  Clifford circuits
— bell/GHZ chains, error-correction cycles, randomized benchmarking — admit
the Aaronson–Gottesman tableau representation instead: the state is the
abelian group stabilising it, tracked as 2n binary Pauli rows, and every
Clifford gate is an O(n) column update.  A 500-qubit GHZ circuit is a few
thousand boolean vector ops, not a 2^500-amplitude impossibility.

Layout (CHP convention): rows ``0..n-1`` are destabilizers, rows
``n..2n-1`` stabilizers; row ``i`` encodes the Pauli
``(-1)^{r_i} · ∏_q W_q`` with ``W`` read off the ``(x, z)`` bit pair —
``(0,0)=I, (1,0)=X, (1,1)=Y, (0,1)=Z``.

The one departure from textbook CHP is the **symbolic phase matrix**: each
row's phase is an affine form over GF(2) in fresh random bits
``(1, u₁..u_R)`` minted by random-outcome measurements and resets, not a
single bit.  Unitary gates only ever flip the constant column; measurement
outcomes come out as affine forms in the ``u``'s.  Terminal sampling is
then a single GF(2) matrix product over ``shots`` uniform draws of the
``u`` vector — the whole histogram in one vectorised pass, and circuits
whose outcomes involve no ``u`` (deterministic outcomes) yield the exact
single bitstring the dense lanes produce, bit for bit, independent of the
sampler seed.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping

import numpy as np

from ..cancellation import active_cancel_token
from ..exceptions import ExecutionError
from ..ir.composite import CompositeInstruction
from ..ir.transforms.clifford import CliffordClassification, classify_clifford
from ..obs.trace import get_tracer
from ..testing import faults
from ..simulator.execution_plan import DEFAULT_PRECISION
from .backend import ExecutionBackend, Params, _resolve_width
from .result import ExecutionResult

__all__ = ["StabilizerTableau", "StabilizerBackend", "estimate_tableau_bytes"]


def estimate_tableau_bytes(n_qubits: int, shots: int = 0) -> int:
    """Peak bytes for a tableau execution: O(n²) bits, not O(2^n) amplitudes.

    Two ``(2n, n)`` boolean matrices plus the phase matrix (one constant
    column plus at most one fresh random column per measured qubit) and the
    sampled bit matrix.  The admission controller uses this instead of the
    amplitude estimate when the classifier routes a job to the tableau.
    """
    n = max(1, int(n_qubits))
    rows = 2 * n
    tableau = 2 * rows * n  # x and z boolean matrices
    phase = rows * (1 + n)  # worst case: every qubit measured randomly
    samples = max(0, int(shots)) * (n + 8)  # bit matrix + histogram keys
    return tableau + phase + samples


def _carry_rows(x1, z1, x2, z2, total: bool = False):
    """Phase carries of pairwise Pauli products ``left · right``.

    Aaronson–Gottesman's per-qubit exponent ``g`` is +1 exactly for the
    (left, right) letter pairs (Y,Z), (X,Y), (Z,X) and -1 for the reversed
    pairs, so the row sums reduce to six boolean popcounts — no integer
    temporaries.  For Hermitian products every row's Σg is even mod 4 and
    the carry is ``((pos - neg) mod 4) / 2``.  With ``total=True`` all rows
    are collapsed into one carry bit (valid because per-step carries XOR to
    the carry of the total when every prefix is Hermitian).
    """
    y1 = x1 & z1
    xo1 = x1 & ~z1
    zo1 = ~x1 & z1
    y2 = x2 & z2
    xo2 = x2 & ~z2
    zo2 = ~x2 & z2
    if total:
        pos = (
            int(np.count_nonzero(y1 & zo2))
            + int(np.count_nonzero(xo1 & y2))
            + int(np.count_nonzero(zo1 & xo2))
        )
        neg = (
            int(np.count_nonzero(y1 & xo2))
            + int(np.count_nonzero(xo1 & zo2))
            + int(np.count_nonzero(zo1 & y2))
        )
        return ((pos - neg) % 4) // 2
    pos = (
        np.count_nonzero(y1 & zo2, axis=1)
        + np.count_nonzero(xo1 & y2, axis=1)
        + np.count_nonzero(zo1 & xo2, axis=1)
    )
    neg = (
        np.count_nonzero(y1 & xo2, axis=1)
        + np.count_nonzero(xo1 & zo2, axis=1)
        + np.count_nonzero(zo1 & y2, axis=1)
    )
    return ((((pos - neg) % 4) // 2) > 0)


class StabilizerTableau:
    """A 2n-row binary Pauli tableau with symbolic (affine) phases."""

    def __init__(self, n_qubits: int):
        if n_qubits < 1:
            raise ExecutionError(f"tableau width must be positive, got {n_qubits}")
        self.n = int(n_qubits)
        rows = 2 * self.n
        idx = np.arange(self.n)
        self.x = np.zeros((rows, self.n), dtype=bool)
        self.z = np.zeros((rows, self.n), dtype=bool)
        self.x[idx, idx] = True  # destabilizer i = X_i
        self.z[self.n + idx, idx] = True  # stabilizer i = Z_i
        #: Affine phases over (1, u₁..u_R): column 0 is the constant bit,
        #: later columns are random bits minted by measurements/resets.
        self.phase = np.zeros((rows, 1), dtype=bool)

    @property
    def n_random_bits(self) -> int:
        return self.phase.shape[1] - 1

    def copy(self) -> "StabilizerTableau":
        dup = StabilizerTableau.__new__(StabilizerTableau)
        dup.n = self.n
        dup.x = self.x.copy()
        dup.z = self.z.copy()
        dup.phase = self.phase.copy()
        return dup

    # -- gates (phase flips touch only the constant column) -------------------
    def h(self, q: int) -> None:
        self.phase[:, 0] ^= self.x[:, q] & self.z[:, q]
        tmp = self.x[:, q].copy()
        self.x[:, q] = self.z[:, q]
        self.z[:, q] = tmp

    def s(self, q: int) -> None:
        self.phase[:, 0] ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def sdg(self, q: int) -> None:
        self.phase[:, 0] ^= self.x[:, q] & ~self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def x_gate(self, q: int) -> None:
        self.phase[:, 0] ^= self.z[:, q]

    def y_gate(self, q: int) -> None:
        self.phase[:, 0] ^= self.x[:, q] ^ self.z[:, q]

    def z_gate(self, q: int) -> None:
        self.phase[:, 0] ^= self.x[:, q]

    def cx(self, control: int, target: int) -> None:
        xa, zb = self.x[:, control], self.z[:, target]
        self.phase[:, 0] ^= xa & zb & ~(self.x[:, target] ^ self.z[:, control])
        self.x[:, target] ^= xa
        self.z[:, control] ^= zb

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cx(a, b)
        self.h(b)

    def swap(self, a: int, b: int) -> None:
        self.x[:, [a, b]] = self.x[:, [b, a]]
        self.z[:, [a, b]] = self.z[:, [b, a]]

    # -- symbolic measurement --------------------------------------------------
    def _rowsum_batch(self, targets: np.ndarray, i: int) -> None:
        """Row ``t`` := row ``i`` · row ``t`` for every target, vectorized.

        One phase-carry evaluation over a ``(k, n)`` block instead of ``k``
        Python-level rowsums — the difference between O(n²) numpy calls and
        O(n) per measurement cascade.
        """
        x1, z1 = self.x[i], self.z[i]
        x2, z2 = self.x[targets], self.z[targets]
        carries = _carry_rows(x1, z1, x2, z2)
        self.phase[targets] ^= self.phase[i][None, :]
        self.phase[targets, 0] ^= carries
        self.x[targets] ^= x1
        self.z[targets] ^= z1

    def _product(self, rows: np.ndarray):
        """``(x, z, phase)`` of the ordered product of the given rows.

        All callers multiply pairwise-commuting rows, so every prefix of
        the product is Hermitian and the per-step carries
        ``((Σg) mod 4)/2`` XOR to the carry of the *total* g-sum — which
        lets the whole cascade collapse to one exclusive cumulative XOR
        plus a single block g-evaluation.
        """
        xs_rows = self.x[rows]
        zs_rows = self.z[rows]
        px = np.zeros_like(xs_rows)
        pz = np.zeros_like(zs_rows)
        if rows.size > 1:
            np.bitwise_xor.accumulate(
                xs_rows[:-1].view(np.uint8), axis=0, out=px[1:].view(np.uint8)
            )
            np.bitwise_xor.accumulate(
                zs_rows[:-1].view(np.uint8), axis=0, out=pz[1:].view(np.uint8)
            )
        carry = bool(_carry_rows(xs_rows, zs_rows, px, pz, total=True))
        xs = np.logical_xor.reduce(xs_rows, axis=0)
        zs = np.logical_xor.reduce(zs_rows, axis=0)
        ps = np.logical_xor.reduce(self.phase[rows], axis=0)
        if carry:
            ps[0] ^= True
        return xs, zs, ps

    def _new_random_column(self) -> int:
        rows = self.phase.shape[0]
        self.phase = np.hstack([self.phase, np.zeros((rows, 1), dtype=bool)])
        return self.phase.shape[1] - 1

    def measure(self, q: int) -> np.ndarray:
        """Measure qubit ``q`` (collapsing) and return the outcome.

        The outcome is an affine form over ``(1, u₁..u_R)``: a boolean
        vector of the current phase width whose GF(2) inner product with a
        concrete assignment of the ``u``'s gives the measured bit.  A
        random outcome mints a fresh ``u`` column and returns exactly that
        coordinate; a deterministic outcome returns the accumulated phase
        of the stabilizer product fixing ``Z_q``.
        """
        if not 0 <= q < self.n:
            raise ExecutionError(f"measured qubit {q} out of range")
        n = self.n
        candidates = np.nonzero(self.x[n:, q])[0]
        if candidates.size:
            # Random outcome: some stabilizer anticommutes with Z_q.
            p = int(candidates[0]) + n
            targets = np.nonzero(self.x[:, q])[0]
            targets = targets[targets != p]
            if targets.size:
                self._rowsum_batch(targets, p)
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.phase[p - n] = self.phase[p]
            column = self._new_random_column()
            self.x[p] = False
            self.z[p] = False
            self.z[p, q] = True
            self.phase[p] = False
            self.phase[p, column] = True
            outcome = np.zeros(self.phase.shape[1], dtype=bool)
            outcome[column] = True
            return outcome
        # Deterministic outcome: Z_q ∈ ±S; the product of the stabilizers
        # selected by the destabilizers that anticommute with Z_q has the
        # measured bit as its phase.
        selected = np.nonzero(self.x[:n, q])[0] + n
        if not selected.size:
            return np.zeros(self.phase.shape[1], dtype=bool)
        _, _, ps = self._product(selected)
        return ps

    def reset(self, q: int) -> None:
        """Measure ``q`` then conditionally flip it back to |0⟩.

        The conditional X^m is exact even for symbolic ``m``: X on ``q``
        flips each row's phase by its ``z`` column, so the affine form
        ``m`` is XORed into every row with ``z[·, q]`` set.
        """
        outcome = self.measure(q)
        self.phase[self.z[:, q]] ^= outcome

    # -- terminal sampling -----------------------------------------------------
    def sample(
        self,
        shots: int,
        measured_qubits: Iterable[int],
        rng: np.random.Generator | None = None,
    ) -> dict[str, int]:
        """Histogram ``shots`` joint samples of ``measured_qubits``.

        Matches :func:`repro.simulator.sampling.sample_counts` format:
        measured qubits sorted ascending, character ``i`` of a key is the
        value of the ``i``-th measured qubit.  Measuring sequentially on a
        scratch copy yields *correlated* affine forms in shared ``u``'s —
        the exact joint distribution — then one GF(2) matmul over uniform
        ``u`` draws produces every shot at once.
        """
        if shots <= 0:
            raise ExecutionError(f"shots must be positive, got {shots}")
        qubits = tuple(sorted(set(int(q) for q in measured_qubits)))
        if not qubits:
            raise ExecutionError("at least one qubit must be measured")
        scratch = self.copy()
        forms = [scratch.measure(q) for q in qubits]
        width = scratch.phase.shape[1]
        affine = np.zeros((len(qubits), width), dtype=np.uint8)
        for row, form in enumerate(forms):
            affine[row, : form.size] = form.astype(np.uint8)
        constant = affine[:, 0]
        coeffs = affine[:, 1:]
        if coeffs.shape[1] == 0 or not coeffs.any():
            # Deterministic outcomes: the single bitstring every dense lane
            # produces at any seed — bitwise identical by construction.
            key = "".join("1" if b else "0" for b in constant)
            return {key: int(shots)}
        rng = rng or np.random.default_rng()
        draws = rng.integers(0, 2, size=(shots, coeffs.shape[1]), dtype=np.uint8)
        bits = (draws.astype(np.int64) @ coeffs.T.astype(np.int64) + constant) % 2
        values, counts = np.unique(bits, axis=0, return_counts=True)
        return {
            "".join("1" if b else "0" for b in row): int(count)
            for row, count in zip(values, counts)
        }

    # -- exact expectations ----------------------------------------------------
    def expectation_sign(self, paulis: Mapping[int, str]) -> float:
        """⟨P⟩ for a Pauli product ``P`` — exactly -1, 0 or +1.

        A pure stabilizer state's group is maximal abelian: ``P`` has
        non-zero expectation iff it commutes with every stabilizer, in
        which case ``P ∈ ±S`` and the sign is the phase of the stabilizer
        product selected by the destabilizers anticommuting with ``P``.
        """
        n = self.n
        xp = np.zeros(n, dtype=bool)
        zp = np.zeros(n, dtype=bool)
        for qubit, label in paulis.items():
            if not 0 <= qubit < n:
                raise ExecutionError(f"observable qubit {qubit} out of range")
            if label in ("X", "Y"):
                xp[qubit] = True
            if label in ("Z", "Y"):
                zp[qubit] = True
        stab_x, stab_z = self.x[n:], self.z[n:]
        anticommutes = ((stab_x & zp).sum(axis=1) + (stab_z & xp).sum(axis=1)) % 2
        if anticommutes.any():
            return 0.0
        destab_x, destab_z = self.x[:n], self.z[:n]
        selection = ((destab_x & zp).sum(axis=1) + (destab_z & xp).sum(axis=1)) % 2
        selected = np.nonzero(selection)[0] + n
        if not selected.size:
            # P commutes with every generator yet selects no stabilizer:
            # only the identity does that (⟨I⟩ = 1 handled by the caller).
            return 1.0
        _, _, ps = self._product(selected)
        return -1.0 if ps[0] else 1.0


class StabilizerBackend(ExecutionBackend):
    """Tableau execution behind :class:`ExecutionBackend`.

    ``compile`` returns the cached :class:`CliffordClassification` (the
    lowered primitive op list *is* the executable artefact — there is no
    amplitude plan form).  Non-Clifford circuits fail loudly with the
    classifier's obstruction: routing layers are expected to consult
    :func:`classify_clifford` first, so reaching this error means an
    explicit ``method: "stabilizer"`` request on an ineligible circuit.

    ``precision`` is accepted for protocol uniformity and ignored — the
    tableau is exact over GF(2) at every tier, so the knob cannot change
    the sampling law here.
    """

    backend_name = "stabilizer"

    def compile(
        self,
        circuit: CompositeInstruction,
        n_qubits: int | None = None,
        *,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> CliffordClassification:
        return classify_clifford(circuit)

    def _classified(self, circuit: CompositeInstruction) -> CliffordClassification:
        classification = classify_clifford(circuit)
        if not classification.is_clifford:
            raise ExecutionError(
                "the stabilizer backend requires a Clifford circuit: "
                f"{classification.reason}"
            )
        return classification

    @staticmethod
    def _evolve(tableau: StabilizerTableau, ops) -> None:
        for op in ops:
            kind = op[0]
            if kind == "h":
                tableau.h(op[1])
            elif kind == "s":
                tableau.s(op[1])
            elif kind == "sdg":
                tableau.sdg(op[1])
            elif kind == "x":
                tableau.x_gate(op[1])
            elif kind == "y":
                tableau.y_gate(op[1])
            elif kind == "z":
                tableau.z_gate(op[1])
            elif kind == "cx":
                tableau.cx(op[1], op[2])
            elif kind == "cz":
                tableau.cz(op[1], op[2])
            elif kind == "swap":
                tableau.swap(op[1], op[2])
            elif kind == "reset":
                tableau.reset(op[1])
            else:  # pragma: no cover - the classifier only emits the above
                raise ExecutionError(f"unknown tableau op {op!r}")

    def execute(
        self,
        circuit: CompositeInstruction,
        shots: int,
        *,
        n_qubits: int | None = None,
        seed: int | None = None,
        params: Params = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> ExecutionResult:
        tracer = get_tracer()
        token = active_cancel_token()
        if token is not None:
            # Pre-evolution boundary, mirroring every other lane: a job
            # past its deadline must not pay for classification.
            token.check()
        faults.fire("stabilizer.execute")
        if params is not None:
            circuit = circuit.bind(params)
        elif circuit.is_parameterized:
            raise ExecutionError(
                f"circuit {circuit.name!r} has unbound parameters; provide params"
            )
        started = time.perf_counter()
        with tracer.span("classify", attrs={"circuit": circuit.name}):
            classification = self._classified(circuit)
        width = _resolve_width(circuit, n_qubits)
        with tracer.span(
            "tableau", attrs={"n_qubits": width, "n_ops": len(classification.ops)}
        ):
            tableau = StabilizerTableau(width)
            self._evolve(tableau, classification.ops)
        if token is not None:
            # Post-evolution boundary: sampling is the other large phase.
            token.check()
        measured = classification.measured_qubits or tuple(range(width))
        rng = np.random.default_rng(seed)
        with tracer.span("sample", attrs={"shots": shots}):
            counts = tableau.sample(shots, measured, rng)
        elapsed = time.perf_counter() - started
        return ExecutionResult(
            counts=counts,
            shots=shots,
            n_qubits=width,
            backend=self.backend_name,
            seconds=elapsed,
            shards=1,
            depth=circuit.depth(),
            n_gates=classification.n_gates,
            extra={"n_random_bits": tableau.n_random_bits},
        )

    def expectation(
        self,
        circuit: CompositeInstruction,
        observable,
        *,
        n_qubits: int | None = None,
        params: Params = None,
        optimize: bool = True,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> float:
        from ..operators.pauli import PauliOperator, PauliTerm

        if isinstance(observable, PauliTerm):
            observable = PauliOperator([observable])
        if not isinstance(observable, PauliOperator):
            raise ExecutionError(
                f"expected a PauliOperator/PauliTerm, got {type(observable).__name__}"
            )
        if params is not None:
            circuit = circuit.bind(params)
        elif circuit.is_parameterized:
            raise ExecutionError(
                f"circuit {circuit.name!r} has unbound parameters; provide params"
            )
        classification = self._classified(circuit)
        if classification.has_reset:
            raise ExecutionError(
                "exact expectations are undefined for circuits with mid-circuit resets"
            )
        width = _resolve_width(circuit, n_qubits)
        tableau = StabilizerTableau(width)
        self._evolve(tableau, classification.ops)
        total = 0.0
        for term in observable.terms:
            if term.is_identity:
                total += term.coefficient.real
                continue
            total += term.coefficient.real * tableau.expectation_sign(term.paulis)
        return float(total)

    def __repr__(self) -> str:
        return "StabilizerBackend()"
