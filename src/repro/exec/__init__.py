"""repro.exec — the unified execution-backend layer.

One protocol (:class:`ExecutionBackend`) behind every execution path:

* :class:`LocalBackend` — in-process plan replay (shared plan cache + the
  thread-pool simulation engine); the default seam under the qpp
  accelerator, ``core/executor`` and the job broker.
* :class:`ShardedExecutor` — process-sharded plan replay: persistent
  worker processes, circuits shipped by content hash + canonical JSON,
  per-worker plan caches, hash-affine job routing, worker-death retry.
* :class:`DensityBackend` — density-matrix evolution (the noisy
  accelerator's seam).

All of them return :class:`ExecutionResult`.
"""

from .backend import DensityBackend, ExecutionBackend, LocalBackend
from .result import ExecutionResult
from .sharded import ShardedExecutor, get_sharded_executor, shutdown_sharded_executors

__all__ = [
    "ExecutionBackend",
    "ExecutionResult",
    "LocalBackend",
    "DensityBackend",
    "ShardedExecutor",
    "get_sharded_executor",
    "shutdown_sharded_executors",
]
