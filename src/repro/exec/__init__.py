"""repro.exec — the unified execution-backend layer.

One protocol (:class:`ExecutionBackend`) behind every execution path:

* :class:`LocalBackend` — in-process plan replay (shared plan cache + the
  thread-pool simulation engine); the default seam under the qpp
  accelerator, ``core/executor`` and the job broker.
* :class:`ShardedExecutor` — process-sharded plan replay: persistent
  worker processes, circuits shipped by content hash + canonical JSON,
  per-worker plan caches, hash-affine job routing (with cold-key work
  stealing), worker-death retry.
* :class:`DensityBackend` — density-matrix evolution (the noisy
  accelerator's seam).
* :class:`StabilizerBackend` — CHP-style tableau execution for Clifford
  circuits: O(n²) per measurement instead of O(2^n) amplitudes, the lane
  the cost model routes Clifford-only jobs to automatically.
* :class:`SharedStatePool` — not a backend but the shared-memory
  :class:`~repro.simulator.execution_plan.ChunkPool`: worker processes
  cooperating on one large state through shared amplitude buffers, the
  lane :class:`LocalBackend` and the shard workers borrow for ≥20-qubit
  replays.

The backends return :class:`ExecutionResult`.
"""

from .backend import DensityBackend, ExecutionBackend, LocalBackend
from .result import ExecutionResult
from .retry import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    RetryPolicy,
    is_infrastructure_failure,
    is_retryable,
)
from .sharded import ShardedExecutor, get_sharded_executor, shutdown_sharded_executors
from .shm import SharedStatePool, get_shared_state_pool, shutdown_shared_state_pools
from .stabilizer import StabilizerBackend, StabilizerTableau, estimate_tableau_bytes

__all__ = [
    "ExecutionBackend",
    "ExecutionResult",
    "LocalBackend",
    "DensityBackend",
    "StabilizerBackend",
    "StabilizerTableau",
    "estimate_tableau_bytes",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY",
    "is_retryable",
    "is_infrastructure_failure",
    "ShardedExecutor",
    "SharedStatePool",
    "get_sharded_executor",
    "get_shared_state_pool",
    "shutdown_sharded_executors",
    "shutdown_shared_state_pools",
]
