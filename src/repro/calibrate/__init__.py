"""Host calibration: measured cost-model constants instead of guesses.

``python -m repro.calibrate`` micro-benchmarks every plan kernel class on
the running host and persists a versioned, host-fingerprinted
:class:`CalibrationProfile`; :func:`load_calibrated_model` turns it back
into a :class:`~repro.simulator.cost_model.SimulationCostModel` (falling
back to the hand-set defaults, with a warning, when the profile is
missing, stale, or from another host).  The adaptive lane selection in
:class:`~repro.exec.backend.LocalBackend` and the broker consumes that
model to route each plan to its predicted-cheapest execution lane.
"""

from .harness import KERNEL_KINDS, kernel_microbench_circuit, run_calibration
from .profile import (
    PROFILE_VERSION,
    CalibrationError,
    CalibrationProfile,
    default_profile_path,
    host_fingerprint,
    load_calibrated_model,
)

__all__ = [
    "KERNEL_KINDS",
    "PROFILE_VERSION",
    "CalibrationError",
    "CalibrationProfile",
    "default_profile_path",
    "host_fingerprint",
    "kernel_microbench_circuit",
    "load_calibrated_model",
    "run_calibration",
]
