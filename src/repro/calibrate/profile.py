"""Versioned, host-fingerprinted calibration profiles.

A :class:`CalibrationProfile` is the persisted output of the calibration
harness (:mod:`repro.calibrate.harness`): the measured cost-model constants
for one host, stored as JSON keyed by a *host fingerprint* (cpu count,
amplitude dtype, numpy build).  :meth:`CalibrationProfile.load` rejects
profiles written by an older schema outright; a profile whose fingerprint
does not match the running host loads but must not steer the cost model,
so :func:`load_calibrated_model` warns and falls back to the hand-set
defaults in that case.  The profile only stores constants that were
actually measured — anything it leaves ``None`` keeps its default when
:meth:`SimulationCostModel.from_profile` consumes it, which is how a
1-core host (no thread/shm measurements possible) still produces a usable
profile.
"""

from __future__ import annotations

import calendar
import json
import os
import platform
import time
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..exceptions import ExecutionError

__all__ = [
    "PROFILE_VERSION",
    "CalibrationError",
    "CalibrationProfile",
    "default_profile_path",
    "host_fingerprint",
    "load_calibrated_model",
]

#: Schema version written into every profile.  Bump on any field-meaning
#: change; :meth:`CalibrationProfile.load` rejects other versions.
PROFILE_VERSION = 1

#: Environment variable overriding the default profile location.
PROFILE_PATH_ENV = "REPRO_CALIBRATION_PROFILE"


class CalibrationError(ExecutionError):
    """A calibration profile could not be loaded (stale schema, malformed)."""


def host_fingerprint() -> dict:
    """Identity of the measuring host, as far as the constants depend on it.

    The calibrated constants are ratios of numpy kernel throughputs, so the
    fingerprint captures what changes those ratios: the core count (thread
    and process efficiencies), the numpy build (kernel implementations),
    and the machine architecture.  ``dtype`` is the reference amplitude
    dtype the kernels were timed at.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "dtype": "complex128",
        "numpy": np.__version__,
        "machine": platform.machine(),
    }


def default_profile_path() -> Path:
    """Where profiles live: ``$REPRO_CALIBRATION_PROFILE`` or the user cache."""
    override = os.environ.get(PROFILE_PATH_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "calibration.json"


@dataclass
class CalibrationProfile:
    """Measured cost-model constants for one host.

    Every constant is optional (``None`` / empty = not measured, keep the
    hand-set default); ``measurements`` holds the raw timings the constants
    were derived from, for inspection and the bench artifact.
    """

    version: int = PROFILE_VERSION
    fingerprint: dict = field(default_factory=host_fingerprint)
    created: str = ""
    #: Wall seconds of one abstract cost-model work unit (one single-qubit
    #: amplitude update) on this host — the bridge from modeled units to
    #: predicted seconds.
    seconds_per_unit: float | None = None
    kernel_cost_factors: dict = field(default_factory=dict)
    kernel_parallel_efficiency: dict = field(default_factory=dict)
    kernel_process_efficiency: dict = field(default_factory=dict)
    plan_step_dispatch_cost: float | None = None
    shm_step_barrier_cost: float | None = None
    sharded_dispatch_cost: float | None = None
    chunk_threshold: int | None = None
    recommended_threads: int | None = None
    recommended_shm_workers: int | None = None
    #: Measured wall seconds per Clifford gate per tableau qubit-row (the
    #: stabilizer lane's O(n) per-gate constant); feeds
    #: :meth:`SimulationCostModel.stabilizer_seconds` predictions.
    seconds_per_clifford_gate: float | None = None
    measurements: dict = field(default_factory=dict)

    def matches_host(self) -> bool:
        """Whether this profile was measured on (a host identical to) this one."""
        return dict(self.fingerprint) == host_fingerprint()

    def age_days(self) -> float | None:
        """Days since this profile was measured (``None`` when undated).

        Pre-TTL profiles (empty ``created``) and unparsable timestamps
        return ``None`` — age-gating skips them rather than guessing.
        """
        if not self.created:
            return None
        try:
            measured = calendar.timegm(
                time.strptime(self.created, "%Y-%m-%dT%H:%M:%SZ")
            )
        except (ValueError, OverflowError):
            return None
        return max(0.0, (time.time() - measured) / 86400.0)

    # -- persistence ---------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    def save(self, path: str | Path | None = None) -> Path:
        """Write the profile as JSON, creating parent directories."""
        target = Path(path) if path is not None else default_profile_path()
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n")
        return target

    @classmethod
    def load(cls, path: str | Path | None = None) -> "CalibrationProfile":
        """Load a profile, rejecting stale schema versions and malformed files."""
        source = Path(path) if path is not None else default_profile_path()
        try:
            payload = json.loads(source.read_text())
        except OSError as exc:
            raise CalibrationError(f"cannot read calibration profile {source}: {exc}")
        except json.JSONDecodeError as exc:
            raise CalibrationError(f"malformed calibration profile {source}: {exc}")
        if not isinstance(payload, dict):
            raise CalibrationError(
                f"malformed calibration profile {source}: expected an object"
            )
        version = payload.get("version")
        if version != PROFILE_VERSION:
            raise CalibrationError(
                f"calibration profile {source} has schema version {version!r}; "
                f"this build reads version {PROFILE_VERSION} — re-run "
                "`python -m repro.calibrate`"
            )
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in payload.items() if k in known}
        return cls(**kwargs)


def load_calibrated_model(
    path: str | Path | None = None, max_age_days: float = 30.0
):
    """A :class:`~repro.simulator.cost_model.SimulationCostModel` for this host.

    Loads the persisted profile and builds the model from it.  Falls back
    to the hand-set defaults — with a warning naming the reason — when the
    profile is missing, stale, malformed, was measured on a different host
    (fingerprint mismatch), or is older than ``max_age_days`` (hosts drift:
    kernel/numpy upgrades and thermal re-pasting both move the measured
    ratios, so a months-old profile steers worse than the defaults).
    Undated profiles skip the age check.  Never raises: callers on the
    job-serving path must not fail because calibration state is absent.
    """
    from ..simulator.cost_model import SimulationCostModel

    source = Path(path) if path is not None else default_profile_path()
    if not source.exists():
        return SimulationCostModel()
    try:
        profile = CalibrationProfile.load(source)
    except CalibrationError as exc:
        warnings.warn(
            f"ignoring calibration profile: {exc}", RuntimeWarning, stacklevel=2
        )
        return SimulationCostModel()
    if not profile.matches_host():
        warnings.warn(
            f"calibration profile {source} was measured on a different host "
            f"(profile {profile.fingerprint} vs host {host_fingerprint()}); "
            "using default cost-model constants — re-run `python -m repro.calibrate`",
            RuntimeWarning,
            stacklevel=2,
        )
        return SimulationCostModel()
    age = profile.age_days()
    if max_age_days is not None and age is not None and age > max_age_days:
        warnings.warn(
            f"calibration profile {source} is {age:.1f} days old "
            f"(max {max_age_days:g}); using default cost-model constants — "
            "re-run `python -m repro.calibrate`",
            RuntimeWarning,
            stacklevel=2,
        )
        return SimulationCostModel()
    return SimulationCostModel.from_profile(profile)


def utc_timestamp() -> str:
    """ISO-8601 UTC timestamp for :attr:`CalibrationProfile.created`."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
