"""Host calibration: micro-benchmark every kernel class on the running host.

The cost model's constants (kernel cost factors, parallel/process
efficiencies, barrier and dispatch overheads, the chunk threshold) shipped
as hand-set guesses.  :func:`run_calibration` measures them:

* **Kernel cost factors** — one dedicated micro-circuit per kernel class
  (single/controlled/diagonal/permutation/gather/dense), compiled with
  ``optimize=False`` so every class survives lowering, replayed serially
  under the :class:`~repro.obs.profiler.ReplayProfiler`; per-amplitude
  seconds normalise to the single-qubit kernel (the model's unit).
* **Thread-pool sweep efficiency** — each class replayed chunk-parallel on
  a full-width :class:`~repro.simulator.parallel_engine.ParallelSimulationEngine`
  vs serially; the Amdahl parallel fraction ``(1 - t_W/t_1)/(1 - 1/W)`` is
  the per-class efficiency.
* **Chunk threshold** — the measured crossover state size where the thread
  pool first beats the serial sweep.
* **Shm barrier cost** — the per-step wall overhead of shared-memory
  process replay on a state small enough that the sweep itself is
  negligible, in model units.

Multi-worker measurements are skipped (keeping the defaults) on 1-core
hosts, where no parallel lane can win and the Amdahl fit is undefined.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..ir.builder import CircuitBuilder
from ..ir.composite import CompositeInstruction
from ..obs.profiler import ReplayProfiler, profiler_installed
from ..simulator.execution_plan import compile_plan
from ..simulator.parallel_engine import ParallelSimulationEngine
from .profile import CalibrationProfile, utc_timestamp

__all__ = ["run_calibration", "kernel_microbench_circuit", "KERNEL_KINDS"]

#: Kernel classes the harness measures ("reset" is excluded: it is
#: RNG-serial by construction, so its default factor/efficiency stand).
KERNEL_KINDS = ("single", "controlled", "diagonal", "permutation", "gather", "dense")

#: 4x4 dense payload for the dense-kernel micro-circuit (H⊗H: unitary,
#: no diagonal/permutation structure the lowerer could specialise away).
_H = np.array([[1.0, 1.0], [1.0, -1.0]]) / np.sqrt(2.0)
_DENSE_4X4 = np.kron(_H, _H)


def kernel_microbench_circuit(
    kind: str, n_qubits: int, layers: int = 2
) -> CompositeInstruction:
    """A circuit whose plan (compiled ``optimize=False``) is purely ``kind``."""
    builder = CircuitBuilder(n_qubits, name=f"cal-{kind}")
    for layer in range(layers):
        if kind == "single":
            for q in range(n_qubits):
                builder.rx(q, 0.31 + 0.07 * ((layer + q) % 5))
        elif kind == "controlled":
            for q in range(n_qubits - 1):
                builder.ch(q, q + 1)
        elif kind == "diagonal":
            for q in range(n_qubits):
                builder.rz(q, 0.41 + 0.05 * ((layer + q) % 7))
        elif kind == "permutation":
            for q in range(n_qubits):
                builder.x(q)
            for q in range(0, n_qubits - 1, 2):
                builder.swap(q, q + 1)
        elif kind == "gather":
            # An 8-cycle on three qubits: a classical permutation with no
            # pairwise-exchange decomposition, forcing the gather kernel.
            cycle = [(x + 1) % 8 for x in range(8)]
            for q in range(0, n_qubits - 2, 3):
                builder.permutation(cycle, (q, q + 1, q + 2))
        elif kind == "dense":
            for q in range(0, n_qubits - 1, 2):
                builder.unitary(_DENSE_4X4, (q, q + 1), name="HH")
        else:
            raise ValueError(f"unknown kernel kind {kind!r}")
    return builder.build()


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


class _Replayer:
    """Callable replaying a plan in place, recycling the evolved state."""

    def __init__(self, plan, pool=None):
        self.plan = plan
        self.pool = pool
        self.data = plan.new_state()

    def __call__(self) -> None:
        self.data = self.plan.execute(self.data, pool=self.pool)


def _amdahl_efficiency(t_serial: float, t_parallel: float, workers: int) -> float:
    """Parallel fraction implied by a serial/parallel wall-time pair."""
    if t_serial <= 0.0 or workers <= 1:
        return 0.0
    fraction = (1.0 - t_parallel / t_serial) / (1.0 - 1.0 / workers)
    return float(min(0.98, max(0.0, fraction)))


def run_calibration(
    *,
    quick: bool = False,
    include_threads: bool = True,
    include_shm: bool = True,
    profile_path=None,
) -> CalibrationProfile:
    """Measure this host's cost-model constants and return the profile.

    ``quick`` shrinks state sizes and repeat counts (CI bench-smoke);
    ``include_threads``/``include_shm`` gate the multi-worker stages (the
    shm stage spins worker processes up through the shared registry and
    leaves any pre-existing pool running).  When ``profile_path`` is set
    the profile is also persisted there.
    """
    cores = os.cpu_count() or 1
    n_serial = 10 if quick else 13
    layers = 2 if quick else 3
    repeats = 2 if quick else 3
    dim = 1 << n_serial
    measurements: dict = {"quick": bool(quick), "n_serial": n_serial}

    # -- 1. serial per-kernel cost factors ---------------------------------
    plans = {
        kind: compile_plan(
            kernel_microbench_circuit(kind, n_serial, layers),
            n_serial,
            optimize=False,
            batch_diagonals=False,
        )
        for kind in KERNEL_KINDS
    }
    profiler = ReplayProfiler()
    with profiler_installed(profiler):
        for plan in plans.values():
            replay = _Replayer(plan)
            for _ in range(repeats):
                replay()
    snapshot = profiler.snapshot()
    per_amp = {
        name: timing.mean_seconds / dim
        for name, timing in snapshot.kernels.items()
        if timing.calls
    }
    measurements["serial_per_amplitude_seconds"] = per_amp

    unit = per_amp.get("single", 0.0)
    factors: dict[str, float] = {}
    if unit > 0.0:
        for kind in KERNEL_KINDS:
            measured = per_amp.get(kind)
            if measured is None:
                continue
            factor = measured / unit
            if kind == "dense":
                # The micro-circuit's dense blocks span two targets and
                # kernel_cost() re-applies multi_qubit_factor per extra
                # target, so the persisted base factor divides it out.
                factor /= 2.0
            factors[kind] = round(float(factor), 4)
        factors["single"] = 1.0

    # -- 2. per-step dispatch overhead -------------------------------------
    dispatch_units: float | None = None
    if unit > 0.0:
        tiny_builder = CircuitBuilder(2, name="cal-dispatch")
        for i in range(256):
            tiny_builder.rz(i % 2, 0.2 + 0.001 * i)
        tiny_plan = compile_plan(
            tiny_builder.build(), 2, optimize=False, batch_diagonals=False
        )
        replay = _Replayer(tiny_plan)
        per_step = _best_seconds(replay, repeats + 1) / max(1, len(tiny_plan.steps))
        # Subtract the (tiny) 4-amplitude diagonal sweep; the remainder is
        # pure step dispatch.
        sweep_units = 4.0 * factors.get("diagonal", 0.25)
        dispatch_units = round(max(1.0, per_step / unit - sweep_units), 2)
        measurements["dispatch_seconds_per_step"] = per_step

    # -- 3. thread-pool efficiencies + chunk-threshold crossover -----------
    thread_efficiency: dict[str, float] = {}
    chunk_threshold: int | None = None
    if include_threads and cores > 1 and unit > 0.0:
        engine = ParallelSimulationEngine(num_threads=cores)
        try:
            n_big = 12 if quick else 16
            forced_threshold = 1 << 8
            for kind in KERNEL_KINDS:
                plan = compile_plan(
                    kernel_microbench_circuit(kind, n_big, 2),
                    n_big,
                    optimize=False,
                    batch_diagonals=False,
                    chunk_threshold=forced_threshold,
                )
                t_serial = _best_seconds(_Replayer(plan), repeats)
                t_pool = _best_seconds(_Replayer(plan, pool=engine), repeats)
                thread_efficiency[kind] = round(
                    _amdahl_efficiency(t_serial, t_pool, cores), 4
                )
            measurements["thread_workers"] = cores

            crossover_exps = (12, 14) if quick else (12, 13, 14, 15, 16, 17)
            crossover: dict[str, dict[str, float]] = {}
            for exp in crossover_exps:
                plan = compile_plan(
                    kernel_microbench_circuit("single", exp, 2),
                    exp,
                    optimize=False,
                    batch_diagonals=False,
                    chunk_threshold=forced_threshold,
                )
                t_serial = _best_seconds(_Replayer(plan), repeats)
                t_pool = _best_seconds(_Replayer(plan, pool=engine), repeats)
                crossover[str(1 << exp)] = {"serial": t_serial, "threads": t_pool}
                if chunk_threshold is None and t_pool < t_serial * 0.97:
                    chunk_threshold = 1 << exp
            measurements["chunk_crossover_seconds"] = crossover
        finally:
            engine.close()

    # -- 4. shm per-step barrier cost --------------------------------------
    shm_barrier_units: float | None = None
    shm_workers = min(cores, 4) if cores > 1 else 0
    if include_shm and shm_workers >= 2 and unit > 0.0:
        try:
            from ..exec.shm import get_shared_state_pool

            pool = get_shared_state_pool(shm_workers)
            n_shm = 10
            plan = compile_plan(
                kernel_microbench_circuit("diagonal", n_shm, 8),
                n_shm,
                optimize=False,
                batch_diagonals=False,
                chunk_threshold=1 << 8,
            )
            if pool.can_replay(plan):
                t_serial = _best_seconds(_Replayer(plan), repeats)
                shm_profiler = ReplayProfiler()
                with profiler_installed(shm_profiler):
                    t_shm = _best_seconds(_Replayer(plan, pool=pool), repeats)
                steps = max(1, len(plan.steps))
                # The 2^10 sweep is negligible, so the wall-time excess over
                # serial is barrier/IPC cost; one barrier per step.
                barrier_seconds = max(0.0, t_shm - t_serial) / steps
                shm_barrier_units = round(max(1.0, barrier_seconds / unit), 2)
                shm_snapshot = shm_profiler.snapshot()
                measurements["shm"] = {
                    "workers": shm_workers,
                    "serial_seconds": t_serial,
                    "shm_seconds": t_shm,
                    "barrier_waits": shm_snapshot.barrier_waits,
                    "barrier_wait_seconds": shm_snapshot.barrier_wait_seconds,
                }
        except Exception as exc:  # pragma: no cover - host-dependent lane
            measurements["shm_error"] = repr(exc)

    # -- 5. stabilizer tableau per-gate cost -------------------------------
    # Times a fixed H-layer + CX-chain workload on a wide tableau; the
    # derived constant is seconds per Clifford gate per qubit-row (the
    # tableau's O(n) per-gate sweep unit), consumed by
    # SimulationCostModel.stabilizer_seconds for latency predictions.
    clifford_seconds: float | None = None
    from ..exec.stabilizer import StabilizerTableau

    n_tab = 128 if quick else 256
    tableau = StabilizerTableau(n_tab)

    def _tableau_pass() -> None:
        for q in range(n_tab):
            tableau.h(q)
        for q in range(n_tab - 1):
            tableau.cx(q, q + 1)

    gates_per_pass = 2 * n_tab - 1
    tableau_seconds = _best_seconds(_tableau_pass, repeats + 1)
    if tableau_seconds > 0.0:
        clifford_seconds = tableau_seconds / (gates_per_pass * n_tab)
        measurements["stabilizer"] = {
            "n_qubits": n_tab,
            "gates_per_pass": gates_per_pass,
            "pass_seconds": tableau_seconds,
            "seconds_per_clifford_gate": clifford_seconds,
        }

    profile = CalibrationProfile(
        created=utc_timestamp(),
        seconds_per_unit=unit if unit > 0.0 else None,
        kernel_cost_factors=factors,
        kernel_parallel_efficiency=thread_efficiency,
        plan_step_dispatch_cost=dispatch_units,
        shm_step_barrier_cost=shm_barrier_units,
        chunk_threshold=chunk_threshold,
        recommended_threads=cores if cores > 1 else None,
        recommended_shm_workers=shm_workers if shm_barrier_units is not None else None,
        seconds_per_clifford_gate=clifford_seconds,
        measurements=measurements,
    )
    if profile_path is not None:
        profile.save(profile_path)
    return profile
