"""CLI: ``python -m repro.calibrate [--quick] [--output PATH] [--show]``."""

from __future__ import annotations

import argparse
import sys

from .harness import run_calibration
from .profile import CalibrationProfile, default_profile_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.calibrate",
        description="Micro-benchmark this host and persist a calibration profile.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller states / fewer repeats (CI)"
    )
    parser.add_argument(
        "--output",
        default=None,
        help=f"profile path (default: {default_profile_path()})",
    )
    parser.add_argument(
        "--no-threads", action="store_true", help="skip thread-pool measurements"
    )
    parser.add_argument(
        "--no-shm", action="store_true", help="skip shared-memory lane measurements"
    )
    parser.add_argument(
        "--show",
        action="store_true",
        help="print the existing profile at --output and exit (no measurement)",
    )
    args = parser.parse_args(argv)
    path = args.output if args.output is not None else default_profile_path()

    if args.show:
        profile = CalibrationProfile.load(path)
        print(profile.to_json())
        age = profile.age_days()
        print(
            "profile age: "
            + (f"{age:.1f} days" if age is not None else "unknown (undated)"),
            file=sys.stderr,
        )
        return 0

    profile = run_calibration(
        quick=args.quick,
        include_threads=not args.no_threads,
        include_shm=not args.no_shm,
    )
    saved = profile.save(path)
    print(profile.to_json())
    print(f"calibration profile written to {saved}", file=sys.stderr)

    if not args.no_shm:
        # The shm stage may have spun worker processes up through the shared
        # registry; leave nothing running behind a one-shot CLI.
        from ..exec.shm import shutdown_shared_state_pools

        shutdown_shared_state_pools()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
