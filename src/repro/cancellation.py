"""Cooperative cancellation and deadlines for in-flight executions.

A :class:`CancelToken` is the one object every execution lane consults to
decide whether to keep going: the broker creates one per job (carrying the
job's absolute deadline), installs it as the *ambient* token around the
batch execution, and every layer below — plan compilation, the serial and
chunk-parallel replay loops, the sharded workers (the deadline ships with
the chunk), the shm ack loop — calls :meth:`CancelToken.check` at its
natural boundaries.  A tripped token raises a typed error
(:class:`~repro.exceptions.JobCancelled` or
:class:`~repro.exceptions.DeadlineExceeded`), never kills a worker, and
never leaves shared state locked: abandoning a replay mid-flight costs one
discarded state buffer.

The ambient mechanism mirrors the profiler's (:mod:`repro.obs.profiler`):
a thread-local slot read once per replay, so the disabled path costs one
attribute load and a ``None`` check — nothing on the per-step hot path.

Deadlines are **wall-clock** (``time.time``) because they cross process
boundaries: a shard or shm worker on the same host compares against the
same clock the broker stamped.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Sequence

from .exceptions import DeadlineExceeded, JobCancelled

__all__ = [
    "CancelToken",
    "combine_tokens",
    "active_cancel_token",
    "cancel_scope",
]


class CancelToken:
    """A cancel flag plus an optional absolute wall-clock deadline."""

    __slots__ = ("deadline", "_cancelled")

    def __init__(self, deadline: float | None = None, timeout: float | None = None):
        """``deadline`` is absolute (``time.time()``-based); ``timeout`` is
        relative seconds from now.  When both are given the earlier wins."""
        resolved = deadline
        if timeout is not None:
            relative = time.time() + float(timeout)
            resolved = relative if resolved is None else min(resolved, relative)
        self.deadline = resolved
        self._cancelled = False

    # -- state ----------------------------------------------------------------
    def cancel(self) -> None:
        """Request cooperative cancellation (idempotent, thread-safe: a bool
        store is atomic under the GIL and monotonic — never un-set)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.time() if now is None else now) >= self.deadline

    def remaining(self, now: float | None = None) -> float | None:
        """Seconds until the deadline (``None`` = unbounded, floor 0.0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - (time.time() if now is None else now))

    # -- the boundary check ----------------------------------------------------
    def check(self) -> None:
        """Raise the typed error if this token has tripped.

        Cancellation wins over an expired deadline: an explicit client
        action is more informative than the clock running out.
        """
        if self._cancelled:
            raise JobCancelled("job was cancelled by the client")
        if self.expired():
            raise DeadlineExceeded(
                f"job deadline passed (deadline={self.deadline:.3f}, "
                f"now={time.time():.3f})"
            )

    def __repr__(self) -> str:
        return (
            f"CancelToken(cancelled={self._cancelled}, deadline={self.deadline})"
        )


class _CombinedToken(CancelToken):
    """A batch-level view over several riders' tokens.

    The batch should keep running while *any* rider still wants the result:
    ``cancelled`` only when every part is cancelled, and the deadline is the
    latest of the parts (unbounded if any part is unbounded).  Individual
    riders are still triaged against their own tokens at reconcile time.
    """

    __slots__ = ("_parts",)

    def __init__(self, parts: Sequence[CancelToken]):
        deadline: float | None = None
        unbounded = False
        for part in parts:
            if part.deadline is None:
                unbounded = True
            elif deadline is None or part.deadline > deadline:
                deadline = part.deadline
        super().__init__(deadline=None if unbounded else deadline)
        self._parts = tuple(parts)

    @property
    def cancelled(self) -> bool:  # type: ignore[override]
        return self._cancelled or all(part.cancelled for part in self._parts)

    def check(self) -> None:
        if self.cancelled:
            raise JobCancelled("job was cancelled by the client")
        if self.expired():
            raise DeadlineExceeded(
                f"job deadline passed (deadline={self.deadline:.3f}, "
                f"now={time.time():.3f})"
            )


def combine_tokens(parts: Sequence[CancelToken]) -> CancelToken:
    """One token for a coalesced batch: run while any rider still wants it."""
    if len(parts) == 1:
        return parts[0]
    return _CombinedToken(parts)


# ---------------------------------------------------------------------------
# Ambient (thread-local) token
# ---------------------------------------------------------------------------

_tls = threading.local()


def active_cancel_token() -> CancelToken | None:
    """The ambient token installed on this thread (``None`` = uncancellable)."""
    return getattr(_tls, "token", None)


@contextmanager
def cancel_scope(token: CancelToken | None) -> Iterator[None]:
    """Install ``token`` as the ambient token for the duration of the block.

    ``None`` is accepted and installs nothing, so callers can thread an
    optional token without branching.
    """
    if token is None:
        yield
        return
    previous = getattr(_tls, "token", None)
    _tls.token = token
    try:
        yield
    finally:
        _tls.token = previous
