"""Qubit-register allocation (``qalloc``) and the global buffer map.

The paper's first data-race example is ``qalloc()``: the original
implementation inserts into a global ``std::map`` without synchronisation, so
concurrent allocations corrupt the map.  This module reproduces both sides:

* in thread-safe mode, insertions are protected by a module-level lock
  (Listing 6 of the paper), and
* in legacy mode, the insertion happens without the lock inside a race
  detector scope so tests and the ablation benchmark can observe the unsafe
  concurrent accesses that motivated the fix.
"""

from __future__ import annotations

import threading

from ..config import get_config
from ..exceptions import AllocationError
from .buffer import AcceleratorBuffer
from .qreg import qreg

__all__ = [
    "qalloc",
    "get_allocated_buffer",
    "allocated_buffer_count",
    "clear_allocated_buffers",
]

#: Global map of allocated buffers, keyed by buffer name (the analogue of
#: XACC's ``allocated_buffers`` global ``std::map``).
_allocated_buffers: dict[str, AcceleratorBuffer] = {}

#: The mutex from Listing 6 of the paper.
_allocation_lock = threading.Lock()


def qalloc(n_qubits: int) -> qreg:
    """Allocate an ``n_qubits`` register and track it in the global buffer map."""
    if n_qubits < 1:
        raise AllocationError(f"qalloc requires at least 1 qubit, got {n_qubits}")
    buffer = AcceleratorBuffer(n_qubits)
    if get_config().thread_safe:
        with _allocation_lock:
            _allocated_buffers[buffer.name] = buffer
    else:
        from ..core.race_detector import get_race_detector

        with get_race_detector().access("allocated_buffers", safe=False):
            _allocated_buffers[buffer.name] = buffer
    return qreg(buffer)


def get_allocated_buffer(name: str) -> AcceleratorBuffer:
    """Look up a previously allocated buffer by name."""
    with _allocation_lock:
        try:
            return _allocated_buffers[name]
        except KeyError as exc:
            raise AllocationError(f"no allocated buffer named {name!r}") from exc


def allocated_buffer_count() -> int:
    """Number of live allocations (used by tests and the race demonstrations)."""
    with _allocation_lock:
        return len(_allocated_buffers)


def clear_allocated_buffers() -> None:
    """Drop every tracked allocation (test helper)."""
    with _allocation_lock:
        _allocated_buffers.clear()
