"""Simulated remote (cloud-queued) backend (``"remote-qpp"``).

The paper motivates ``std::async`` with scenarios where the QPU side is a
cloud service or a long-running compilation job.  We do not have a cloud
QPU, so this backend emulates one: jobs are serialized (the circuit goes
through the JSON round trip, as it would over the wire), placed on a FIFO
queue served by a single worker thread, and subject to a configurable
synthetic latency.  The substitution preserves the behaviour that matters
for the programming model — kernel launches return after a delay and
overlap with classical work — while staying fully local and deterministic.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

from ..exceptions import AcceleratorError, ExecutionError
from ..ir.composite import CompositeInstruction
from ..ir.serialization import circuit_from_json, circuit_to_json
from .accelerator import Accelerator, Cloneable
from .buffer import AcceleratorBuffer
from .qpp_accelerator import QppAccelerator

__all__ = ["RemoteAccelerator", "RemoteJob"]


@dataclass
class RemoteJob:
    """Handle for a queued remote execution."""

    job_id: int
    buffer: AcceleratorBuffer
    _done: threading.Event = field(default_factory=threading.Event)
    _error: BaseException | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> AcceleratorBuffer:
        """Block until the job finishes and return the filled buffer."""
        if not self._done.wait(timeout):
            raise ExecutionError(f"remote job {self.job_id} did not finish in time")
        if self._error is not None:
            raise ExecutionError(f"remote job {self.job_id} failed: {self._error}") from self._error
        return self.buffer


class RemoteAccelerator(Accelerator, Cloneable):
    """FIFO-queued backend with synthetic submission latency."""

    backend_name = "remote-qpp"

    def __init__(self, options: Mapping[str, object] | None = None):
        super().__init__(options)
        self.latency_seconds = float(self.options.get("latency-seconds", 0.01) or 0.0)
        self._local = QppAccelerator(dict(self.options))
        self._queue: "queue.Queue[tuple[RemoteJob, str, int] | None]" = queue.Queue()
        self._job_counter = 0
        self._counter_lock = threading.Lock()
        self._worker = threading.Thread(target=self._serve, daemon=True)
        self._worker.start()

    def clone(self) -> "RemoteAccelerator":
        return RemoteAccelerator(dict(self.options))

    @property
    def is_remote(self) -> bool:
        return True

    # -- job queue -----------------------------------------------------------------
    def _serve(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job, payload, shots = item
            try:
                if self.latency_seconds:
                    time.sleep(self.latency_seconds)
                circuit = circuit_from_json(payload)
                self._local.execute(job.buffer, circuit, shots=shots)
            except BaseException as exc:  # propagate through the job handle
                job._error = exc
            finally:
                job._done.set()
                self._queue.task_done()

    def submit(
        self,
        buffer: AcceleratorBuffer,
        circuit: CompositeInstruction,
        shots: int | None = None,
    ) -> RemoteJob:
        """Queue a circuit for execution; returns immediately with a job handle."""
        self._check_size(buffer, circuit)
        if circuit.is_parameterized:
            raise AcceleratorError(f"circuit {circuit.name!r} has unbound parameters")
        shots = self._resolve_shots(shots)
        with self._counter_lock:
            self._job_counter += 1
            job = RemoteJob(self._job_counter, buffer)
        payload = circuit_to_json(circuit)
        self._queue.put((job, payload, shots))
        return job

    def execute(
        self,
        buffer: AcceleratorBuffer,
        circuit: CompositeInstruction,
        shots: int | None = None,
    ) -> AcceleratorBuffer:
        """Synchronous execution: submit and wait."""
        job = self.submit(buffer, circuit, shots=shots)
        return job.result(timeout=60.0)

    def shutdown(self) -> None:
        """Stop the worker thread (used by tests; idempotent)."""
        self._queue.put(None)
        self._worker.join(timeout=5.0)
