"""The Quantum++-style state-vector backend (``"qpp"``).

This is the backend the paper's evaluation uses.  Execution path:

1. look the circuit up in the process-wide execution-plan cache (keyed by
   the same content hash the job broker uses) — repeat executions of hot
   circuits skip IR optimisation, matrix construction and kernel
   classification entirely,
2. replay the compiled plan on a dense :class:`StateVector` (a tight loop
   over specialised kernels with a reusable scratch buffer),
3. sample the measured qubits ``shots`` times (through the
   :class:`ParallelSimulationEngine`, the analogue of Quantum++'s OpenMP
   parallelism), and
4. store the histogram and some execution metadata into the buffer.

Circuits containing mid-circuit ``RESET`` instructions fall back to
trajectory simulation (one plan replay per shot), also distributed over
the engine's worker pool.  Setting the ``use-plans`` option to ``False``
restores the historical gate-by-gate dispatch (useful for A/B
benchmarks); ``optimize=False`` skips the IR pass pipeline in both modes.
"""

from __future__ import annotations

import time
from typing import Mapping

from ..config import get_config
from ..exceptions import AcceleratorError
from ..ir.composite import CompositeInstruction
from ..ir.transforms import default_pass_manager
from ..simulator.parallel_engine import ParallelSimulationEngine
from ..simulator.plan_cache import get_plan_cache
from ..simulator.statevector import StateVector
from .accelerator import Accelerator, Cloneable
from .buffer import AcceleratorBuffer

__all__ = ["QppAccelerator"]


class QppAccelerator(Accelerator, Cloneable):
    """Dense state-vector simulator backend."""

    backend_name = "qpp"

    def __init__(self, options: Mapping[str, object] | None = None):
        super().__init__(options)
        self._engine = ParallelSimulationEngine(
            num_threads=self._option_int("threads", default=None)
        )

    # -- configuration -----------------------------------------------------------
    def _option_int(self, key: str, default: int | None) -> int | None:
        value = self.options.get(key, default)
        if value is None:
            return None
        return int(value)  # type: ignore[arg-type]

    def update_configuration(self, options: Mapping[str, object]) -> None:
        super().update_configuration(options)
        if "threads" in options:
            self._engine.num_threads = int(options["threads"])  # type: ignore[arg-type]

    def clone(self) -> "QppAccelerator":
        return QppAccelerator(dict(self.options))

    @property
    def num_threads(self) -> int:
        """Simulator worker threads (``OMP_NUM_THREADS`` analogue)."""
        return self._engine.effective_threads()

    # -- execution ------------------------------------------------------------------
    def execute(
        self,
        buffer: AcceleratorBuffer,
        circuit: CompositeInstruction,
        shots: int | None = None,
    ) -> AcceleratorBuffer:
        self._check_size(buffer, circuit)
        if circuit.is_parameterized:
            raise AcceleratorError(
                f"circuit {circuit.name!r} has unbound parameters "
                f"{sorted(p.name for p in circuit.free_parameters)}"
            )
        shots = self._resolve_shots(shots)
        seed = get_config().seed
        optimize = bool(self.options.get("optimize", True))
        use_plans = bool(self.options.get("use-plans", True))

        started = time.perf_counter()
        if use_plans:
            plan, plan_cached = get_plan_cache().lookup_or_compile(
                circuit, n_qubits=buffer.size, optimize=optimize
            )
            measured = plan.measured_qubits
            if plan.has_reset:
                counts = self._engine.run_trajectories(
                    buffer.size, circuit, shots, seed=seed, plan=plan
                )
            else:
                state = StateVector(buffer.size)
                state.apply_plan(plan)
                target_qubits = measured or tuple(range(buffer.size))
                counts = self._engine.sample_parallel(
                    state, shots, target_qubits, seed=seed
                )
            depth, gates = plan.depth, plan.n_gates
        else:
            plan_cached = False
            if optimize:
                circuit = default_pass_manager().run(circuit)
            has_reset = any(inst.name == "RESET" for inst in circuit)
            measured = circuit.measured_qubits()
            if has_reset:
                counts = self._engine.run_trajectories(
                    buffer.size, circuit, shots, seed=seed
                )
            else:
                state = StateVector(buffer.size)
                for instruction in circuit:
                    if instruction.is_measurement:
                        continue
                    state.apply(instruction)
                target_qubits = measured or tuple(range(buffer.size))
                counts = self._engine.sample_parallel(
                    state, shots, target_qubits, seed=seed
                )
            depth, gates = circuit.depth(), circuit.n_gates
        elapsed = time.perf_counter() - started

        for bitstring, count in counts.items():
            buffer.add_measurement(bitstring, count)
        buffer.information.update(
            {
                "backend": self.name(),
                "shots": shots,
                "threads": self.num_threads,
                "execution-time-seconds": elapsed,
                "circuit-depth": depth,
                "circuit-gates": gates,
                "plan-cached": plan_cached,
            }
        )
        return buffer
