"""The Quantum++-style state-vector backend (``"qpp"``).

This is the backend the paper's evaluation uses.  Since the execution-layer
refactor it is a *thin adapter* over the unified
:class:`~repro.exec.backend.ExecutionBackend` seam:

* by default execution goes through a :class:`~repro.exec.backend.LocalBackend`
  (shared execution-plan cache + this clone's
  :class:`~repro.simulator.parallel_engine.ParallelSimulationEngine`), which
  replays compiled plans and samples through the engine's worker threads —
  the compile-once/execute-many pipeline;
* setting the ``processes`` option to ``N > 1`` routes execution through the
  process-wide :class:`~repro.exec.sharded.ShardedExecutor` instead: the
  shot budget is sharded across ``N`` persistent worker processes, each
  replaying from its own plan cache — the path that scales past the GIL.
  Fixed-seed counts are bit-identical to the in-process path with
  ``threads == N``.
* setting the ``shm-processes`` option to ``N > 1`` keeps execution local
  but replays each *single large state* (at or above the plan's chunk
  threshold) across the ``N`` worker processes of a shared
  :class:`~repro.exec.shm.SharedStatePool` — shared-memory amplitude
  buffers, a barrier per kernel step, bitwise identical to serial replay.
  This is the ≥20-qubit lane: ``processes`` shards *shots*, ``shm-processes``
  shards *one state*; when both are set, ``processes`` wins.

Circuits containing mid-circuit ``RESET`` instructions fall back to
trajectory simulation (one plan replay per shot), distributed the same way.
Setting the ``use-plans`` option to ``False`` restores the historical
gate-by-gate dispatch (useful for A/B benchmarks); ``optimize=False`` skips
the IR pass pipeline in both modes.
"""

from __future__ import annotations

import time
from typing import Mapping

from ..config import get_config
from ..exceptions import AcceleratorError
from ..exec.backend import ExecutionBackend, LocalBackend
from ..ir.composite import CompositeInstruction
from ..ir.transforms import default_pass_manager
from ..simulator.parallel_engine import ParallelSimulationEngine
from ..simulator.statevector import StateVector
from .accelerator import Accelerator, Cloneable
from .buffer import AcceleratorBuffer

__all__ = ["QppAccelerator"]


class QppAccelerator(Accelerator, Cloneable):
    """Dense state-vector simulator backend (adapter over the exec seam)."""

    backend_name = "qpp"

    def __init__(self, options: Mapping[str, object] | None = None):
        super().__init__(options)
        self._engine = ParallelSimulationEngine(
            num_threads=self._option_int("threads", default=None)
        )
        self._local_backend = LocalBackend(engine=self._engine)

    # -- configuration -----------------------------------------------------------
    def _option_int(self, key: str, default: int | None) -> int | None:
        value = self.options.get(key, default)
        if value is None:
            return None
        return int(value)  # type: ignore[arg-type]

    def update_configuration(self, options: Mapping[str, object]) -> None:
        super().update_configuration(options)
        if "threads" in options:
            self._engine.num_threads = int(options["threads"])  # type: ignore[arg-type]

    def clone(self) -> "QppAccelerator":
        return QppAccelerator(dict(self.options))

    @property
    def num_threads(self) -> int:
        """Simulator worker threads (``OMP_NUM_THREADS`` analogue)."""
        return self._engine.effective_threads()

    @property
    def num_processes(self) -> int:
        """Process shards requested via the ``processes`` option (0 = off)."""
        value = self._option_int("processes", default=0) or 0
        return value if value > 1 else 0

    @property
    def num_shm_processes(self) -> int:
        """Shared-memory replay workers via ``shm-processes`` (0 = off)."""
        value = self._option_int("shm-processes", default=0) or 0
        return value if value > 1 else 0

    @property
    def num_shm_states(self) -> int:
        """Resident shm states via ``shm-states`` (1 = single-state pool)."""
        value = self._option_int("shm-states", default=1) or 1
        return max(1, value)

    def execution_backend(self) -> ExecutionBackend:
        """The :class:`ExecutionBackend` this clone currently dispatches to.

        Sharded executors and shared-memory pools are process-wide
        singletons shared by every clone asking for the same worker count,
        so a broker's worker threads all feed one set of warm worker
        processes.
        """
        processes = self.num_processes
        if processes:
            from ..exec.sharded import get_sharded_executor

            return get_sharded_executor(processes)
        shm = self.num_shm_processes
        if shm:
            from ..exec.shm import get_shared_state_pool

            budget = self._option_int("memory-budget-bytes", default=None)
            self._local_backend.shm_pool = get_shared_state_pool(
                shm, self.num_shm_states, byte_budget=budget
            )
        else:
            self._local_backend.shm_pool = None
        # Opt-in measured lane routing: consult the calibrated cost model
        # per plan instead of the fixed shm-if-available policy.
        self._local_backend.adaptive = bool(self.options.get("adaptive-lane", False))
        return self._local_backend

    # -- execution ------------------------------------------------------------------
    def execute(
        self,
        buffer: AcceleratorBuffer,
        circuit: CompositeInstruction,
        shots: int | None = None,
    ) -> AcceleratorBuffer:
        # Explicit simulation-method override.  "auto" here means *dense*:
        # this adapter is one dispatch target, not a router — automatic
        # Clifford routing is the job broker's decision (it sizes admission
        # and skips the shard lane accordingly).  "stabilizer" is the direct
        # tableau path for callers driving the accelerator without a broker.
        method = str(self.options.get("method", "auto")).strip().lower()
        if method not in ("auto", "statevector", "stabilizer"):
            raise AcceleratorError(
                f"unknown simulation method {self.options.get('method')!r}; "
                f"expected 'auto', 'statevector' or 'stabilizer'"
            )
        if method == "stabilizer":
            return self._execute_stabilizer(buffer, circuit, shots)
        self._check_size(buffer, circuit)
        if circuit.is_parameterized:
            raise AcceleratorError(
                f"circuit {circuit.name!r} has unbound parameters "
                f"{sorted(p.name for p in circuit.free_parameters)}"
            )
        shots = self._resolve_shots(shots)
        seed = get_config().seed
        optimize = bool(self.options.get("optimize", True))
        use_plans = bool(self.options.get("use-plans", True))
        # Plan-replay tuning knobs (performance only — neither changes the
        # measurement distribution; both are non-semantic job-key options).
        batch_diagonals = bool(self.options.get("batch-diagonals", True))
        chunk_threshold = self._option_int("chunk-threshold", default=None)
        # Precision is *semantic*: complex64 replay changes the sampled
        # distribution within the documented fidelity bound, so it
        # participates in job keys and cache identity.
        precision = str(self.options.get("precision", "double"))

        if use_plans:
            result = self.execution_backend().execute(
                circuit,
                shots,
                n_qubits=buffer.size,
                seed=seed,
                optimize=optimize,
                batch_diagonals=batch_diagonals,
                chunk_threshold=chunk_threshold,
                precision=precision,
            )
            counts = result.counts
            information = {
                "execution-time-seconds": result.seconds,
                "circuit-depth": result.depth,
                "circuit-gates": result.n_gates,
                "plan-cached": result.plan_cached,
                "processes": result.shards if result.shards > 1 else 0,
            }
        else:
            if precision not in ("double", "complex128", "fp64"):
                raise AcceleratorError(
                    "the gate-by-gate path (use-plans=False) evolves in "
                    f"complex128 only; got precision={precision!r}"
                )
            counts, information = self._execute_gate_by_gate(
                buffer, circuit, shots, seed, optimize
            )

        for bitstring, count in counts.items():
            buffer.add_measurement(bitstring, count)
        buffer.information.update(
            {"backend": self.name(), "shots": shots, "threads": self.num_threads}
        )
        buffer.information.update(information)
        return buffer

    def _execute_stabilizer(
        self,
        buffer: AcceleratorBuffer,
        circuit: CompositeInstruction,
        shots: int | None,
    ) -> AcceleratorBuffer:
        """Tableau execution for an explicit ``method: "stabilizer"``.

        Deliberately skips :meth:`_check_size`: the ``max_qubits`` ceiling
        guards dense amplitude allocation (``2**n`` complex values), while
        the tableau allocates O(n²) *bits* — a 500-qubit register is ~1 MB.
        Non-Clifford circuits fail with the classifier's obstruction.
        """
        from ..exec.stabilizer import StabilizerBackend

        if circuit.is_parameterized:
            raise AcceleratorError(
                f"circuit {circuit.name!r} has unbound parameters "
                f"{sorted(p.name for p in circuit.free_parameters)}"
            )
        shots = self._resolve_shots(shots)
        result = StabilizerBackend().execute(
            circuit, shots, n_qubits=buffer.size, seed=get_config().seed
        )
        for bitstring, count in result.counts.items():
            buffer.add_measurement(bitstring, count)
        buffer.information.update(
            {
                "backend": self.name(),
                "shots": shots,
                "threads": self.num_threads,
                "method": "stabilizer",
                "execution-time-seconds": result.seconds,
                "circuit-depth": result.depth,
                "circuit-gates": result.n_gates,
                "plan-cached": False,
                "processes": 0,
            }
        )
        return buffer

    def _execute_gate_by_gate(
        self,
        buffer: AcceleratorBuffer,
        circuit: CompositeInstruction,
        shots: int,
        seed: int | None,
        optimize: bool,
    ) -> tuple[dict[str, int], dict[str, object]]:
        """The historical pre-plan path, kept verbatim for A/B benchmarks."""
        started = time.perf_counter()
        if optimize:
            circuit = default_pass_manager().run(circuit)
        has_reset = any(inst.name == "RESET" for inst in circuit)
        measured = circuit.measured_qubits()
        if has_reset:
            counts = self._engine.run_trajectories(buffer.size, circuit, shots, seed=seed)
        else:
            state = StateVector(buffer.size)
            for instruction in circuit:
                if instruction.is_measurement:
                    continue
                state.apply(instruction)
            target_qubits = measured or tuple(range(buffer.size))
            counts = self._engine.sample_parallel(state, shots, target_qubits, seed=seed)
        elapsed = time.perf_counter() - started
        return counts, {
            "execution-time-seconds": elapsed,
            "circuit-depth": circuit.depth(),
            "circuit-gates": circuit.n_gates,
            "plan-cached": False,
            "processes": 0,
        }
