"""Accelerator interface and the Cloneable mixin.

The paper's data-race analysis centres on ``xacc::getService<Accelerator>``:
services that are **not** cloneable are handed out as a single shared
instance, so concurrent kernels register their gates onto the same simulator
object and corrupt each other's circuits.  The fix is (i) making
accelerators :class:`Cloneable` so every ``get_accelerator`` call can return
a fresh instance, and (ii) mapping each user thread to its own instance via
the QPUManager (see :mod:`repro.core.qpu_manager`).

Backends implement :meth:`Accelerator.execute`, which consumes an IR circuit
and fills an :class:`~repro.runtime.buffer.AcceleratorBuffer` with
measurement counts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..exceptions import AcceleratorError
from ..ir.composite import CompositeInstruction
from .buffer import AcceleratorBuffer

__all__ = ["Accelerator", "Cloneable"]


class Cloneable:
    """Marker mixin for services that may be instantiated per caller.

    Mirrors ``xacc::Cloneable``: the service registry returns a *new*
    instance of cloneable services on every lookup (when running in
    thread-safe mode), which removes the shared-instance data race the paper
    describes.
    """

    def clone(self):
        """Return a fresh instance configured like this one.

        The default implementation re-constructs the type with no arguments
        and copies the ``options`` mapping if present; services with richer
        state override this.
        """
        clone = type(self)()
        if hasattr(self, "options") and hasattr(clone, "options"):
            clone.options.update(self.options)  # type: ignore[attr-defined]
        return clone


class Accelerator:
    """Abstract quantum backend.

    Concrete backends provide :meth:`execute`; the base class implements
    option handling, batched execution and introspection shared by all of
    them.
    """

    #: Registry name of the backend (e.g. ``"qpp"``).
    backend_name = "abstract"

    def __init__(self, options: Mapping[str, object] | None = None):
        self.options: dict[str, object] = dict(options or {})
        self._initialized = False

    # -- lifecycle ----------------------------------------------------------------
    def initialize(self, options: Mapping[str, object] | None = None) -> None:
        """Prepare the backend; may be called once per instance."""
        if options:
            # Route through update_configuration so backends that react to
            # option changes (e.g. the qpp thread count) see them here too.
            self.update_configuration(options)
        self._initialized = True

    def update_configuration(self, options: Mapping[str, object]) -> None:
        """Update backend options after initialisation (XACC's ``updateConfiguration``)."""
        self.options.update(options)

    @property
    def is_initialized(self) -> bool:
        return self._initialized

    def name(self) -> str:
        """Registry name of this backend."""
        return self.backend_name

    # -- capabilities ----------------------------------------------------------------
    @property
    def is_remote(self) -> bool:
        """True for backends that submit to an external (possibly queued) service."""
        return False

    @property
    def supports_noise(self) -> bool:
        return False

    def max_qubits(self) -> int:
        """Largest register this backend accepts."""
        return 26

    # -- execution ---------------------------------------------------------------------
    def execute(
        self,
        buffer: AcceleratorBuffer,
        circuit: CompositeInstruction,
        shots: int | None = None,
    ) -> AcceleratorBuffer:
        """Run ``circuit`` and store measurement counts into ``buffer``."""
        raise NotImplementedError

    def execute_batch(
        self,
        buffer: AcceleratorBuffer,
        circuits: Sequence[CompositeInstruction],
        shots: int | None = None,
    ) -> list[dict[str, int]]:
        """Run several circuits against the same register.

        Returns the per-circuit histograms; the buffer accumulates the union
        and records per-circuit counts under ``information["batch"]``.
        """
        results: list[dict[str, int]] = []
        for circuit in circuits:
            scratch = AcceleratorBuffer(buffer.size, name=f"{buffer.name}_{circuit.name}")
            self.execute(scratch, circuit, shots=shots)
            counts = scratch.get_measurement_counts()
            results.append(counts)
            for bitstring, count in counts.items():
                buffer.add_measurement(bitstring, count)
        buffer.information.setdefault("batch", []).extend(  # type: ignore[union-attr]
            {"circuit": c.name, "counts": r} for c, r in zip(circuits, results)
        )
        return results

    # -- helpers ------------------------------------------------------------------------
    def _resolve_shots(self, shots: int | None) -> int:
        from ..config import get_config

        value = shots if shots is not None else int(self.options.get("shots", 0)) or get_config().shots
        if value <= 0:
            raise AcceleratorError(f"shots must be positive, got {value}")
        return value

    def _check_size(self, buffer: AcceleratorBuffer, circuit: CompositeInstruction) -> None:
        if circuit.n_qubits > buffer.size:
            raise AcceleratorError(
                f"circuit {circuit.name!r} needs {circuit.n_qubits} qubit(s) but the "
                f"buffer only has {buffer.size}"
            )
        if buffer.size > self.max_qubits():
            raise AcceleratorError(
                f"{self.name()} supports at most {self.max_qubits()} qubits, "
                f"requested {buffer.size}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(options={self.options!r})"
