"""AcceleratorBuffer: the measurement-result container.

Mirrors XACC's ``AcceleratorBuffer`` (Listing 2 of the paper): it records the
register name, size, a free-form information dictionary and the measurement
histogram, and can render itself as the JSON-ish text the paper shows.
"""

from __future__ import annotations

import json
import threading
from typing import Iterable, Mapping

from ..exceptions import ExecutionError

__all__ = ["AcceleratorBuffer"]

#: Monotonically increasing counter used to generate unique buffer names.
_name_counter = 0
_name_lock = threading.Lock()


def _generate_name() -> str:
    """Generate a unique buffer name like ``qrg_000017``.

    The original QCOR generates random suffixes (``qrg_bmQBh``); a counter
    keeps names unique *and* deterministic, which the test suite relies on.
    """
    global _name_counter
    with _name_lock:
        _name_counter += 1
        return f"qrg_{_name_counter:06d}"


class AcceleratorBuffer:
    """Holds the results of executing quantum kernels on a register."""

    def __init__(self, size: int, name: str | None = None):
        if size < 1:
            raise ExecutionError(f"buffer size must be at least 1, got {size}")
        self.name = name or _generate_name()
        self.size = int(size)
        #: Free-form metadata recorded by backends (e.g. expectation values).
        self.information: dict[str, object] = {}
        self._measurements: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- measurements -----------------------------------------------------------
    def add_measurement(self, bitstring: str, count: int = 1) -> None:
        """Accumulate ``count`` observations of ``bitstring``."""
        self._validate_bitstring(bitstring)
        if count < 0:
            raise ExecutionError(f"count must be non-negative, got {count}")
        with self._lock:
            self._measurements[bitstring] = self._measurements.get(bitstring, 0) + int(count)

    def set_measurements(self, counts: Mapping[str, int]) -> None:
        """Replace the histogram wholesale (used by backends after execution)."""
        for bitstring in counts:
            self._validate_bitstring(bitstring)
        with self._lock:
            self._measurements = {k: int(v) for k, v in counts.items() if int(v) > 0}

    def get_measurement_counts(self) -> dict[str, int]:
        """Return a copy of the measurement histogram."""
        with self._lock:
            return dict(self._measurements)

    #: QCOR-style alias.
    counts = get_measurement_counts

    def total_shots(self) -> int:
        with self._lock:
            return sum(self._measurements.values())

    def probability(self, bitstring: str) -> float:
        """Empirical probability of ``bitstring``."""
        with self._lock:
            total = sum(self._measurements.values())
            if total == 0:
                raise ExecutionError("buffer holds no measurements")
            return self._measurements.get(bitstring, 0) / total

    def expectation_value_z(self, qubits: Iterable[int] | None = None) -> float:
        """Average parity ``<Z...Z>`` over the measured bitstrings.

        ``qubits`` indexes *positions within the measured bitstrings*; by
        default all positions contribute.
        """
        counts = self.get_measurement_counts()
        total = sum(counts.values())
        if total == 0:
            raise ExecutionError("buffer holds no measurements")
        accumulator = 0.0
        for bitstring, count in counts.items():
            positions = range(len(bitstring)) if qubits is None else qubits
            parity = 0
            for position in positions:
                if position >= len(bitstring):
                    raise ExecutionError(
                        f"position {position} out of range for bitstring {bitstring!r}"
                    )
                parity ^= bitstring[position] == "1"
            accumulator += (1.0 - 2.0 * parity) * count
        return accumulator / total

    def reset(self) -> None:
        """Clear measurements and information (reusing the register)."""
        with self._lock:
            self._measurements = {}
            self.information = {}

    # -- rendering ---------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "AcceleratorBuffer": {
                "name": self.name,
                "size": self.size,
                "Information": dict(self.information),
                "Measurements": self.get_measurement_counts(),
            }
        }

    def to_json(self, indent: int = 4) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def print(self) -> None:
        """Print the buffer in the paper's Listing 2 style."""
        print(self.to_json())

    def __repr__(self) -> str:
        return (
            f"AcceleratorBuffer(name={self.name!r}, size={self.size}, "
            f"shots={self.total_shots()})"
        )

    # -- internal -------------------------------------------------------------------
    def _validate_bitstring(self, bitstring: str) -> None:
        if not bitstring or any(c not in "01" for c in bitstring):
            raise ExecutionError(f"invalid measurement bitstring {bitstring!r}")
