"""Density-matrix backend with a configurable noise model (``"noisy-qpp"``).

The paper lists noisy simulation and physical back ends as future targets for
the multi-threaded runtime; this backend exercises exactly the same
accelerator interface (and therefore the same QPUManager / cloneability
machinery) while producing noisy counts, so the thread-safety layer can be
tested against a second, stateful backend.  Like the qpp accelerator it is
a thin adapter over the execution seam — here a
:class:`~repro.exec.backend.DensityBackend`, since density-matrix evolution
has no compiled-plan form.
"""

from __future__ import annotations

from typing import Mapping

from ..config import get_config
from ..exceptions import AcceleratorError
from ..exec.backend import DensityBackend
from ..ir.composite import CompositeInstruction
from ..simulator.noise import NoiseModel, depolarizing_channel
from .accelerator import Accelerator, Cloneable
from .buffer import AcceleratorBuffer

__all__ = ["NoisyAccelerator"]


class NoisyAccelerator(Accelerator, Cloneable):
    """Density-matrix simulator with per-gate noise channels."""

    backend_name = "noisy-qpp"

    def __init__(
        self,
        options: Mapping[str, object] | None = None,
        noise_model: NoiseModel | None = None,
    ):
        super().__init__(options)
        if noise_model is None:
            probability = float(self.options.get("depolarizing-probability", 0.0) or 0.0)
            noise_model = NoiseModel()
            if probability > 0.0:
                noise_model.default_single_qubit = depolarizing_channel(probability)
                noise_model.default_two_qubit = depolarizing_channel(probability)
        self.noise_model = noise_model
        self._backend = DensityBackend(noise_model=self.noise_model)

    def clone(self) -> "NoisyAccelerator":
        return NoisyAccelerator(dict(self.options), self.noise_model)

    @property
    def supports_noise(self) -> bool:
        return True

    def max_qubits(self) -> int:
        return 13

    def execute(
        self,
        buffer: AcceleratorBuffer,
        circuit: CompositeInstruction,
        shots: int | None = None,
    ) -> AcceleratorBuffer:
        self._check_size(buffer, circuit)
        if circuit.is_parameterized:
            raise AcceleratorError(
                f"circuit {circuit.name!r} has unbound parameters"
            )
        shots = self._resolve_shots(shots)
        result = self._backend.execute(
            circuit,
            shots,
            n_qubits=buffer.size,
            seed=get_config().seed,
            # Semantic (job-key) option: "single" evolves in complex64.
            precision=str(self.options.get("precision", "double")),
        )

        for bitstring, count in result.counts.items():
            buffer.add_measurement(bitstring, count)
        buffer.information.update(
            {
                "backend": self.name(),
                "shots": shots,
                "purity": result.extra["purity"],
                "precision": result.extra["precision"],
                "execution-time-seconds": result.seconds,
            }
        )
        return buffer
