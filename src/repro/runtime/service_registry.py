"""Service registry: the ``xacc::getService`` / ``xacc::getAccelerator`` layer.

Two behaviours co-exist, selected by the global ``thread_safe`` configuration
flag, because demonstrating the *difference* is part of reproducing the
paper:

* **Thread-safe mode** (the paper's contribution): registry lookups are
  protected by a lock, and services that are :class:`Cloneable` are
  instantiated fresh on every lookup, so concurrent threads never share a
  simulator instance.
* **Legacy mode**: lookups are unlocked (their accesses are recorded by the
  race detector) and every lookup returns the same shared instance — the
  original QCOR/XACC behaviour whose data races the paper analyses.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping

from ..config import get_config
from ..exceptions import ServiceNotFoundError
from .accelerator import Accelerator, Cloneable

__all__ = [
    "ServiceRegistry",
    "get_registry",
    "reset_registry",
    "register_service",
    "get_service",
    "get_accelerator",
]


class ServiceRegistry:
    """Maps ``(kind, name)`` to service factories and shared instances."""

    def __init__(self) -> None:
        self._factories: dict[tuple[str, str], Callable[[], object]] = {}
        self._shared_instances: dict[tuple[str, str], object] = {}
        self._lock = threading.RLock()
        self._register_builtins()

    # -- registration ------------------------------------------------------------
    def register(self, kind: str, name: str, factory: Callable[[], object]) -> None:
        """Register a service factory under ``(kind, name)``."""
        key = (kind.lower(), name.lower())
        with self._lock:
            self._factories[key] = factory
            self._shared_instances.pop(key, None)

    def registered_names(self, kind: str) -> list[str]:
        """Names registered under ``kind`` (sorted)."""
        kind = kind.lower()
        with self._lock:
            return sorted(name for (k, name) in self._factories if k == kind)

    def has_service(self, kind: str, name: str) -> bool:
        return (kind.lower(), name.lower()) in self._factories

    # -- lookup ---------------------------------------------------------------------
    def get_service(self, kind: str, name: str) -> object:
        """Resolve a service instance.

        Cloneable services yield a fresh instance per call in thread-safe
        mode; everything else is a shared singleton.  In legacy mode even
        cloneable services are shared (reproducing the original behaviour).
        """
        key = (kind.lower(), name.lower())
        thread_safe = get_config().thread_safe
        factory = self._factories.get(key)
        if factory is None:
            # The requested kind appears verbatim (lookups are
            # case-insensitive, but the message must echo what was asked).
            raise ServiceNotFoundError(
                f"no service {name!r} registered under kind {kind!r}; "
                f"known {kind!r} services: {self.registered_names(kind)}"
            )
        if thread_safe:
            with self._lock:
                return self._resolve(key, factory, clone_allowed=True)
        # Legacy path: no lock, shared instances, races recorded.
        from ..core.race_detector import get_race_detector

        with get_race_detector().access("service_registry", safe=False):
            return self._resolve(key, factory, clone_allowed=False)

    def _resolve(
        self, key: tuple[str, str], factory: Callable[[], object], clone_allowed: bool
    ) -> object:
        shared = self._shared_instances.get(key)
        if shared is None:
            shared = factory()
            self._shared_instances[key] = shared
        if clone_allowed and isinstance(shared, Cloneable):
            return shared.clone()
        return shared

    def get_accelerator(
        self, name: str | None = None, options: Mapping[str, object] | None = None
    ) -> Accelerator:
        """``xacc::getAccelerator``: resolve and initialise a backend."""
        resolved_name = name or get_config().default_accelerator
        service = self.get_service("accelerator", resolved_name)
        if not isinstance(service, Accelerator):
            raise ServiceNotFoundError(
                f"service {resolved_name!r} is not an Accelerator "
                f"(got {type(service).__name__})"
            )
        service.initialize(options or {})
        return service

    # -- built-ins ------------------------------------------------------------------------
    def _register_builtins(self) -> None:
        from .noisy_accelerator import NoisyAccelerator
        from .qpp_accelerator import QppAccelerator
        from .remote_accelerator import RemoteAccelerator

        self.register("accelerator", "qpp", QppAccelerator)
        self.register("accelerator", "noisy-qpp", NoisyAccelerator)
        self.register("accelerator", "remote-qpp", RemoteAccelerator)


# ---------------------------------------------------------------------------
# Module-level singleton registry
# ---------------------------------------------------------------------------

_registry: ServiceRegistry | None = None
_registry_lock = threading.Lock()


def get_registry() -> ServiceRegistry:
    """Return the process-wide registry (created on first use)."""
    global _registry
    if _registry is None:
        with _registry_lock:
            if _registry is None:
                _registry = ServiceRegistry()
    return _registry


def reset_registry() -> ServiceRegistry:
    """Replace the process-wide registry with a fresh one (test helper)."""
    global _registry
    with _registry_lock:
        _registry = ServiceRegistry()
        return _registry


def register_service(kind: str, name: str, factory: Callable[[], object]) -> None:
    """Register a service on the process-wide registry."""
    get_registry().register(kind, name, factory)


def get_service(kind: str, name: str) -> object:
    """Resolve a service from the process-wide registry."""
    return get_registry().get_service(kind, name)


def get_accelerator(
    name: str | None = None, options: Mapping[str, object] | None = None
) -> Accelerator:
    """Resolve an accelerator from the process-wide registry."""
    return get_registry().get_accelerator(name, options)
