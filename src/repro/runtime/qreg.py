"""User-facing qubit register handle (``qreg``).

``qalloc(n)`` returns a :class:`qreg`.  Inside a ``@qpu`` kernel the register
is indexed (``q[0]``, ``q[1]``) to name the qubits a gate acts on and
``q.size()`` drives loops, exactly like the XASM kernels in the paper's
listings.  After execution, ``q.counts()`` / ``q.print()`` expose the
measurement results stored on the underlying
:class:`~repro.runtime.buffer.AcceleratorBuffer`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import AllocationError
from .buffer import AcceleratorBuffer

__all__ = ["qreg", "QubitRef"]


@dataclass(frozen=True)
class QubitRef:
    """A reference to one qubit of a register (what ``q[i]`` evaluates to)."""

    register: "qreg"
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.register.size():
            raise AllocationError(
                f"qubit index {self.index} out of range for a "
                f"{self.register.size()}-qubit register"
            )

    def __int__(self) -> int:
        return self.index

    def __index__(self) -> int:
        return self.index

    def __repr__(self) -> str:
        return f"{self.register.name()}[{self.index}]"


class qreg:  # noqa: N801 - lower-case to mirror the QCOR type name
    """A handle to an allocated qubit register."""

    def __init__(self, buffer: AcceleratorBuffer):
        self._buffer = buffer

    # -- structure ------------------------------------------------------------
    def size(self) -> int:
        """Number of qubits in the register."""
        return self._buffer.size

    def __len__(self) -> int:
        return self._buffer.size

    def __getitem__(self, index: int) -> QubitRef:
        return QubitRef(self, int(index))

    def __iter__(self):
        return (QubitRef(self, i) for i in range(self.size()))

    def name(self) -> str:
        return self._buffer.name

    @property
    def buffer(self) -> AcceleratorBuffer:
        """The underlying results buffer."""
        return self._buffer

    # -- results ----------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Measurement histogram accumulated by kernel executions."""
        return self._buffer.get_measurement_counts()

    def exp_val_z(self) -> float:
        """Average all-qubit Z parity of the recorded measurements."""
        return self._buffer.expectation_value_z()

    def print(self) -> None:
        """Print the underlying buffer (Listing 2 style)."""
        self._buffer.print()

    def reset(self) -> None:
        """Clear recorded results so the register can be reused."""
        self._buffer.reset()

    def __repr__(self) -> str:
        return f"qreg(name={self.name()!r}, size={self.size()})"
