"""XACC-like runtime substrate.

This subpackage provides the services QCOR builds on:

* :class:`AcceleratorBuffer` — measurement-result container (``qalloc``'s
  return value is a :class:`~repro.runtime.qreg.qreg` wrapping one).
* :class:`Accelerator` — backend interface; :class:`QppAccelerator` is the
  Quantum++-style state-vector backend used in the paper's evaluation,
  :class:`NoisyAccelerator` adds density-matrix noise, and
  :class:`RemoteAccelerator` emulates a queued cloud backend (useful with
  ``std::async``-style launches).
* :class:`ServiceRegistry` — the ``xacc::getService`` /
  ``xacc::getAccelerator`` mechanism, including the *cloneable vs shared
  singleton* distinction at the heart of the paper's data-race analysis.
* :func:`qalloc` — qubit-register allocation backed by a global buffer map
  (thread-safe or legacy behaviour depending on configuration).
"""

from .buffer import AcceleratorBuffer
from .accelerator import Accelerator, Cloneable
from .qpp_accelerator import QppAccelerator
from .noisy_accelerator import NoisyAccelerator
from .remote_accelerator import RemoteAccelerator, RemoteJob
from .service_registry import (
    ServiceRegistry,
    get_registry,
    get_service,
    get_accelerator,
    register_service,
    reset_registry,
)
from .allocation import qalloc, allocated_buffer_count, clear_allocated_buffers, get_allocated_buffer
from .qreg import qreg, QubitRef

__all__ = [
    "AcceleratorBuffer",
    "Accelerator",
    "Cloneable",
    "QppAccelerator",
    "NoisyAccelerator",
    "RemoteAccelerator",
    "RemoteJob",
    "ServiceRegistry",
    "get_registry",
    "get_service",
    "get_accelerator",
    "register_service",
    "reset_registry",
    "qalloc",
    "allocated_buffer_count",
    "clear_allocated_buffers",
    "get_allocated_buffer",
    "qreg",
    "QubitRef",
]
