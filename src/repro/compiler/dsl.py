"""Gate functions for the ``@qpu`` Python DSL.

Inside a ``@qpu`` kernel, gate calls like ``H(q[0])`` or ``Ry(q[1], theta)``
do not execute anything immediately: they append instructions to the
*active trace* of the calling thread.  The trace context is thread-local, so
kernels traced concurrently from different user threads never interleave —
one more place where the reproduction has to be explicitly thread-aware.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..exceptions import CompilationError
from ..ir.composite import CompositeInstruction
from ..ir.gates import create_gate
from ..ir.parameter import Parameter, ParameterExpression

__all__ = [
    "H",
    "X",
    "Y",
    "Z",
    "S",
    "Sdg",
    "T",
    "Tdg",
    "Rx",
    "Ry",
    "Rz",
    "U3",
    "CX",
    "CNOT",
    "CY",
    "CZ",
    "CH",
    "CRz",
    "CPhase",
    "Swap",
    "CCX",
    "Measure",
    "Reset",
    "Barrier",
    "active_trace",
    "trace_context",
]

_state = threading.local()


def _current_trace() -> CompositeInstruction:
    trace = getattr(_state, "trace", None)
    if trace is None:
        raise CompilationError(
            "gate functions may only be called inside a @qpu kernel "
            "(no active trace on this thread)"
        )
    return trace


def active_trace() -> CompositeInstruction | None:
    """The circuit currently being traced on this thread (or ``None``)."""
    return getattr(_state, "trace", None)


class trace_context:  # noqa: N801 - context-manager, lower-case by convention
    """Install a fresh trace circuit for the calling thread."""

    def __init__(self, name: str, n_qubits: int | None = None):
        self.circuit = CompositeInstruction(name, n_qubits)
        self._previous: CompositeInstruction | None = None

    def __enter__(self) -> CompositeInstruction:
        self._previous = getattr(_state, "trace", None)
        _state.trace = self.circuit
        return self.circuit

    def __exit__(self, exc_type, exc, tb) -> None:
        _state.trace = self._previous


def _qubit_index(value) -> int:
    """Accept QubitRef, int or anything supporting ``__index__``."""
    try:
        return int(value.__index__())
    except AttributeError:
        pass
    if isinstance(value, int):
        return value
    raise CompilationError(
        f"expected a qubit reference (q[i]) or integer index, got {value!r}"
    )


def _parameter(value):
    if isinstance(value, (int, float, Parameter, ParameterExpression)):
        return value
    raise CompilationError(f"expected a numeric or symbolic gate parameter, got {value!r}")


def _emit(name: str, qubits: Sequence, parameters: Sequence = ()) -> None:
    trace = _current_trace()
    trace.add(create_gate(name, [_qubit_index(q) for q in qubits], [_parameter(p) for p in parameters]))


# -- single-qubit gates -------------------------------------------------------------


def H(qubit) -> None:
    """Hadamard."""
    _emit("H", [qubit])


def X(qubit) -> None:
    """Pauli X."""
    _emit("X", [qubit])


def Y(qubit) -> None:
    """Pauli Y."""
    _emit("Y", [qubit])


def Z(qubit) -> None:
    """Pauli Z."""
    _emit("Z", [qubit])


def S(qubit) -> None:
    """Phase gate."""
    _emit("S", [qubit])


def Sdg(qubit) -> None:
    """Adjoint phase gate."""
    _emit("SDG", [qubit])


def T(qubit) -> None:
    """T gate."""
    _emit("T", [qubit])


def Tdg(qubit) -> None:
    """Adjoint T gate."""
    _emit("TDG", [qubit])


def Rx(qubit, theta) -> None:
    """X rotation by ``theta``."""
    _emit("RX", [qubit], [theta])


def Ry(qubit, theta) -> None:
    """Y rotation by ``theta``."""
    _emit("RY", [qubit], [theta])


def Rz(qubit, theta) -> None:
    """Z rotation by ``theta``."""
    _emit("RZ", [qubit], [theta])


def U3(qubit, theta, phi, lam) -> None:
    """General single-qubit gate."""
    _emit("U3", [qubit], [theta, phi, lam])


# -- multi-qubit gates ----------------------------------------------------------------


def CX(control, target) -> None:
    """Controlled-X."""
    _emit("CX", [control, target])


#: Alias matching the XASM mnemonic.
CNOT = CX


def CY(control, target) -> None:
    """Controlled-Y."""
    _emit("CY", [control, target])


def CZ(control, target) -> None:
    """Controlled-Z."""
    _emit("CZ", [control, target])


def CH(control, target) -> None:
    """Controlled-Hadamard."""
    _emit("CH", [control, target])


def CRz(control, target, theta) -> None:
    """Controlled-Rz."""
    _emit("CRZ", [control, target], [theta])


def CPhase(control, target, theta) -> None:
    """Controlled phase."""
    _emit("CPHASE", [control, target], [theta])


def Swap(qubit0, qubit1) -> None:
    """SWAP."""
    _emit("SWAP", [qubit0, qubit1])


def CCX(control0, control1, target) -> None:
    """Toffoli."""
    _emit("CCX", [control0, control1, target])


# -- non-unitary -------------------------------------------------------------------------


def Measure(qubit) -> None:
    """Measure one qubit in the computational basis."""
    _emit("MEASURE", [qubit])


def Reset(qubit) -> None:
    """Reset one qubit to |0>."""
    _emit("RESET", [qubit])


def Barrier(*qubits) -> None:
    """Scheduling barrier."""
    trace = _current_trace()
    from ..ir.gates import Barrier as BarrierGate

    trace.add(BarrierGate([_qubit_index(q) for q in qubits]))
