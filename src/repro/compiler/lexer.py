"""Tokenizer for the XASM-subset kernel language.

The lexer is a small hand-rolled scanner producing a flat token stream with
line/column information so the parser can raise precise
:class:`~repro.exceptions.CompilationError` messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..exceptions import CompilationError

__all__ = ["Token", "tokenize", "TOKEN_TYPES"]

#: Recognised token types.
TOKEN_TYPES = (
    "IDENT",      # identifiers and keywords
    "NUMBER",     # integer or float literals
    "LPAREN",
    "RPAREN",
    "LBRACKET",
    "RBRACKET",
    "LBRACE",
    "RBRACE",
    "COMMA",
    "SEMICOLON",
    "DOT",
    "PLUS",
    "MINUS",
    "STAR",
    "SLASH",
    "PERCENT",
    "COLON",
    "LT",
    "LE",
    "GT",
    "GE",
    "EQ",
    "ASSIGN",
    "INCREMENT",
    "DECREMENT",
    "EOF",
)

_SINGLE_CHAR = {
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    "{": "LBRACE",
    "}": "RBRACE",
    ",": "COMMA",
    ";": "SEMICOLON",
    ".": "DOT",
    ":": "COLON",
    "*": "STAR",
    "/": "SLASH",
    "%": "PERCENT",
}


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based)."""

    type: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize XASM-subset source text.

    Comments (``// ...`` to end of line) are skipped.  Raises
    :class:`CompilationError` on unexpected characters.
    """
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        # -- whitespace / newlines -------------------------------------------
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        # -- comments ----------------------------------------------------------
        if ch == "/" and i + 1 < length and source[i + 1] == "/":
            while i < length and source[i] != "\n":
                i += 1
            continue
        # -- numbers ------------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < length and source[i + 1].isdigit()):
            start = i
            start_column = column
            seen_dot = False
            seen_exp = False
            while i < length:
                c = source[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i + 1 < length and (
                    source[i + 1].isdigit() or source[i + 1] in "+-"
                ):
                    seen_exp = True
                    i += 1
                    if source[i] in "+-":
                        i += 1
                else:
                    break
            text = source[start:i]
            column = start_column + (i - start)
            yield Token("NUMBER", text, line, start_column)
            continue
        # -- identifiers -----------------------------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            start_column = column
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            column = start_column + (i - start)
            yield Token("IDENT", text, line, start_column)
            continue
        # -- multi-character operators ------------------------------------------------
        two = source[i : i + 2]
        if two == "++":
            yield Token("INCREMENT", two, line, column)
            i += 2
            column += 2
            continue
        if two == "--":
            yield Token("DECREMENT", two, line, column)
            i += 2
            column += 2
            continue
        if two == "<=":
            yield Token("LE", two, line, column)
            i += 2
            column += 2
            continue
        if two == ">=":
            yield Token("GE", two, line, column)
            i += 2
            column += 2
            continue
        if two == "==":
            yield Token("EQ", two, line, column)
            i += 2
            column += 2
            continue
        # -- single-character operators ---------------------------------------------------
        if ch == "<":
            yield Token("LT", ch, line, column)
        elif ch == ">":
            yield Token("GT", ch, line, column)
        elif ch == "=":
            yield Token("ASSIGN", ch, line, column)
        elif ch == "+":
            yield Token("PLUS", ch, line, column)
        elif ch == "-":
            yield Token("MINUS", ch, line, column)
        elif ch in _SINGLE_CHAR:
            yield Token(_SINGLE_CHAR[ch], ch, line, column)
        else:
            raise CompilationError(f"unexpected character {ch!r}", line=line, column=column)
        i += 1
        column += 1
    yield Token("EOF", "", line, column)
