"""Recursive-descent parser for the XASM-subset kernel language.

The supported grammar covers the kernels in the paper's listings:

.. code-block:: text

    kernel      := statement*
    statement   := gate_call ';' | for_loop
    gate_call   := IDENT '(' argument (',' argument)* ')'
    for_loop    := 'for' '(' 'int' IDENT '=' expr ';' IDENT cmp expr ';'
                   IDENT ('++' | '--') ')' '{' statement* '}'
    argument    := qubit_ref | expr
    qubit_ref   := IDENT '[' expr ']'
    expr        := term (('+' | '-') term)*
    term        := factor (('*' | '/' | '%') factor)*
    factor      := NUMBER | 'pi' | IDENT | IDENT '.' 'size' '(' ')'
                   | '(' expr ')' | '-' factor

Identifiers that are neither the register name, a loop variable nor ``pi``
are treated as classical kernel parameters: if a value is supplied they are
substituted, otherwise they remain symbolic
:class:`~repro.ir.parameter.Parameter` objects in the produced circuit.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..exceptions import CompilationError
from ..ir.composite import CompositeInstruction
from ..ir.gates import GATE_REGISTRY, create_gate
from ..ir.parameter import Parameter, ParameterExpression
from .lexer import Token, tokenize

__all__ = ["compile_xasm", "XasmParser"]


def compile_xasm(
    source: str,
    register_name: str = "q",
    n_qubits: int | None = None,
    parameters: Mapping[str, float] | None = None,
    name: str = "xasm_kernel",
) -> CompositeInstruction:
    """Compile XASM-subset source into a circuit.

    Parameters
    ----------
    source:
        The kernel body (statements only, no function signature).
    register_name:
        Name of the qubit register referenced by the source (``q`` in the
        paper's listings).
    n_qubits:
        Register size.  Required when the source uses ``q.size()``;
        otherwise inferred from the largest index used.
    parameters:
        Concrete values for classical kernel arguments.  Unlisted
        identifiers stay symbolic.
    """
    parser = XasmParser(source, register_name, n_qubits, parameters or {})
    return parser.parse(name)


class XasmParser:
    """Single-use parser instance (create one per compilation)."""

    def __init__(
        self,
        source: str,
        register_name: str,
        n_qubits: int | None,
        parameters: Mapping[str, float],
    ):
        self.tokens: Sequence[Token] = tokenize(source)
        self.position = 0
        self.register_name = register_name
        self.n_qubits = n_qubits
        self.parameter_values = dict(parameters)
        #: Loop variables currently in scope, mapped to their value.
        self.scope: dict[str, float] = {}

    # -- token helpers ----------------------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _expect(self, token_type: str, value: str | None = None) -> Token:
        token = self._peek()
        if token.type != token_type or (value is not None and token.value != value):
            expected = value or token_type
            raise CompilationError(
                f"expected {expected!r}, found {token.value!r}",
                line=token.line,
                column=token.column,
            )
        return self._advance()

    def _check(self, token_type: str, value: str | None = None) -> bool:
        token = self._peek()
        return token.type == token_type and (value is None or token.value == value)

    # -- entry point --------------------------------------------------------------------
    def parse(self, name: str) -> CompositeInstruction:
        circuit = CompositeInstruction(name, self.n_qubits)
        self._parse_statements(circuit, stop_at_rbrace=False)
        self._expect("EOF")
        return circuit

    # -- statements ------------------------------------------------------------------------
    def _parse_statements(self, circuit: CompositeInstruction, stop_at_rbrace: bool) -> None:
        while True:
            if self._check("EOF"):
                return
            if stop_at_rbrace and self._check("RBRACE"):
                return
            self._parse_statement(circuit)

    def _parse_statement(self, circuit: CompositeInstruction) -> None:
        token = self._peek()
        if token.type != "IDENT":
            raise CompilationError(
                f"expected a statement, found {token.value!r}",
                line=token.line,
                column=token.column,
            )
        if token.value == "for":
            self._parse_for_loop(circuit)
            return
        if token.value == "using":
            # `using qcor::xasm;` style directives are accepted and ignored.
            while not self._check("SEMICOLON"):
                self._advance()
            self._expect("SEMICOLON")
            return
        self._parse_gate_call(circuit)

    def _parse_gate_call(self, circuit: CompositeInstruction) -> None:
        name_token = self._expect("IDENT")
        gate_name = name_token.value
        if gate_name.upper() not in GATE_REGISTRY:
            raise CompilationError(
                f"unknown gate {gate_name!r}",
                line=name_token.line,
                column=name_token.column,
            )
        self._expect("LPAREN")
        qubits: list[int] = []
        params: list = []
        if not self._check("RPAREN"):
            while True:
                argument = self._parse_argument()
                if isinstance(argument, _QubitIndex):
                    qubits.append(argument.index)
                else:
                    params.append(argument)
                if self._check("COMMA"):
                    self._advance()
                    continue
                break
        self._expect("RPAREN")
        self._expect("SEMICOLON")
        circuit.add(create_gate(gate_name, qubits, params))

    def _parse_for_loop(self, circuit: CompositeInstruction) -> None:
        self._expect("IDENT", "for")
        self._expect("LPAREN")
        # `int i = <expr>;`
        self._expect("IDENT", "int")
        variable = self._expect("IDENT").value
        self._expect("ASSIGN")
        start = self._evaluate_scalar(self._parse_expression())
        self._expect("SEMICOLON")
        # `i < <expr>;`
        compare_variable = self._expect("IDENT").value
        if compare_variable != variable:
            raise CompilationError(
                f"loop condition must test {variable!r}, found {compare_variable!r}"
            )
        comparison = self._advance()
        if comparison.type not in ("LT", "LE", "GT", "GE"):
            raise CompilationError(
                f"unsupported loop comparison {comparison.value!r}",
                line=comparison.line,
                column=comparison.column,
            )
        bound = self._evaluate_scalar(self._parse_expression())
        self._expect("SEMICOLON")
        # `i++` or `i--`
        step_variable = self._expect("IDENT").value
        if step_variable != variable:
            raise CompilationError(
                f"loop update must modify {variable!r}, found {step_variable!r}"
            )
        step_token = self._advance()
        if step_token.type == "INCREMENT":
            step = 1
        elif step_token.type == "DECREMENT":
            step = -1
        else:
            raise CompilationError(
                f"unsupported loop update {step_token.value!r}",
                line=step_token.line,
                column=step_token.column,
            )
        self._expect("RPAREN")
        self._expect("LBRACE")
        body_start = self.position

        values = self._loop_values(int(start), int(bound), comparison.type, step)
        if not values:
            # Still need to consume (and validate) the body once.
            self.scope[variable] = 0
            scratch = CompositeInstruction("scratch", self.n_qubits)
            self._parse_statements(scratch, stop_at_rbrace=True)
            del self.scope[variable]
        for value in values:
            self.position = body_start
            self.scope[variable] = value
            self._parse_statements(circuit, stop_at_rbrace=True)
            del self.scope[variable]
        self._expect("RBRACE")

    @staticmethod
    def _loop_values(start: int, bound: int, comparison: str, step: int) -> list[int]:
        values: list[int] = []
        value = start
        limit = 1_000_000
        while len(values) < limit:
            if comparison == "LT" and not value < bound:
                break
            if comparison == "LE" and not value <= bound:
                break
            if comparison == "GT" and not value > bound:
                break
            if comparison == "GE" and not value >= bound:
                break
            values.append(value)
            value += step
        else:
            raise CompilationError("loop exceeds 1,000,000 iterations")
        return values

    # -- arguments / expressions ----------------------------------------------------------
    def _parse_argument(self):
        """A gate argument: a qubit reference or a classical expression."""
        token = self._peek()
        if (
            token.type == "IDENT"
            and token.value == self.register_name
            and self.tokens[self.position + 1].type == "LBRACKET"
        ):
            self._advance()
            self._expect("LBRACKET")
            index = self._evaluate_scalar(self._parse_expression())
            self._expect("RBRACKET")
            return _QubitIndex(int(index))
        return self._parse_expression()

    def _parse_expression(self):
        value = self._parse_term()
        while self._check("PLUS") or self._check("MINUS"):
            operator = self._advance()
            right = self._parse_term()
            value = _combine(value, right, "+" if operator.type == "PLUS" else "-")
        return value

    def _parse_term(self):
        value = self._parse_factor()
        while self._check("STAR") or self._check("SLASH") or self._check("PERCENT"):
            operator = self._advance()
            right = self._parse_factor()
            symbol = {"STAR": "*", "SLASH": "/", "PERCENT": "%"}[operator.type]
            value = _combine(value, right, symbol)
        return value

    def _parse_factor(self):
        token = self._peek()
        if token.type == "MINUS":
            self._advance()
            inner = self._parse_factor()
            return _combine(0.0, inner, "-")
        if token.type == "NUMBER":
            self._advance()
            return float(token.value) if "." in token.value or "e" in token.value.lower() else int(token.value)
        if token.type == "LPAREN":
            self._advance()
            value = self._parse_expression()
            self._expect("RPAREN")
            return value
        if token.type == "IDENT":
            self._advance()
            name = token.value
            if name == "pi":
                return math.pi
            # `q.size()`
            if name == self.register_name and self._check("DOT"):
                self._advance()
                self._expect("IDENT", "size")
                self._expect("LPAREN")
                self._expect("RPAREN")
                if self.n_qubits is None:
                    raise CompilationError(
                        "q.size() used but n_qubits was not provided to the compiler",
                        line=token.line,
                        column=token.column,
                    )
                return int(self.n_qubits)
            if name in self.scope:
                return self.scope[name]
            if name in self.parameter_values:
                return float(self.parameter_values[name])
            # Unknown identifier: a symbolic kernel parameter.
            return Parameter(name)
        raise CompilationError(
            f"unexpected token {token.value!r} in expression",
            line=token.line,
            column=token.column,
        )

    @staticmethod
    def _evaluate_scalar(value) -> float:
        if isinstance(value, (Parameter, ParameterExpression)):
            raise CompilationError(
                f"expression {value!r} must be a concrete number in this position"
            )
        return float(value)


class _QubitIndex:
    """Marker wrapper distinguishing qubit references from classical values."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index


def _combine(left, right, operator: str):
    """Combine two expression values, keeping symbols symbolic where possible."""
    symbolic_left = isinstance(left, (Parameter, ParameterExpression))
    symbolic_right = isinstance(right, (Parameter, ParameterExpression))
    if symbolic_left and symbolic_right:
        raise CompilationError("expressions combining two symbolic parameters are not supported")
    if symbolic_left or symbolic_right:
        symbol = left if symbolic_left else right
        number = right if symbolic_left else left
        number = float(number)
        if operator == "+":
            return symbol + number
        if operator == "-":
            return symbol - number if symbolic_left else number - symbol
        if operator == "*":
            return symbol * number
        if operator == "/":
            if symbolic_left:
                return symbol / number
            raise CompilationError("dividing a number by a symbolic parameter is not supported")
        raise CompilationError(f"operator {operator!r} is not supported with symbolic parameters")
    left = float(left)
    right = float(right)
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0:
            raise CompilationError("division by zero in kernel expression")
        return left / right
    if operator == "%":
        return float(int(left) % int(right))
    raise CompilationError(f"unknown operator {operator!r}")
