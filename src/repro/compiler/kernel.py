"""The ``@qpu`` kernel decorator (QCOR's ``__qpu__`` analogue).

A ``@qpu``-decorated Python function describes a quantum kernel using the
gate functions from :mod:`repro.compiler.dsl`.  Calling the kernel with a
:class:`~repro.runtime.qreg.qreg` as its first argument traces the body into
IR and immediately executes it on the calling thread's QPU — the
single-source model of Listing 1:

.. code-block:: python

    @qpu
    def bell(q: qreg):
        H(q[0])
        CX(q[0], q[1])
        for i in range(q.size()):
            Measure(q[i])

    q = qalloc(2)
    bell(q)           # trace + execute on this thread's QPU
    q.print()

Additional entry points:

* ``bell.as_circuit(q_or_n, *args)`` — trace only, return the IR.
* ``bell.adjoint(...)`` — the inverse circuit (measurements stripped).
* ``bell.xasm(...)`` — the XASM text of the traced kernel.

Alternatively, a kernel can be declared from XASM source with
``qpu(source=...)``, which routes through the
:mod:`repro.compiler.parser` front end instead of Python tracing.
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, Mapping

from ..exceptions import CompilationError
from ..ir.composite import CompositeInstruction
from ..runtime.qreg import qreg
from .dsl import trace_context
from .parser import compile_xasm

__all__ = ["qpu", "QuantumKernel"]


class QuantumKernel:
    """A callable quantum kernel produced by :func:`qpu`."""

    def __init__(
        self,
        function: Callable | None = None,
        source: str | None = None,
        name: str | None = None,
    ):
        if function is None and source is None:
            raise CompilationError("a kernel needs either a Python body or XASM source")
        self._function = function
        self._source = source
        self.kernel_name = name or (function.__name__ if function is not None else "xasm_kernel")
        if function is not None:
            functools.update_wrapper(self, function)
        #: Number of times the kernel has been executed (thread-safe counter).
        self._execution_count = 0
        self._counter_lock = threading.Lock()

    # -- tracing --------------------------------------------------------------------
    def as_circuit(self, register, *args, **kwargs) -> CompositeInstruction:
        """Trace the kernel into IR without executing it.

        ``register`` is either a :class:`qreg` or an integer qubit count.
        Remaining arguments are passed to the kernel body (classical kernel
        arguments such as rotation angles, or
        :class:`~repro.ir.parameter.Parameter` objects to keep the circuit
        symbolic).
        """
        if isinstance(register, qreg):
            size = register.size()
            handle = register
        else:
            size = int(register)
            handle = _TracingRegister(size)
        if self._function is not None:
            with trace_context(self.kernel_name, size) as circuit:
                self._function(handle, *args, **kwargs)
            return circuit
        parameters: Mapping[str, float] = kwargs.get("parameters", {})
        return compile_xasm(
            self._source or "",
            register_name=kwargs.get("register_name", "q"),
            n_qubits=size,
            parameters=parameters,
            name=self.kernel_name,
        )

    def adjoint(self, register, *args, **kwargs) -> CompositeInstruction:
        """The inverse of the traced kernel (measurements removed first)."""
        return self.as_circuit(register, *args, **kwargs).without_measurements().inverse()

    def xasm(self, register, *args, **kwargs) -> str:
        """XASM text of the traced kernel."""
        return self.as_circuit(register, *args, **kwargs).to_xasm()

    # -- execution ------------------------------------------------------------------------
    def __call__(self, register: qreg, *args, shots: int | None = None, **kwargs):
        """Trace and execute the kernel on the calling thread's QPU."""
        if not isinstance(register, qreg):
            raise CompilationError(
                "the first argument of a @qpu kernel call must be a qreg "
                "(use .as_circuit() to build IR without executing)"
            )
        from ..core.api import execute_circuit

        circuit = self.as_circuit(register, *args, **kwargs)
        counts = execute_circuit(circuit, register, shots=shots)
        with self._counter_lock:
            self._execution_count += 1
        return counts

    @property
    def execution_count(self) -> int:
        with self._counter_lock:
            return self._execution_count

    def __get__(self, instance, owner):
        """Support using @qpu on methods."""
        if instance is None:
            return self
        return functools.partial(self.__call__, instance)

    def __repr__(self) -> str:
        origin = "python" if self._function is not None else "xasm"
        return f"QuantumKernel(name={self.kernel_name!r}, origin={origin})"


class _TracingRegister:
    """Stand-in register used when tracing with just a qubit count."""

    def __init__(self, size: int):
        self._size = int(size)

    def size(self) -> int:
        return self._size

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self._size:
            raise CompilationError(
                f"qubit index {index} out of range for a {self._size}-qubit register"
            )
        return index

    def __iter__(self):
        return iter(range(self._size))


def qpu(function: Callable | None = None, *, source: str | None = None, name: str | None = None):
    """Decorator (and factory) producing :class:`QuantumKernel` objects.

    Usage::

        @qpu
        def bell(q): ...

        shor_kernel = qpu(source="H(q[0]); ...", name="shor")
    """
    if function is not None:
        return QuantumKernel(function=function, name=name)

    if source is not None:
        return QuantumKernel(source=source, name=name)

    def decorate(func: Callable) -> QuantumKernel:
        return QuantumKernel(function=func, name=name)

    return decorate
