"""Kernel languages and the single-source ``@qpu`` DSL.

QCOR kernels are written in quantum DSLs (XACC's XASM or OpenQASM) embedded
in C++.  The Python reproduction supports three front ends that all lower to
the same IR:

* :func:`compile_xasm` — an XASM-subset compiler covering the constructs the
  paper's listings use (gate calls on ``q[i]``, C-style ``for`` loops over
  ``q.size()``, classical parameters).
* :func:`parse_qasm2` / :func:`to_qasm2` — an OpenQASM 2 subset for
  interchange.
* :func:`qpu` — a decorator turning a plain Python function into a quantum
  kernel: calling the kernel traces its gate calls into a circuit and
  executes it on the calling thread's QPU, mirroring the ``__qpu__``
  single-source model.
"""

from .lexer import Token, tokenize
from .parser import compile_xasm
from .qasm2 import parse_qasm2, to_qasm2
from .kernel import qpu, QuantumKernel
from . import dsl

__all__ = [
    "Token",
    "tokenize",
    "compile_xasm",
    "parse_qasm2",
    "to_qasm2",
    "qpu",
    "QuantumKernel",
    "dsl",
]
