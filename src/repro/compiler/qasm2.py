"""OpenQASM 2 subset: parser and exporter.

Supports the constructs needed for interchange of the paper's kernels:
``qreg``/``creg`` declarations, the standard gate names (``h``, ``x``,
``cx``, ``rx(theta)``, ...), ``measure q[i] -> c[j]``, ``measure q -> c``,
``barrier`` and comments.  Custom ``gate`` definitions, ``if`` statements
and ``opaque`` declarations are rejected with a clear error.
"""

from __future__ import annotations

import math
import re

from ..exceptions import CompilationError
from ..ir.composite import CompositeInstruction
from ..ir.gates import GATE_REGISTRY, Barrier, Measure, create_gate

__all__ = ["parse_qasm2", "to_qasm2"]

#: OpenQASM gate name -> IR gate name.
_QASM_TO_IR = {
    "id": "I",
    "h": "H",
    "x": "X",
    "y": "Y",
    "z": "Z",
    "s": "S",
    "sdg": "SDG",
    "t": "T",
    "tdg": "TDG",
    "rx": "RX",
    "ry": "RY",
    "rz": "RZ",
    "u3": "U3",
    "u": "U3",
    "cx": "CX",
    "cy": "CY",
    "cz": "CZ",
    "ch": "CH",
    "crz": "CRZ",
    "cp": "CPHASE",
    "cu1": "CPHASE",
    "swap": "SWAP",
    "ccx": "CCX",
    "cswap": "CSWAP",
}

#: IR gate name -> OpenQASM gate name (inverse of the above, first wins).
_IR_TO_QASM: dict[str, str] = {}
for _qasm, _ir in _QASM_TO_IR.items():
    _IR_TO_QASM.setdefault(_ir, _qasm)

_UNSUPPORTED = ("gate ", "opaque ", "if (", "if(")


def _evaluate_angle(text: str) -> float:
    """Evaluate a restricted angle expression (numbers, pi, + - * / parentheses)."""
    allowed = re.compile(r"^[\d\.\s\+\-\*/\(\)eE]|pi$")
    cleaned = text.replace("pi", str(math.pi))
    if not re.fullmatch(r"[\d\.\s\+\-\*/\(\)eE]+", cleaned):
        raise CompilationError(f"unsupported angle expression {text!r}")
    try:
        return float(eval(cleaned, {"__builtins__": {}}, {}))  # noqa: S307 - sanitised above
    except Exception as exc:  # pragma: no cover - defensive
        raise CompilationError(f"could not evaluate angle expression {text!r}") from exc
    _ = allowed  # silence linters about the unused stricter pattern


def parse_qasm2(source: str, name: str = "qasm_kernel") -> CompositeInstruction:
    """Parse an OpenQASM 2 program into a circuit."""
    register_sizes: dict[str, int] = {}
    circuit: CompositeInstruction | None = None
    statements = _split_statements(source)
    for line_number, statement in statements:
        lowered = statement.lower()
        if lowered.startswith("openqasm") or lowered.startswith("include"):
            continue
        if any(lowered.startswith(prefix) for prefix in _UNSUPPORTED):
            raise CompilationError(
                f"unsupported OpenQASM construct: {statement!r}", line=line_number
            )
        if lowered.startswith("qreg"):
            reg_name, size = _parse_register(statement, line_number)
            register_sizes[reg_name] = size
            circuit = CompositeInstruction(name, sum(register_sizes.values()))
            continue
        if lowered.startswith("creg"):
            continue
        if circuit is None:
            raise CompilationError(
                f"gate statement before any qreg declaration: {statement!r}",
                line=line_number,
            )
        if lowered.startswith("barrier"):
            qubits = _parse_qubit_list(statement[len("barrier"):], register_sizes, line_number)
            circuit.add(Barrier(qubits))
            continue
        if lowered.startswith("measure"):
            _parse_measure(statement, register_sizes, circuit, line_number)
            continue
        _parse_gate_statement(statement, register_sizes, circuit, line_number)
    if circuit is None:
        raise CompilationError("program declares no quantum register")
    return circuit


def _split_statements(source: str) -> list[tuple[int, str]]:
    statements: list[tuple[int, str]] = []
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("//", 1)[0].strip()
        if not line:
            continue
        for piece in line.split(";"):
            piece = piece.strip()
            if piece:
                statements.append((line_number, piece))
    return statements


def _parse_register(statement: str, line: int) -> tuple[str, int]:
    match = re.fullmatch(r"(qreg|creg)\s+(\w+)\s*\[\s*(\d+)\s*\]", statement)
    if not match:
        raise CompilationError(f"malformed register declaration {statement!r}", line=line)
    return match.group(2), int(match.group(3))


def _qubit_index(token: str, registers: dict[str, int], line: int) -> int:
    match = re.fullmatch(r"(\w+)\s*\[\s*(\d+)\s*\]", token.strip())
    if not match:
        raise CompilationError(f"malformed qubit reference {token!r}", line=line)
    register, index = match.group(1), int(match.group(2))
    if register not in registers:
        raise CompilationError(f"unknown register {register!r}", line=line)
    if index >= registers[register]:
        raise CompilationError(
            f"index {index} out of range for register {register!r} "
            f"of size {registers[register]}",
            line=line,
        )
    # Registers are laid out consecutively in declaration order.
    offset = 0
    for name, size in registers.items():
        if name == register:
            return offset + index
        offset += size
    raise CompilationError(f"unknown register {register!r}", line=line)


def _parse_qubit_list(text: str, registers: dict[str, int], line: int) -> list[int]:
    qubits: list[int] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if "[" in token:
            qubits.append(_qubit_index(token, registers, line))
        else:
            if token not in registers:
                raise CompilationError(f"unknown register {token!r}", line=line)
            offset = 0
            for name, size in registers.items():
                if name == token:
                    qubits.extend(range(offset, offset + size))
                    break
                offset += size
    return qubits


def _parse_measure(
    statement: str, registers: dict[str, int], circuit: CompositeInstruction, line: int
) -> None:
    match = re.fullmatch(r"measure\s+(.+?)\s*->\s*(.+)", statement)
    if not match:
        raise CompilationError(f"malformed measure statement {statement!r}", line=line)
    source = match.group(1).strip()
    if "[" in source:
        circuit.add(Measure([_qubit_index(source, registers, line)]))
    else:
        for qubit in _parse_qubit_list(source, registers, line):
            circuit.add(Measure([qubit]))


def _parse_gate_statement(
    statement: str, registers: dict[str, int], circuit: CompositeInstruction, line: int
) -> None:
    match = re.fullmatch(r"(\w+)\s*(\(([^)]*)\))?\s+(.+)", statement)
    if not match:
        raise CompilationError(f"malformed gate statement {statement!r}", line=line)
    gate_name = match.group(1).lower()
    if gate_name not in _QASM_TO_IR:
        raise CompilationError(f"unknown OpenQASM gate {gate_name!r}", line=line)
    parameters = []
    if match.group(3):
        parameters = [_evaluate_angle(p.strip()) for p in match.group(3).split(",")]
    qubits = [_qubit_index(token, registers, line) for token in match.group(4).split(",")]
    circuit.add(create_gate(_QASM_TO_IR[gate_name], qubits, parameters))


def to_qasm2(circuit: CompositeInstruction, register_name: str = "q") -> str:
    """Render a (concrete) circuit as an OpenQASM 2 program."""
    if circuit.is_parameterized:
        raise CompilationError("cannot export a circuit with unbound parameters to OpenQASM")
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg {register_name}[{circuit.n_qubits}];",
        f"creg c[{circuit.n_qubits}];",
    ]
    for instruction in circuit:
        if instruction.name == "BARRIER":
            targets = ", ".join(f"{register_name}[{q}]" for q in instruction.qubits)
            lines.append(f"barrier {targets or register_name};")
            continue
        if instruction.is_measurement:
            qubit = instruction.qubits[0]
            lines.append(f"measure {register_name}[{qubit}] -> c[{qubit}];")
            continue
        if instruction.name not in _IR_TO_QASM:
            raise CompilationError(
                f"gate {instruction.name!r} has no OpenQASM 2 equivalent"
            )
        qasm_name = _IR_TO_QASM[instruction.name]
        params = ""
        if instruction.parameters:
            params = "(" + ", ".join(f"{float(p):.12g}" for p in instruction.bound_parameters()) + ")"
        targets = ", ".join(f"{register_name}[{q}]" for q in instruction.qubits)
        lines.append(f"{qasm_name}{params} {targets};")
    return "\n".join(lines) + "\n"
