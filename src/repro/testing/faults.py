"""Deterministic fault injection at named sites in the execution stack.

The recovery paths built in this package — retry budgets, circuit
breakers, shm barrier recovery, admission control — are only trustworthy
if they are *exercised*, not merely written.  This module lets a test
plant faults at named sites and have production code trip over them
deterministically:

* ``kill``  — ``os._exit(1)`` the current process (simulates a SIGKILLed
  worker; only meaningful at sites that run inside worker processes).
* ``slow``  — sleep ``seconds`` before continuing (simulates a stalled
  worker or a saturated host).
* ``fail``  — raise an exception of the configured ``kind`` (simulates a
  compile failure, an allocation failure, a flaky OS error...).

Sites are plain strings (``"sharded.worker.replay"``, ``"shm.alloc"``,
``"plan.compile"``...) wired into production code as ``faults.fire(site)``
calls.  The disabled fast path is a module-global ``None`` check — one
load and one compare — so leaving the hooks in shipping code is free (the
fault-recovery benchmark enforces < 5% overhead for the armed-but-no-match
case too).

Cross-process propagation: shard and shm workers are separate processes,
so ``install_faults`` also mirrors the plan into ``REPRO_FAULTS`` in this
process's environment; workers spawned *after* installation inherit it and
load the plan lazily on their first ``fire``.  Workers already running are
unaffected (tests install faults before building the pool they target).

Respawn-proofing: a per-process hit counter would reset when the executor
respawns a killed worker, making a ``times=1`` kill fire forever.  A spec
with ``scope="global"`` counts hits in the filesystem instead — each
firing claims a sentinel file with ``O_CREAT | O_EXCL``, which is atomic
across processes — so "kill the worker exactly once, then recover" is
expressible.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Iterable

from ..exceptions import ExecutionError

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "install_faults",
    "clear_faults",
    "installed_faults",
    "fire",
]

_ENV_VAR = "REPRO_FAULTS"


class InjectedFault(ExecutionError):
    """The default error raised by a ``fail`` fault.

    Subclasses :class:`ExecutionError` so recovery code treats it like a
    genuine execution failure, while tests can still assert the failure
    they observe is the one they planted.
    """


#: Exception kinds a ``fail`` fault can raise, by name (names, not classes,
#: so specs survive the JSON trip through the environment).
_FAIL_KINDS = {
    "injected": InjectedFault,
    "oserror": OSError,
    "memory": MemoryError,
    "compile": None,  # resolved lazily to avoid an import cycle
}


def _resolve_kind(kind: str):
    cls = _FAIL_KINDS.get(kind)
    if cls is None and kind == "compile":
        from ..exceptions import CompilationError

        _FAIL_KINDS["compile"] = CompilationError
        return CompilationError
    if cls is None:
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of {sorted(_FAIL_KINDS)}"
        )
    return cls


@dataclass(frozen=True)
class FaultSpec:
    """One planted fault.

    ``site``    — the named fire point this spec matches.
    ``action``  — ``"kill"`` | ``"slow"`` | ``"fail"``.
    ``after``   — skip this many matching hits before firing (0 = first hit).
    ``times``   — fire at most this many times (``None`` = unbounded).
    ``seconds`` — sleep duration for ``slow``.
    ``kind``    — exception kind for ``fail`` (see ``_FAIL_KINDS``).
    ``scope``   — ``"process"`` counts hits per process; ``"global"`` counts
                  across processes via sentinel files, surviving respawns.
    """

    site: str
    action: str = "fail"
    after: int = 0
    times: int | None = 1
    seconds: float = 0.0
    kind: str = "injected"
    scope: str = "process"

    def __post_init__(self) -> None:
        if self.action not in ("kill", "slow", "fail"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.scope not in ("process", "global"):
            raise ValueError(f"unknown fault scope {self.scope!r}")
        if self.action == "fail":
            _resolve_kind(self.kind)  # validate eagerly, at install time

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "action": self.action,
            "after": self.after,
            "times": self.times,
            "seconds": self.seconds,
            "kind": self.kind,
            "scope": self.scope,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(**data)


class _Plan:
    """The active fault plan plus per-process hit counters."""

    __slots__ = ("specs", "hits", "token", "sentinel_dir")

    def __init__(self, specs: tuple[FaultSpec, ...], token: str, sentinel_dir: str):
        self.specs = specs
        self.hits: dict[int, int] = {}
        # Token + sentinel_dir implement global (cross-process) hit counting.
        self.token = token
        self.sentinel_dir = sentinel_dir


_PLAN: _Plan | None = None
_ENV_LOADED = False


def install_faults(specs: Iterable[FaultSpec], *, token: str | None = None) -> None:
    """Arm ``specs`` in this process and export them to future children."""
    global _PLAN, _ENV_LOADED
    specs = tuple(specs)
    if token is None:
        token = f"{os.getpid()}-{time.monotonic_ns()}"
    sentinel_dir = os.path.join(tempfile.gettempdir(), f"repro-faults-{token}")
    os.makedirs(sentinel_dir, exist_ok=True)
    _PLAN = _Plan(specs, token, sentinel_dir)
    _ENV_LOADED = True  # our own env must not re-load over an explicit install
    os.environ[_ENV_VAR] = json.dumps(
        {"token": token, "specs": [spec.to_dict() for spec in specs]}
    )


def clear_faults() -> None:
    """Disarm all faults and remove the cross-process plan and sentinels."""
    global _PLAN, _ENV_LOADED
    plan, _PLAN = _PLAN, None
    _ENV_LOADED = False
    os.environ.pop(_ENV_VAR, None)
    if plan is not None:
        try:
            for name in os.listdir(plan.sentinel_dir):
                try:
                    os.unlink(os.path.join(plan.sentinel_dir, name))
                except OSError:
                    pass
            os.rmdir(plan.sentinel_dir)
        except OSError:
            pass


def installed_faults() -> tuple[FaultSpec, ...]:
    _maybe_load_env()
    return _PLAN.specs if _PLAN is not None else ()


def _maybe_load_env() -> None:
    """Load a plan exported by a parent process (worker side, lazy)."""
    global _PLAN, _ENV_LOADED
    if _ENV_LOADED:
        return
    _ENV_LOADED = True
    raw = os.environ.get(_ENV_VAR)
    if not raw:
        return
    try:
        data = json.loads(raw)
        specs = tuple(FaultSpec.from_dict(item) for item in data["specs"])
        token = data["token"]
    except (ValueError, KeyError, TypeError):
        return
    sentinel_dir = os.path.join(tempfile.gettempdir(), f"repro-faults-{token}")
    _PLAN = _Plan(specs, token, sentinel_dir)


def _claim_global_hit(plan: _Plan, index: int, hit: int) -> bool | None:
    """Atomically claim cross-process hit number ``hit`` of spec ``index``.

    ``True`` — claimed; ``False`` — already taken by another process;
    ``None`` — the sentinel directory vanished (``clear_faults`` ran in
    another process), meaning the whole plan is disarmed.  The tri-state
    matters: treating "vanished" as "taken" would make an unbounded
    (``times=None``) walk spin forever looking for a free slot.
    """
    path = os.path.join(plan.sentinel_dir, f"{index}-{hit}")
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return None
    os.close(fd)
    return True


def fire(site: str) -> None:
    """Production-code hook: trip any armed fault matching ``site``.

    The disabled path is the first two lines — a global load and an
    identity check — plus, in worker processes, one lazy env probe on the
    very first call.
    """
    global _PLAN
    if _PLAN is None and _ENV_LOADED:
        return
    _maybe_load_env()
    plan = _PLAN
    if plan is None:
        return
    for index, spec in enumerate(plan.specs):
        if spec.site != site:
            continue
        if spec.scope == "global":
            # Walk the cross-process hit sequence: claim the next slot.
            hit = 0
            while True:
                if spec.times is not None and hit >= spec.after + spec.times:
                    break
                claimed = _claim_global_hit(plan, index, hit)
                if claimed is None:
                    # clear_faults() ran in another process (workers hold a
                    # stale env-loaded plan after a respawn): disarm here
                    # too instead of firing from beyond the grave.
                    _PLAN = None
                    return
                if claimed:
                    if hit >= spec.after:
                        _act(spec)
                    break
                hit += 1
        else:
            hit = plan.hits.get(index, 0)
            plan.hits[index] = hit + 1
            if hit < spec.after:
                continue
            if spec.times is not None and hit >= spec.after + spec.times:
                continue
            _act(spec)


def _act(spec: FaultSpec) -> None:
    if spec.action == "slow":
        time.sleep(spec.seconds)
        return
    if spec.action == "kill":
        # Flush nothing, run no handlers: the closest stand-in for SIGKILL
        # that a process can do to itself.
        os._exit(1)
    kind = _resolve_kind(spec.kind)
    raise kind(f"injected fault at site {spec.site!r}")
