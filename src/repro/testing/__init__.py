"""Deterministic fault injection for chaos-testing the execution stack."""

from .faults import (
    FaultSpec,
    InjectedFault,
    clear_faults,
    fire,
    install_faults,
    installed_faults,
)

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "clear_faults",
    "fire",
    "install_faults",
    "installed_faults",
]
