"""Global configuration for the ``repro`` programming system.

QCOR exposes a handful of process-wide knobs (default accelerator, number of
shots, ``OMP_NUM_THREADS`` for the Quantum++ backend).  This module provides
the Python equivalents plus the switches that control the reproduction
itself:

``thread_safe``
    When ``True`` (default), the runtime uses the thread-safe code paths the
    paper contributes (locked ``qalloc``, cloneable accelerators, the
    QPUManager).  When ``False``, the legacy, race-prone behaviour of the
    original QCOR/XACC implementation is emulated so that tests and the
    ablation benchmark can demonstrate *why* the contribution is needed.

``execution_mode``
    ``"real"`` runs kernels on the NumPy simulator and measures wall-clock
    time; ``"modeled"`` uses the calibrated cost model plus the
    discrete-event scheduler so the paper's figures can be regenerated
    deterministically on any host.

Configuration is stored in a module-level :class:`Configuration` object.
Reads are lock-free (attribute reads of immutables are atomic in CPython);
writes go through :func:`set_config` which holds a lock, and the
:func:`configure` context manager restores the previous values on exit so
tests can safely tweak configuration.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
from typing import Any, Iterator

from .exceptions import ConfigurationError

__all__ = [
    "Configuration",
    "get_config",
    "set_config",
    "configure",
    "reset_config",
    "default_num_threads",
]

_VALID_EXECUTION_MODES = ("real", "modeled")


def default_num_threads() -> int:
    """Return the default worker count, honouring ``OMP_NUM_THREADS``.

    Mirrors the paper's use of ``OMP_NUM_THREADS`` to size the Quantum++
    OpenMP pool.  Falls back to the host's CPU count.
    """
    env = os.environ.get("OMP_NUM_THREADS")
    if env:
        try:
            value = int(env)
            if value > 0:
                return value
        except ValueError:
            pass
    return os.cpu_count() or 1


@dataclasses.dataclass
class Configuration:
    """Mutable snapshot of process-wide settings."""

    #: Name of the accelerator used when none is requested explicitly.
    default_accelerator: str = "qpp"
    #: Default number of measurement shots for sampling backends.
    shots: int = 1024
    #: Use the thread-safe code paths contributed by the paper.
    thread_safe: bool = True
    #: Require an explicit per-thread ``initialize()`` call (paper Section V-C).
    strict_initialization: bool = False
    #: Number of worker threads available to a single kernel simulation.
    omp_num_threads: int = dataclasses.field(default_factory=default_num_threads)
    #: ``"real"`` or ``"modeled"`` execution (see module docstring).
    execution_mode: str = "real"
    #: Seed for deterministic sampling; ``None`` draws fresh entropy.
    seed: int | None = None
    #: Record (but do not raise on) data races observed by the race detector.
    detect_races: bool = True
    #: Raise :class:`ThreadSafetyViolation` as soon as a race is observed.
    raise_on_race: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` for inconsistent settings."""
        if self.shots <= 0:
            raise ConfigurationError(f"shots must be positive, got {self.shots}")
        if self.omp_num_threads <= 0:
            raise ConfigurationError(
                f"omp_num_threads must be positive, got {self.omp_num_threads}"
            )
        if self.execution_mode not in _VALID_EXECUTION_MODES:
            raise ConfigurationError(
                f"execution_mode must be one of {_VALID_EXECUTION_MODES}, "
                f"got {self.execution_mode!r}"
            )
        if self.seed is not None and self.seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {self.seed}")

    def replace(self, **changes: Any) -> "Configuration":
        """Return a copy with ``changes`` applied and validated."""
        new = dataclasses.replace(self, **changes)
        new.validate()
        return new


_lock = threading.Lock()
_config = Configuration()


def get_config() -> Configuration:
    """Return the current global configuration object."""
    return _config


def set_config(**changes: Any) -> Configuration:
    """Atomically update the global configuration.

    Unknown keys raise :class:`ConfigurationError`.  Returns the new
    configuration snapshot.
    """
    global _config
    valid_fields = {f.name for f in dataclasses.fields(Configuration)}
    unknown = set(changes) - valid_fields
    if unknown:
        raise ConfigurationError(f"unknown configuration keys: {sorted(unknown)}")
    with _lock:
        _config = _config.replace(**changes)
        return _config


def reset_config() -> Configuration:
    """Restore the default configuration (used heavily by the test suite)."""
    global _config
    with _lock:
        _config = Configuration()
        return _config


@contextlib.contextmanager
def configure(**changes: Any) -> Iterator[Configuration]:
    """Context manager that applies ``changes`` and restores prior values.

    Example::

        with configure(shots=64, execution_mode="modeled"):
            run_bell()
    """
    global _config
    valid_fields = {f.name for f in dataclasses.fields(Configuration)}
    unknown = set(changes) - valid_fields
    if unknown:
        raise ConfigurationError(f"unknown configuration keys: {sorted(unknown)}")
    with _lock:
        previous = _config
        _config = _config.replace(**changes)
    try:
        yield _config
    finally:
        with _lock:
            _config = previous
