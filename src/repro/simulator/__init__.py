"""Dense quantum-circuit simulation substrate.

This subpackage is the stand-in for Quantum++ (the ``qpp`` backend the paper
uses).  It provides:

* :class:`StateVector` — dense state-vector simulation with vectorised NumPy
  gate kernels (no Python loops over amplitudes).
* :mod:`~repro.simulator.gate_application` — the low-level kernels, with
  specialised fast paths for single-qubit, controlled and diagonal gates.
* :mod:`~repro.simulator.sampling` — measurement sampling into count
  histograms matching QCOR's ``AcceleratorBuffer`` output.
* :class:`DensityMatrix` and :mod:`~repro.simulator.noise` — mixed-state
  simulation with CPTP noise channels.
* :class:`ParallelSimulationEngine` — the "inner simulator level
  parallelism" of the paper: shot- and chunk-level worker pools sized by an
  ``OMP_NUM_THREADS``-like knob.
* :class:`SimulationCostModel` — an analytic cost model used by the
  ``modeled`` execution mode to regenerate the paper's figures
  deterministically.
* :class:`ExecutionPlan` / :class:`PlanCache` — the compile-once /
  execute-many pipeline: circuits are lowered to flat sequences of
  specialised kernels, cached by content hash, and replayed without
  per-gate Python dispatch (see :mod:`~repro.simulator.execution_plan`).
"""

from .statevector import StateVector
from .sampling import sample_counts, counts_from_statevector, format_bitstring
from .density import DensityMatrix
from .noise import (
    NoiseModel,
    KrausChannel,
    depolarizing_channel,
    bit_flip_channel,
    phase_flip_channel,
    amplitude_damping_channel,
)
from .unitary import circuit_unitary
from .parallel_engine import ParallelSimulationEngine
from .cost_model import SimulationCostModel, CircuitCost
from .execution_plan import (
    ExecutionPlan,
    ParametricExecutionPlan,
    compile_plan,
    compile_parametric_plan,
)
from .plan_cache import PlanCache, PlanCacheStats, get_plan_cache, reset_plan_cache

__all__ = [
    "StateVector",
    "ExecutionPlan",
    "ParametricExecutionPlan",
    "compile_plan",
    "compile_parametric_plan",
    "PlanCache",
    "PlanCacheStats",
    "get_plan_cache",
    "reset_plan_cache",
    "DensityMatrix",
    "sample_counts",
    "counts_from_statevector",
    "format_bitstring",
    "NoiseModel",
    "KrausChannel",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
    "circuit_unitary",
    "ParallelSimulationEngine",
    "SimulationCostModel",
    "CircuitCost",
]
