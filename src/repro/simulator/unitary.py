"""Dense operator utilities: embedding local operators and circuit unitaries.

These helpers are used by the density-matrix simulator, the Pauli-operator
``to_matrix`` path and by tests that verify gate/circuit semantics against
explicit matrices.  They are deliberately limited to small qubit counts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ExecutionError, IRError
from ..ir.composite import CompositeInstruction

__all__ = ["embed_operator", "circuit_unitary"]

_MAX_UNITARY_QUBITS = 12


def embed_operator(matrix: np.ndarray, targets: Sequence[int], n_qubits: int) -> np.ndarray:
    """Expand a local operator over ``targets`` to the full ``2^n`` space.

    ``matrix`` follows the gate convention of :mod:`repro.ir.gates`: the
    first target qubit is the least significant bit of the local index.
    """
    targets = tuple(int(t) for t in targets)
    k = len(targets)
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2**k, 2**k):
        raise ExecutionError(
            f"operator shape {matrix.shape} does not match {k} target qubit(s)"
        )
    if len(set(targets)) != k:
        raise ExecutionError(f"duplicate target qubits {targets}")
    for t in targets:
        if not 0 <= t < n_qubits:
            raise ExecutionError(f"target qubit {t} out of range for {n_qubits} qubit(s)")
    if n_qubits > _MAX_UNITARY_QUBITS + 1:
        raise ExecutionError(
            f"embed_operator is limited to {_MAX_UNITARY_QUBITS + 1} qubits"
        )
    dim = 1 << n_qubits
    full = np.zeros((dim, dim), dtype=complex)
    other_qubits = [q for q in range(n_qubits) if q not in targets]
    # Enumerate basis indices of the untouched qubits once; each produces a
    # block of the full operator equal to `matrix` scattered onto the touched
    # positions.  Vectorised over the local dimension.
    local_dim = 1 << k
    local_indices = np.arange(local_dim)
    # Map local index -> contribution to the global index from target qubits.
    target_contrib = np.zeros(local_dim, dtype=np.int64)
    for bit, qubit in enumerate(targets):
        target_contrib |= ((local_indices >> bit) & 1) << qubit
    for rest in range(1 << len(other_qubits)):
        base = 0
        for bit, qubit in enumerate(other_qubits):
            base |= ((rest >> bit) & 1) << qubit
        rows = base + target_contrib
        full[np.ix_(rows, rows)] = matrix
    return full


def circuit_unitary(circuit: CompositeInstruction) -> np.ndarray:
    """Return the full unitary of a measurement-free circuit.

    Limited to :data:`_MAX_UNITARY_QUBITS` qubits; raises :class:`IRError`
    beyond that or if the circuit contains measurements.
    """
    if circuit.n_measurements:
        raise IRError("cannot build the unitary of a circuit containing measurements")
    n = circuit.n_qubits
    if n == 0:
        return np.eye(1, dtype=complex)
    if n > _MAX_UNITARY_QUBITS:
        raise IRError(f"circuit_unitary is limited to {_MAX_UNITARY_QUBITS} qubits, got {n}")
    unitary = np.eye(1 << n, dtype=complex)
    for instruction in circuit:
        if instruction.name in ("BARRIER",):
            continue
        if not instruction.is_unitary:
            raise IRError(f"{instruction.name} has no unitary form")
        full = embed_operator(instruction.matrix(), instruction.qubits, n)
        unitary = full @ unitary
    return unitary
