"""Inner-simulator parallelism (the paper's third level of parallelism).

Quantum++ parallelises gate application and sampling with OpenMP; the number
of threads is controlled with ``OMP_NUM_THREADS``.  This module provides the
Python analogue used by :class:`repro.runtime.qpp_accelerator.QppAccelerator`:

* **Shot-level parallelism** — independent sampling (and, for noisy or
  mid-circuit-measurement workloads, independent trajectory simulation)
  distributed over a thread pool.  Each worker gets its own RNG stream
  derived from a ``numpy.random.SeedSequence`` spawn so results are
  reproducible regardless of the worker count.
* **Chunked state application** — large single-qubit gate updates are split
  into contiguous chunks processed by multiple workers.  NumPy releases the
  GIL inside the vectorised kernels, so chunks genuinely overlap for large
  states; for small states the engine falls back to the serial kernel to
  avoid pool overhead.

Trajectory workloads compile the circuit into one
:class:`~repro.simulator.execution_plan.ExecutionPlan` and replay it per
shot — the plan is immutable, so every worker shares it without copying.

The engine is purely thread-local: each accelerator clone owns its own
engine, so two kernels running on different user threads never contend on
shared simulator state (the property the paper's QPUManager establishes).
The worker pool is created lazily on first use and *reused* across calls;
``close()`` (or using the engine as a context manager) tears it down.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterable, Sequence

import numpy as np

from ..config import get_config
from ..exceptions import ExecutionError
from ..ir.composite import CompositeInstruction
from .execution_plan import DEFAULT_CHUNK_THRESHOLD, ExecutionPlan, compile_plan
from .sampling import sample_counts
from .statevector import StateVector

__all__ = [
    "ParallelSimulationEngine",
    "merge_counts",
    "replay_trajectory_chunk",
    "split_shots",
]

#: States smaller than this (amplitudes) are not worth chunking across workers
#: (shared with chunk-parallel plan replay — see execution_plan).
_CHUNK_THRESHOLD = DEFAULT_CHUNK_THRESHOLD


def split_shots(shots: int, workers: int) -> list[int]:
    """Split ``shots`` into ``workers`` near-equal positive chunks."""
    if shots <= 0:
        raise ExecutionError(f"shots must be positive, got {shots}")
    if workers <= 0:
        raise ExecutionError(f"workers must be positive, got {workers}")
    workers = min(workers, shots)
    base, remainder = divmod(shots, workers)
    return [base + (1 if i < remainder else 0) for i in range(workers)]


def merge_counts(histograms: Iterable[dict[str, int]]) -> dict[str, int]:
    """Merge per-worker count histograms into one."""
    merged: dict[str, int] = {}
    for histogram in histograms:
        for key, value in histogram.items():
            merged[key] = merged.get(key, 0) + int(value)
    return merged


def replay_trajectory_chunk(
    plan: "ExecutionPlan",
    shots: int,
    rng: np.random.Generator,
    measured: Sequence[int],
    n_qubits: int,
    prepare: Callable[[], "StateVector"] | None = None,
    pool: "ParallelSimulationEngine | None" = None,
) -> dict[str, int]:
    """One worker's trajectory chunk: ``shots`` full plan replays on ``rng``.

    RNG-critical and therefore shared verbatim by the engine's thread
    workers and the process shards (:mod:`repro.exec.sharded`): both paths
    must consume ``rng`` draw for draw — one reset/sample sequence per
    trajectory, recycling the previous trajectory's buffer — or the
    fixed-seed bit-identity between threaded and sharded execution breaks.

    ``pool`` chunk-parallelises each replay across an engine's worker
    threads (safe because chunked replay is bitwise identical to serial, so
    RNG consumption never changes).  Only pass a pool when this chunk runs
    *outside* that pool's own threads — the single-chunk engine path and
    the sharded workers; nested submission would deadlock.
    """
    histogram: dict[str, int] = {}
    data: np.ndarray | None = None
    for _ in range(shots):
        if prepare is not None:
            data = prepare().data.copy()
        elif data is None:
            data = plan.new_state()
        else:
            # Recycle the previous trajectory's buffer instead of
            # allocating a fresh 2^n array per shot.
            data.fill(0.0)
            data[0] = 1.0
        data = plan.execute(data, rng=rng, pool=pool)
        sample = sample_counts(np.abs(data) ** 2, 1, measured, n_qubits, rng)
        for key, value in sample.items():
            histogram[key] = histogram.get(key, 0) + value
    return histogram


class ParallelSimulationEngine:
    """Worker-pool wrapper for shot- and chunk-level simulator parallelism."""

    def __init__(self, num_threads: int | None = None):
        #: Number of worker threads (the ``OMP_NUM_THREADS`` analogue).  ``None``
        #: defers to the global configuration at call time.
        self.num_threads = num_threads
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._pool_size = 0

    def effective_threads(self) -> int:
        threads = self.num_threads if self.num_threads is not None else get_config().omp_num_threads
        if threads <= 0:
            raise ExecutionError(f"num_threads must be positive, got {threads}")
        return threads

    # -- pool lifecycle -----------------------------------------------------------
    def _executor(self, workers: int) -> concurrent.futures.ThreadPoolExecutor:
        """The engine's reusable pool, grown if ``workers`` exceeds its size.

        Engines are thread-local by design, so the pool is never raced; it
        is created lazily (and re-created after :meth:`close`).
        """
        pool = self._pool
        if pool is None or self._pool_size < workers:
            if pool is not None:
                pool.shutdown(wait=False)
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="sim-engine"
            )
            self._pool = pool
            self._pool_size = workers
        return pool

    def chunk_pool(self, workers: int) -> concurrent.futures.ThreadPoolExecutor:
        """The executor chunk-parallel plan replay dispatches on.

        This is the engine's reusable pool (grown to ``workers``); it is
        the ``pool=`` duck-type :meth:`ExecutionPlan.execute` expects
        together with :meth:`effective_threads`.
        """
        return self._executor(workers)

    def replay_plan(
        self, plan: ExecutionPlan, data: np.ndarray, rng=None
    ) -> np.ndarray | None:
        """Chunk-replay ``plan`` over ``data`` on the worker threads.

        The engine's :class:`~repro.simulator.execution_plan.ChunkPool`
        implementation: every kernel splits into disjoint sub-views mapped
        over the thread pool, bitwise identical to serial replay.  Returns
        ``None`` when a single worker could not beat the serial sweep —
        the caller then replays serially.
        """
        workers = int(self.effective_threads())
        if workers <= 1:
            return None
        return plan._execute_chunked(data, rng, self, workers)

    def close(self, wait: bool = True) -> None:
        """Tear the worker pool down (the engine stays usable: the next
        parallel call lazily builds a fresh pool).

        Idempotent and safe during interpreter teardown: a second call is a
        no-op, and shutdown errors from a half-torn-down ``concurrent.futures``
        (module globals already cleared) are swallowed rather than raised
        out of ``__del__``/atexit paths.
        """
        pool = self._pool
        self._pool = None
        self._pool_size = 0
        if pool is not None:
            try:
                pool.shutdown(wait=wait)
            except Exception:
                pass

    def __enter__(self) -> "ParallelSimulationEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close(wait=False)
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"ParallelSimulationEngine(num_threads={self.num_threads})"

    # -- shot-level parallelism ---------------------------------------------------
    def sample_parallel(
        self,
        state: StateVector,
        shots: int,
        measured_qubits: Sequence[int] | None = None,
        seed: int | None = None,
    ) -> dict[str, int]:
        """Sample ``shots`` outcomes using the worker pool.

        The probability vector is computed once; each worker then draws its
        chunk of shots from an independent RNG stream.
        """
        threads = self.effective_threads()
        qubits = (
            tuple(measured_qubits)
            if measured_qubits is not None
            else tuple(range(state.n_qubits))
        )
        probabilities = state.probabilities()
        chunks = split_shots(shots, threads)
        seeds = np.random.SeedSequence(seed).spawn(len(chunks))
        if len(chunks) == 1:
            return sample_counts(
                probabilities, chunks[0], qubits, state.n_qubits, np.random.default_rng(seeds[0])
            )

        def draw(chunk_and_seed: tuple[int, np.random.SeedSequence]) -> dict[str, int]:
            chunk, seq = chunk_and_seed
            return sample_counts(
                probabilities, chunk, qubits, state.n_qubits, np.random.default_rng(seq)
            )

        pool = self._executor(len(chunks))
        results = list(pool.map(draw, zip(chunks, seeds)))
        return merge_counts(results)

    def run_trajectories(
        self,
        n_qubits: int,
        circuit: CompositeInstruction,
        shots: int,
        seed: int | None = None,
        prepare: Callable[[], StateVector] | None = None,
        plan: ExecutionPlan | None = None,
        processes: int | None = None,
    ) -> dict[str, int]:
        """Run ``shots`` independent trajectories (one full simulation each).

        Used when the circuit contains mid-circuit resets (which make a
        single-state + multinomial sampling approach incorrect).  The
        circuit is compiled once into an execution plan (or use a
        pre-compiled ``plan``) and replayed per trajectory; trajectory
        counts are split over the worker pool.

        ``processes=N`` (N > 1) shards the trajectories across the shared
        :class:`~repro.exec.sharded.ShardedExecutor` worker *processes*
        instead of this engine's threads — the GIL-free path.  Shard seeds
        derive exactly as the per-thread streams do, so fixed-seed counts
        are bit-identical to the in-process run with ``num_threads == N``.
        """
        if processes is not None and processes > 1:
            if prepare is not None:
                raise ExecutionError(
                    "prepare callbacks cannot cross process boundaries; "
                    "use the in-process (thread) trajectory path"
                )
            if plan is not None:
                raise ExecutionError(
                    "pre-compiled plans cannot cross process boundaries; "
                    "pass the circuit and let each shard compile into its "
                    "own plan cache (or use the in-process path)"
                )
            from ..exec.sharded import get_sharded_executor

            # Workers compile from the shipped circuit; optimize=False
            # matches this method's own compile default so the replayed
            # kernels (and therefore the RNG consumption) are identical.
            result = get_sharded_executor(processes).execute(
                circuit,
                shots,
                n_qubits=n_qubits,
                seed=seed,
                optimize=False,
                trajectories=True,
            )
            return dict(result.counts)
        threads = self.effective_threads()
        measured = circuit.measured_qubits() or tuple(range(n_qubits))
        if plan is None:
            # Direct engine callers get the circuit as-is (no IR passes),
            # matching the historical gate-by-gate behaviour bit for bit;
            # the accelerator passes an optimised plan from the cache.
            plan = compile_plan(circuit, n_qubits, optimize=False)
        chunks = split_shots(shots, threads)
        seeds = np.random.SeedSequence(seed).spawn(len(chunks))

        if len(chunks) == 1:
            # Single chunk: it replays on the calling thread, so the engine's
            # idle pool can chunk-parallelise each large-state replay instead
            # (bitwise identical, so the RNG stream is unaffected).
            return replay_trajectory_chunk(
                plan, chunks[0], np.random.default_rng(seeds[0]), measured,
                n_qubits, prepare, pool=self,
            )

        def run_chunk(chunk_and_seed: tuple[int, np.random.SeedSequence]) -> dict[str, int]:
            chunk, seq = chunk_and_seed
            return replay_trajectory_chunk(
                plan, chunk, np.random.default_rng(seq), measured, n_qubits, prepare
            )

        pool = self._executor(len(chunks))
        results = list(pool.map(run_chunk, zip(chunks, seeds)))
        return merge_counts(results)

    # -- chunk-level parallelism ----------------------------------------------------
    def apply_single_qubit_chunked(
        self, state: np.ndarray, matrix: np.ndarray, target: int
    ) -> np.ndarray:
        """Apply a single-qubit gate, splitting the state across workers.

        Falls back to the serial kernel for small states where pool overhead
        would dominate.  The split is along the *high* bits (above the target
        qubit), so each chunk is an independent contiguous slab.
        """
        from .gate_application import apply_single_qubit

        threads = self.effective_threads()
        if threads == 1 or state.size < _CHUNK_THRESHOLD:
            return apply_single_qubit(state, matrix, target)
        view = state.reshape(-1, 2, 1 << target)
        n_rows = view.shape[0]
        workers = min(threads, n_rows)
        boundaries = np.linspace(0, n_rows, workers + 1, dtype=int)

        def work(span: tuple[int, int]) -> None:
            lo, hi = span
            if lo == hi:
                return
            block = view[lo:hi]
            s0 = block[:, 0, :].copy()
            s1 = block[:, 1, :]
            block[:, 0, :] = matrix[0, 0] * s0 + matrix[0, 1] * s1
            block[:, 1, :] = matrix[1, 0] * s0 + matrix[1, 1] * s1

        spans = list(zip(boundaries[:-1], boundaries[1:]))
        pool = self._executor(workers)
        list(pool.map(work, spans))
        return state
