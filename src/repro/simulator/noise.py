"""Noise channels and noise models.

Channels are completely-positive trace-preserving (CPTP) maps given by Kraus
operators; :class:`NoiseModel` attaches channels to gate names so the
density-matrix backend can interleave them after each gate — a minimal but
faithful analogue of the noisy backends QCOR can target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import NoiseModelError
from ..ir.instruction import Instruction

__all__ = [
    "KrausChannel",
    "NoiseModel",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
]

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)


@dataclass(frozen=True)
class KrausChannel:
    """A CPTP channel defined by its Kraus operators."""

    name: str
    kraus_operators: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        if not self.kraus_operators:
            raise NoiseModelError(f"channel {self.name!r} has no Kraus operators")
        dim = self.kraus_operators[0].shape[0]
        total = np.zeros((dim, dim), dtype=complex)
        for op in self.kraus_operators:
            if op.shape != (dim, dim):
                raise NoiseModelError(
                    f"channel {self.name!r} has Kraus operators of inconsistent shape"
                )
            total += op.conj().T @ op
        if not np.allclose(total, np.eye(dim), atol=1e-8):
            raise NoiseModelError(
                f"channel {self.name!r} is not trace preserving (sum K†K != I)"
            )

    @property
    def num_qubits(self) -> int:
        return int(math.log2(self.kraus_operators[0].shape[0]))


def _validated_probability(p: float, what: str) -> float:
    if not 0.0 <= p <= 1.0:
        raise NoiseModelError(f"{what} must be in [0, 1], got {p}")
    return float(p)


def depolarizing_channel(p: float) -> KrausChannel:
    """Single-qubit depolarizing channel with error probability ``p``."""
    p = _validated_probability(p, "depolarizing probability")
    ops = (
        math.sqrt(1.0 - p) * _I,
        math.sqrt(p / 3.0) * _X,
        math.sqrt(p / 3.0) * _Y,
        math.sqrt(p / 3.0) * _Z,
    )
    return KrausChannel("depolarizing", tuple(np.asarray(o, dtype=complex) for o in ops))


def bit_flip_channel(p: float) -> KrausChannel:
    """Single-qubit bit-flip (X) channel with flip probability ``p``."""
    p = _validated_probability(p, "bit-flip probability")
    ops = (math.sqrt(1.0 - p) * _I, math.sqrt(p) * _X)
    return KrausChannel("bit_flip", tuple(np.asarray(o, dtype=complex) for o in ops))


def phase_flip_channel(p: float) -> KrausChannel:
    """Single-qubit phase-flip (Z) channel with flip probability ``p``."""
    p = _validated_probability(p, "phase-flip probability")
    ops = (math.sqrt(1.0 - p) * _I, math.sqrt(p) * _Z)
    return KrausChannel("phase_flip", tuple(np.asarray(o, dtype=complex) for o in ops))


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """Single-qubit amplitude damping with decay probability ``gamma``."""
    gamma = _validated_probability(gamma, "damping probability")
    k0 = np.array([[1, 0], [0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return KrausChannel("amplitude_damping", (k0, k1))


@dataclass
class NoiseModel:
    """Associates noise channels with gate names.

    ``default_single_qubit`` / ``default_two_qubit`` apply to every gate of
    that arity unless the gate name has an explicit entry in ``per_gate``.
    Channels attached to multi-qubit gates are applied to each qubit the gate
    touches (a standard simplification for local noise).
    """

    default_single_qubit: KrausChannel | None = None
    default_two_qubit: KrausChannel | None = None
    per_gate: dict[str, KrausChannel] = field(default_factory=dict)

    def add_channel(self, gate_name: str, channel: KrausChannel) -> "NoiseModel":
        self.per_gate[gate_name.upper()] = channel
        return self

    def channels_for(self, instruction: Instruction) -> list[tuple[KrausChannel]]:
        """Return the per-qubit channels to apply after ``instruction``.

        The return value is a list of single-element tuples so the density
        simulator can apply each channel with its own target; see
        :meth:`repro.simulator.density.DensityMatrix.apply_circuit`.
        """
        channel = self.per_gate.get(instruction.name)
        if channel is None:
            if len(instruction.qubits) == 1:
                channel = self.default_single_qubit
            else:
                channel = self.default_two_qubit
        if channel is None:
            return []
        if channel.num_qubits == len(instruction.qubits):
            return [_BoundChannel(channel, instruction.qubits)]
        # Apply the single-qubit channel independently to each touched qubit.
        return [_BoundChannel(channel, (q,)) for q in instruction.qubits]

    @property
    def is_trivial(self) -> bool:
        return (
            self.default_single_qubit is None
            and self.default_two_qubit is None
            and not self.per_gate
        )


class _BoundChannel:
    """A channel bound to specific target qubits (internal helper)."""

    def __init__(self, channel: KrausChannel, qubits: tuple[int, ...]):
        self.channel = channel
        self.qubits = tuple(qubits)
        self.kraus_operators = channel.kraus_operators

    def __iter__(self):
        return iter(self.kraus_operators)
