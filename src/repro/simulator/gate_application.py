"""Low-level gate application kernels.

Conventions
-----------
* A state over ``n`` qubits is a 1-D complex array of length ``2**n``.
* Basis index ``b`` encodes qubit ``q`` in bit ``q`` (qubit 0 is the least
  significant bit), matching :mod:`repro.ir.gates` matrix conventions.
* For a gate acting on the qubit tuple ``targets = (t0, t1, ..., tk-1)``,
  the gate matrix's local basis index uses ``t0`` as its least significant
  bit.

Performance
-----------
Following the HPC guides, all kernels are vectorised NumPy operations; no
kernel loops over individual amplitudes in Python.  Single-qubit and
controlled-single-qubit gates use reshaped views and in-place updates to
avoid allocating a full new state, which is what dominates simulation time
for the paper's workloads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

import numpy as np

from ..exceptions import ExecutionError

__all__ = [
    "apply_matrix",
    "apply_single_qubit",
    "apply_controlled_single_qubit",
    "apply_diagonal",
    "apply_gate",
]


def _validate_targets(targets: Sequence[int], n_qubits: int) -> tuple[int, ...]:
    targets = tuple(int(t) for t in targets)
    if len(set(targets)) != len(targets):
        raise ExecutionError(f"duplicate target qubits {targets}")
    for t in targets:
        if t < 0 or t >= n_qubits:
            raise ExecutionError(f"target qubit {t} out of range for {n_qubits} qubit(s)")
    return targets


def apply_single_qubit(state: np.ndarray, matrix: np.ndarray, target: int) -> np.ndarray:
    """Apply a 2x2 unitary to ``target`` in place; returns ``state``."""
    n_qubits = state.size.bit_length() - 1
    (target,) = _validate_targets((target,), n_qubits)
    if matrix.shape != (2, 2):
        raise ExecutionError(f"expected a 2x2 matrix, got shape {matrix.shape}")
    # View as (high bits, qubit, low bits): axis 1 is the target qubit.
    view = state.reshape(-1, 2, 2**target)
    s0 = view[:, 0, :].copy()
    s1 = view[:, 1, :]
    view[:, 0, :] = matrix[0, 0] * s0 + matrix[0, 1] * s1
    view[:, 1, :] = matrix[1, 0] * s0 + matrix[1, 1] * s1
    return state


def apply_controlled_single_qubit(
    state: np.ndarray, matrix: np.ndarray, control: int, target: int
) -> np.ndarray:
    """Apply a controlled 2x2 unitary (control/target qubit indices) in place."""
    n_qubits = state.size.bit_length() - 1
    control, target = _validate_targets((control, target), n_qubits)
    if matrix.shape != (2, 2):
        raise ExecutionError(f"expected a 2x2 matrix, got shape {matrix.shape}")
    # Reshape so both the control and target qubits are explicit axes.
    shape = (2,) * n_qubits
    psi = state.reshape(shape)
    control_axis = n_qubits - 1 - control
    target_axis = n_qubits - 1 - target
    # Slice out the control=1 subspace, then apply the single-qubit update on
    # the target axis of that slice.
    index: list[slice | int] = [slice(None)] * n_qubits
    index[control_axis] = 1
    sub = psi[tuple(index)]
    # After slicing, axes greater than control_axis shift down by one.
    sub_target_axis = target_axis if target_axis < control_axis else target_axis - 1
    sub = np.moveaxis(sub, sub_target_axis, 0)
    s0 = sub[0].copy()
    s1 = sub[1]
    sub[0] = matrix[0, 0] * s0 + matrix[0, 1] * s1
    sub[1] = matrix[1, 0] * s0 + matrix[1, 1] * s1
    return state


#: Memoised ``local`` scatter-index maps for apply_diagonal, keyed by
#: (state size, target tuple).  Rebuilding the index costs two full 2^n
#: arrays per call; circuits like the QFT hit the same (size, targets)
#: combinations over and over, so a small LRU amortises them.
_LOCAL_INDEX_CACHE: "OrderedDict[tuple[int, tuple[int, ...]], np.ndarray]" = OrderedDict()
_LOCAL_INDEX_CAPACITY = 64
_LOCAL_INDEX_LOCK = threading.Lock()
#: States above this size are never cached: 64 pinned int64 maps for a
#: 24-qubit state would hold gigabytes, so large maps stay transient
#: (exactly the pre-cache behaviour).
_LOCAL_INDEX_MAX_SIZE = 1 << 20
#: Cached ``arange`` bit-mask sources per state size (shared across targets).
_INDICES_CACHE: "OrderedDict[int, np.ndarray]" = OrderedDict()
_INDICES_CAPACITY = 8


def _local_index_map(size: int, targets: tuple[int, ...]) -> np.ndarray:
    """Read-only map from global basis index to the gate-local index."""
    if size > _LOCAL_INDEX_MAX_SIZE:
        indices = np.arange(size)
        local = np.zeros(size, dtype=np.int64)
        for bit, qubit in enumerate(targets):
            local |= ((indices >> qubit) & 1) << bit
        return local
    key = (size, targets)
    with _LOCAL_INDEX_LOCK:
        local = _LOCAL_INDEX_CACHE.get(key)
        if local is not None:
            _LOCAL_INDEX_CACHE.move_to_end(key)
            return local
        indices = _INDICES_CACHE.get(size)
        if indices is None:
            indices = np.arange(size)
            indices.setflags(write=False)
            _INDICES_CACHE[size] = indices
            while len(_INDICES_CACHE) > _INDICES_CAPACITY:
                _INDICES_CACHE.popitem(last=False)
        else:
            _INDICES_CACHE.move_to_end(size)
    local = np.zeros(size, dtype=np.int64)
    for bit, qubit in enumerate(targets):
        local |= ((indices >> qubit) & 1) << bit
    local.setflags(write=False)
    with _LOCAL_INDEX_LOCK:
        _LOCAL_INDEX_CACHE[key] = local
        while len(_LOCAL_INDEX_CACHE) > _LOCAL_INDEX_CAPACITY:
            _LOCAL_INDEX_CACHE.popitem(last=False)
    return local


def apply_diagonal(state: np.ndarray, diagonal: np.ndarray, targets: Sequence[int]) -> np.ndarray:
    """Multiply amplitudes by a diagonal operator over ``targets``, in place."""
    n_qubits = state.size.bit_length() - 1
    targets = _validate_targets(targets, n_qubits)
    k = len(targets)
    diagonal = np.asarray(diagonal, dtype=complex).reshape(-1)
    if diagonal.size != 2**k:
        raise ExecutionError(
            f"diagonal of length {diagonal.size} does not match {k} target qubit(s)"
        )
    state *= diagonal[_local_index_map(state.size, targets)]
    return state


def apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply a general ``2^k x 2^k`` unitary over ``targets``.

    Returns a new array — the general path cannot avoid producing one — but
    a preallocated ``out`` scratch buffer (same length and dtype as
    ``state``) receives the result instead of a fresh
    ``ascontiguousarray`` allocation, the dominant per-call cost on large
    states.  ``out`` may alias ``state`` itself: the matrix product lands
    in a temporary before the copy-back.  Callers that care about
    allocation on *small* gates use the specialised in-place kernels above.
    """
    n_qubits = state.size.bit_length() - 1
    targets = _validate_targets(targets, n_qubits)
    k = len(targets)
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2**k, 2**k):
        raise ExecutionError(
            f"matrix shape {matrix.shape} does not match {k} target qubit(s)"
        )
    psi = state.reshape((2,) * n_qubits)
    # Tensor axis for qubit q is (n_qubits - 1 - q).  To make the gate's local
    # index (t0 = LSB) appear as the leading dimension after a reshape, move
    # the axes of targets[k-1], ..., targets[0] to the front in that order.
    front_axes = [n_qubits - 1 - targets[i] for i in reversed(range(k))]
    psi = np.moveaxis(psi, front_axes, range(k))
    rest_shape = psi.shape[k:]
    psi = psi.reshape(2**k, -1)
    psi = matrix @ psi
    psi = psi.reshape((2,) * k + rest_shape)
    psi = np.moveaxis(psi, range(k), front_axes)
    if out is None:
        return np.ascontiguousarray(psi.reshape(-1))
    if out.shape != state.shape or out.dtype != state.dtype:
        raise ExecutionError(
            f"out buffer of shape {out.shape}/{out.dtype} does not match the "
            f"state's {state.shape}/{state.dtype}"
        )
    out.reshape((2,) * n_qubits)[...] = psi
    return out


#: Gate names whose two-qubit form is (control, target) with a 2x2 payload.
_CONTROLLED_SINGLE = {"CX", "CNOT", "CY", "CZ", "CH", "CRZ"}


def apply_gate(state: np.ndarray, instruction, parameters=None, out=None) -> np.ndarray:
    """Apply an IR instruction to ``state`` choosing the fastest kernel.

    ``instruction`` is any :class:`repro.ir.instruction.Instruction` with a
    matrix form.  Measurements, resets and barriers are rejected here — the
    :class:`~repro.simulator.statevector.StateVector` class handles them.
    Returns the (possibly new) state array.  ``out`` is an optional scratch
    buffer for the dense-matrix path (the only kernel that produces a new
    array); the in-place kernels ignore it and return ``state``.
    """
    name = instruction.name
    if name in ("MEASURE", "RESET", "BARRIER"):
        raise ExecutionError(f"{name} cannot be applied as a unitary gate")
    qubits = instruction.qubits
    if len(qubits) == 1:
        return apply_single_qubit(state, instruction.matrix(), qubits[0])
    if len(qubits) == 2 and name in _CONTROLLED_SINGLE:
        # The controlled payload is the lower-right 2x2 block of the gate in
        # the |target, control> ordering used by repro.ir.gates._controlled.
        full = instruction.matrix()
        payload = full[np.ix_([1, 3], [1, 3])]
        return apply_controlled_single_qubit(state, payload, qubits[0], qubits[1])
    if name == "CPHASE":
        (theta,) = instruction.bound_parameters()
        diag = np.array([1.0, 1.0, 1.0, np.exp(1j * theta)], dtype=complex)
        return apply_diagonal(state, diag, qubits)
    return apply_matrix(state, instruction.matrix(), qubits, out=out)
