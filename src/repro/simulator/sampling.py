"""Measurement sampling into count histograms.

The output format mirrors the paper's Listing 2 (``"00": 513, "11": 511``):
keys are bitstrings whose character ``i`` is the measured value of qubit
``i`` (qubit 0 leftmost), restricted to the measured qubits in ascending
qubit order.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..exceptions import ExecutionError

__all__ = ["sample_counts", "counts_from_statevector", "format_bitstring", "marginal_probabilities"]


def format_bitstring(index: int, qubits: tuple[int, ...]) -> str:
    """Format the basis ``index`` restricted to ``qubits`` (first qubit leftmost)."""
    return "".join("1" if (index >> q) & 1 else "0" for q in qubits)


def marginal_probabilities(
    probabilities: np.ndarray, qubits: tuple[int, ...], n_qubits: int
) -> dict[str, float]:
    """Marginalise a full probability vector onto ``qubits``.

    Vectorised: builds the reduced index for every basis state at once and
    accumulates with ``np.bincount``.
    """
    probabilities = np.asarray(probabilities, dtype=float).reshape(-1)
    if probabilities.size != (1 << n_qubits):
        raise ExecutionError(
            f"probability vector of length {probabilities.size} does not match "
            f"{n_qubits} qubit(s)"
        )
    for qubit in qubits:
        if not 0 <= qubit < n_qubits:
            raise ExecutionError(f"measured qubit {qubit} out of range")
    # The reduced-index map only depends on (size, qubits); share the memoised
    # map used by the diagonal gate kernel instead of rebuilding two full
    # 2^n arrays per call (trajectory sampling hits this once per shot).
    from .gate_application import _local_index_map

    reduced = _local_index_map(probabilities.size, tuple(qubits))
    sums = np.bincount(reduced, weights=probabilities, minlength=1 << len(qubits))
    result: dict[str, float] = {}
    for local_index, p in enumerate(sums):
        if p <= 0.0:
            continue
        bits = "".join("1" if (local_index >> i) & 1 else "0" for i in range(len(qubits)))
        result[bits] = float(p)
    return result


def sample_counts(
    probabilities: np.ndarray,
    shots: int,
    measured_qubits: Iterable[int],
    n_qubits: int,
    rng: np.random.Generator | None = None,
) -> dict[str, int]:
    """Draw ``shots`` samples from ``probabilities`` and histogram them.

    Sampling is done over the *marginal* distribution of the measured qubits
    (a multinomial draw), which is both exact and much cheaper than sampling
    full basis states when only a few qubits are measured.
    """
    if shots <= 0:
        raise ExecutionError(f"shots must be positive, got {shots}")
    qubits = tuple(sorted(set(int(q) for q in measured_qubits)))
    if not qubits:
        raise ExecutionError("at least one qubit must be measured")
    rng = rng or np.random.default_rng()
    marginals = marginal_probabilities(probabilities, qubits, n_qubits)
    keys = list(marginals.keys())
    probs = np.array([marginals[k] for k in keys], dtype=float)
    # Float drift can push |amplitude|^2 a few ulp outside [0, 1] (or the
    # total away from 1 after long gate sequences); multinomial rejects even
    # one-ulp violations, so clip and renormalise unconditionally.
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total <= 0.0 or not np.isfinite(total):
        raise ExecutionError(f"probability vector sums to {total}, cannot sample")
    probs = probs / total
    # Division can still leave sum(probs[:-1]) > 1 by an ulp; let the last
    # bin absorb the residual exactly.
    probs[-1] = max(0.0, 1.0 - probs[:-1].sum())
    draws = rng.multinomial(shots, probs)
    return {key: int(count) for key, count in zip(keys, draws) if count > 0}


def counts_from_statevector(
    state, shots: int, measured_qubits: Iterable[int] | None = None, rng=None
) -> dict[str, int]:
    """Convenience wrapper sampling directly from a :class:`StateVector`."""
    qubits = (
        tuple(measured_qubits) if measured_qubits is not None else tuple(range(state.n_qubits))
    )
    return sample_counts(state.probabilities(), shots, qubits, state.n_qubits, rng)
