"""Bounded, content-hash-keyed cache of compiled execution plans.

Repeat executions of the same circuit — broker traffic resubmitting a hot
job, trajectory shots, optimiser iterations over one ansatz — should pay
plan compilation once.  Entries are keyed by the same canonical content
hash the job broker uses for result caching
(:func:`repro.ir.serialization.circuit_content_hash`, shared with
:mod:`repro.service.keys`), so circuits that differ only in name share one
plan, and the broker's dispatcher workers (one accelerator clone each) all
hit the same process-wide cache.

Plans are immutable after compilation and parametric plans bind per
thread, so cached entries are safe to share across threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..exceptions import ExecutionError
from ..ir.composite import CompositeInstruction
from ..ir.serialization import circuit_content_hash
from ..obs.trace import get_tracer
from ..testing import faults
from .execution_plan import (
    DEFAULT_CHUNK_THRESHOLD,
    DEFAULT_FUSION_MAX_QUBITS,
    DEFAULT_PRECISION,
    ExecutionPlan,
    ParametricExecutionPlan,
    compile_parametric_plan,
    compile_plan,
    resolve_precision,
)

__all__ = [
    "PlanCache",
    "PlanCacheStats",
    "get_plan_cache",
    "reset_plan_cache",
    "cached_content_hash",
]


def cached_content_hash(circuit: CompositeInstruction) -> str:
    """Content hash of ``circuit``, memoised on the circuit object.

    The memo is invalidated when the instruction count changes (the only
    mutation path, ``CompositeInstruction.add``, always appends); callers
    that mutate instructions *in place* must not rely on the memo.
    """
    n = circuit.n_instructions
    cached = circuit.__dict__.get("_plan_content_hash")
    if cached is not None and cached[0] == n:
        return cached[1]
    digest = circuit_content_hash(circuit)
    circuit.__dict__["_plan_content_hash"] = (n, digest)
    return digest


@dataclass(frozen=True)
class PlanCacheStats:
    """Immutable counter snapshot of a :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class PlanCache:
    """Thread-safe bounded LRU cache of compiled execution plans."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ExecutionError(f"plan cache capacity must be at least 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[tuple, ExecutionPlan | ParametricExecutionPlan]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def lookup_or_compile(
        self,
        circuit: CompositeInstruction,
        n_qubits: int | None = None,
        *,
        optimize: bool = True,
        fusion_max_qubits: int = DEFAULT_FUSION_MAX_QUBITS,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> tuple[ExecutionPlan | ParametricExecutionPlan, bool]:
        """Return ``(plan, was_cache_hit)`` for ``circuit``.

        Compilation happens outside the lock; when two threads race on the
        same key the first insertion wins so every caller shares one plan.
        All compile options participate in the key — ``chunk_threshold``
        never changes results, but it is baked into the compiled plan, so
        distinct thresholds must not share an entry; ``precision`` *does*
        change results (complex64 plans hold complex64 payloads).
        """
        width = max(circuit.n_qubits, 1 if n_qubits is None else int(n_qubits), 1)
        threshold = (
            DEFAULT_CHUNK_THRESHOLD if chunk_threshold is None else int(chunk_threshold)
        )
        precision = resolve_precision(precision)
        key = (
            cached_content_hash(circuit),
            width,
            bool(optimize),
            int(fusion_max_qubits),
            bool(batch_diagonals),
            threshold,
            precision,
        )
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return plan, True
            self._misses += 1
        with get_tracer().span(
            "plan-compile", attrs={"circuit": circuit.name, "width": width}
        ):
            faults.fire("plan.compile")
            if circuit.is_parameterized:
                plan = compile_parametric_plan(
                    circuit,
                    width,
                    optimize=optimize,
                    fusion_max_qubits=fusion_max_qubits,
                    batch_diagonals=batch_diagonals,
                    chunk_threshold=threshold,
                    precision=precision,
                )
            else:
                plan = compile_plan(
                    circuit,
                    width,
                    optimize=optimize,
                    fusion_max_qubits=fusion_max_qubits,
                    batch_diagonals=batch_diagonals,
                    chunk_threshold=threshold,
                    precision=precision,
                )
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing, True
            self._entries[key] = plan
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return plan, False

    def get_or_compile(
        self,
        circuit: CompositeInstruction,
        n_qubits: int | None = None,
        *,
        optimize: bool = True,
        fusion_max_qubits: int = DEFAULT_FUSION_MAX_QUBITS,
        batch_diagonals: bool = True,
        chunk_threshold: int | None = None,
        precision: str = DEFAULT_PRECISION,
    ) -> ExecutionPlan | ParametricExecutionPlan:
        """Like :meth:`lookup_or_compile` but returns only the plan."""
        plan, _ = self.lookup_or_compile(
            circuit,
            n_qubits,
            optimize=optimize,
            fusion_max_qubits=fusion_max_qubits,
            batch_diagonals=batch_diagonals,
            chunk_threshold=chunk_threshold,
            precision=precision,
        )
        return plan

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def memory_bytes(self) -> int:
        """Total resident bytes of all cached plans (admission accounting)."""
        with self._lock:
            plans = list(self._entries.values())
        return sum(plan.memory_bytes() for plan in plans)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )


_default_cache: PlanCache | None = None
_default_cache_lock = threading.Lock()


def get_plan_cache() -> PlanCache:
    """The process-wide plan cache shared by accelerators and the broker."""
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None:
            _default_cache = PlanCache()
        return _default_cache


def reset_plan_cache(capacity: int | None = None) -> PlanCache:
    """Replace the process-wide cache (tests, or to resize it)."""
    global _default_cache
    with _default_cache_lock:
        _default_cache = PlanCache(capacity) if capacity is not None else PlanCache()
        return _default_cache
