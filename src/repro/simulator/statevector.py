"""Dense state-vector simulator (the Quantum++ stand-in).

The :class:`StateVector` class owns the amplitude array and exposes gate
application, measurement sampling, expectation values and collapse.  It is a
pure-math object with no global state, which makes it trivially safe to use
from multiple threads as long as each thread owns its own instance — exactly
the property the paper's *cloneable accelerator* design relies on.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import ExecutionError
from ..ir.composite import CompositeInstruction
from ..ir.instruction import Instruction
from . import gate_application
from .sampling import sample_counts

__all__ = ["StateVector"]


class StateVector:
    """Dense simulation of an ``n_qubits``-qubit pure state."""

    def __init__(
        self,
        n_qubits: int,
        data: np.ndarray | None = None,
        dtype: np.dtype | type | str | None = None,
    ):
        if n_qubits < 1:
            raise ExecutionError(f"n_qubits must be at least 1, got {n_qubits}")
        if n_qubits > 26:
            raise ExecutionError(
                f"refusing to allocate a {n_qubits}-qubit dense state "
                "(exceeds the 26-qubit memory guard)"
            )
        self.n_qubits = int(n_qubits)
        dtype = np.dtype(complex if dtype is None else dtype)
        if dtype.kind != "c":
            raise ExecutionError(
                f"state dtype must be complex (complex64/complex128), got {dtype}"
            )
        #: Recycled scratch for dense gate application (ping-pong buffer:
        #: the previous amplitude array once a dense gate produced a new
        #: one), so long gate-by-gate runs allocate at most one extra state.
        self._spare: np.ndarray | None = None
        dim = 1 << self.n_qubits
        if data is None:
            self._data = np.zeros(dim, dtype=dtype)
            self._data[0] = 1.0
        else:
            data = np.asarray(data, dtype=dtype).reshape(-1)
            if data.size != dim:
                raise ExecutionError(
                    f"state of length {data.size} does not match {n_qubits} qubit(s)"
                )
            norm = np.linalg.norm(data)
            # complex64 inputs accumulate ~1e-7 per-amplitude rounding, so
            # the normalisation tolerance scales with the dtype.
            atol = 1e-8 if dtype.itemsize == 16 else 1e-5
            if not np.isclose(norm, 1.0, atol=atol):
                raise ExecutionError(f"state vector is not normalised (norm={norm:.6g})")
            self._data = data.copy()

    # -- basic accessors ---------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The raw amplitude array (a direct reference, not a copy)."""
        return self._data

    @property
    def dim(self) -> int:
        return self._data.size

    @property
    def dtype(self) -> np.dtype:
        """Amplitude dtype (tracks the array, so plan replay can retier it)."""
        return self._data.dtype

    def copy(self) -> "StateVector":
        clone = StateVector.__new__(StateVector)
        clone.n_qubits = self.n_qubits
        clone._spare = None
        clone._data = self._data.copy()
        return clone

    def amplitude(self, basis_state: int | str) -> complex:
        """Amplitude of a basis state given as an index or a bitstring.

        Bitstrings follow the buffer convention: character ``i`` is qubit
        ``i`` (qubit 0 leftmost).
        """
        if isinstance(basis_state, str):
            if len(basis_state) != self.n_qubits:
                raise ExecutionError(
                    f"bitstring length {len(basis_state)} does not match "
                    f"{self.n_qubits} qubit(s)"
                )
            index = sum((1 << q) for q, bit in enumerate(basis_state) if bit == "1")
        else:
            index = int(basis_state)
        if not 0 <= index < self.dim:
            raise ExecutionError(f"basis index {index} out of range")
        return complex(self._data[index])

    def probabilities(self) -> np.ndarray:
        """Probability of each computational basis state."""
        return np.abs(self._data) ** 2

    def norm(self) -> float:
        return float(np.linalg.norm(self._data))

    def normalize(self) -> "StateVector":
        norm = self.norm()
        if norm == 0.0:
            raise ExecutionError("cannot normalise the zero vector")
        self._data /= norm
        return self

    def fidelity(self, other: "StateVector") -> float:
        """``|<self|other>|^2``."""
        if other.n_qubits != self.n_qubits:
            raise ExecutionError("fidelity requires states of equal size")
        return float(abs(np.vdot(self._data, other._data)) ** 2)

    # -- evolution ------------------------------------------------------------------
    def apply(self, instruction: Instruction) -> "StateVector":
        """Apply a single unitary instruction (measure/reset/barrier are no-ops here)."""
        if instruction.is_composite:
            return self.apply_circuit(instruction)  # type: ignore[arg-type]
        name = instruction.name
        if name == "BARRIER":
            return self
        if name == "MEASURE":
            # Terminal measurements are handled by sampling; mid-circuit
            # measurement collapse is available via measure().
            return self
        if name == "RESET":
            self.reset_qubit(instruction.qubits[0])
            return self
        result = gate_application.apply_gate(self._data, instruction, out=self._spare)
        if result is not self._data:
            # A dense gate produced a new array (the recycled spare, or a
            # fresh allocation the first time): keep the displaced buffer as
            # the next dense gate's scratch.
            self._spare = self._data
            self._data = result
        return self

    def apply_circuit(
        self,
        circuit: CompositeInstruction,
        parameter_values: Mapping[str, float] | Sequence[float] | None = None,
    ) -> "StateVector":
        """Apply every instruction of ``circuit`` in order (gate-by-gate)."""
        if circuit.n_qubits > self.n_qubits:
            raise ExecutionError(
                f"circuit uses {circuit.n_qubits} qubit(s) but the state has "
                f"only {self.n_qubits}"
            )
        if circuit.is_parameterized:
            if parameter_values is None:
                raise ExecutionError(
                    "circuit has unbound parameters; provide parameter_values"
                )
            circuit = circuit.bind(parameter_values)
        for instruction in circuit:
            self.apply(instruction)
        return self

    def apply_plan(
        self, plan, rng: np.random.Generator | None = None, pool=None
    ) -> "StateVector":
        """Evolve by a compiled :class:`~repro.simulator.execution_plan.ExecutionPlan`.

        ``rng`` is only needed for plans containing mid-circuit resets.
        ``pool`` (any :class:`~repro.simulator.execution_plan.ChunkPool` —
        the thread engine or the shared-memory
        :class:`~repro.exec.shm.SharedStatePool`) chunk-parallelises the
        replay for states at or above the plan's ``chunk_threshold`` —
        bitwise identical to the serial replay.
        """
        if plan.n_qubits != self.n_qubits:
            raise ExecutionError(
                f"plan is compiled for {plan.n_qubits} qubit(s) but the state "
                f"has {self.n_qubits}"
            )
        self._data = plan.execute(self._data, rng=rng, pool=pool)
        return self

    def run(
        self,
        circuit: CompositeInstruction,
        parameter_values: Mapping[str, float] | Sequence[float] | None = None,
        plan_cache=None,
        rng: np.random.Generator | None = None,
        pool=None,
    ) -> "StateVector":
        """Apply ``circuit`` through the compiled-plan fast path.

        The plan is compiled once per circuit content (via the shared plan
        cache) and replayed on every subsequent call; symbolic circuits use
        a parametric plan whose rotation matrices are re-bound in place per
        ``parameter_values`` — the VQE/QAOA hot loop.  ``pool`` is passed
        through to :meth:`apply_plan` for chunk-parallel replay.
        """
        from .plan_cache import get_plan_cache

        cache = plan_cache if plan_cache is not None else get_plan_cache()
        precision = "single" if self._data.dtype == np.dtype(np.complex64) else "double"
        plan = cache.get_or_compile(circuit, n_qubits=self.n_qubits, precision=precision)
        if plan.is_parametric:
            if parameter_values is None:
                raise ExecutionError(
                    "circuit has unbound parameters; provide parameter_values"
                )
            plan = plan.bind(parameter_values)
        if rng is None and plan.has_reset:
            # Mirror measure()'s default so mid-circuit resets keep working
            # exactly as they did on the gate-by-gate path.
            rng = np.random.default_rng()
        return self.apply_plan(plan, rng=rng, pool=pool)

    def reset_qubit(self, qubit: int) -> "StateVector":
        """Project qubit ``qubit`` onto |0> (flipping if it measured 1) and renormalise."""
        outcome = self.measure(qubit)
        if outcome == 1:
            from ..ir.gates import X

            self.apply(X([qubit]))
        return self

    # -- measurement ------------------------------------------------------------------
    def probability_of_one(self, qubit: int) -> float:
        """Marginal probability that ``qubit`` measures 1."""
        if not 0 <= qubit < self.n_qubits:
            raise ExecutionError(f"qubit {qubit} out of range")
        view = self._data.reshape(-1, 2, 1 << qubit)
        return float(np.sum(np.abs(view[:, 1, :]) ** 2))

    def measure(self, qubit: int, rng: np.random.Generator | None = None) -> int:
        """Projectively measure ``qubit``, collapsing the state; returns 0 or 1."""
        rng = rng or np.random.default_rng()
        p1 = self.probability_of_one(qubit)
        outcome = int(rng.random() < p1)
        view = self._data.reshape(-1, 2, 1 << qubit)
        keep = outcome
        drop = 1 - outcome
        prob = p1 if outcome == 1 else 1.0 - p1
        if prob <= 0.0:
            raise ExecutionError("measurement outcome has zero probability")
        view[:, drop, :] = 0.0
        self._data /= np.sqrt(prob)
        return outcome

    def sample(
        self,
        shots: int,
        measured_qubits: Iterable[int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> dict[str, int]:
        """Sample ``shots`` measurement outcomes without collapsing the state.

        Returns a histogram mapping bitstrings (qubit 0 leftmost) to counts,
        matching the ``AcceleratorBuffer`` output in the paper's Listing 2.
        """
        qubits = tuple(measured_qubits) if measured_qubits is not None else tuple(
            range(self.n_qubits)
        )
        return sample_counts(self.probabilities(), shots, qubits, self.n_qubits, rng)

    # -- observables --------------------------------------------------------------------
    def expectation_z(self, qubits: Iterable[int]) -> float:
        """Expectation of the tensor product of Z on ``qubits`` (exact)."""
        qubits = tuple(qubits)
        probs = self.probabilities()
        indices = np.arange(self.dim)
        parity = np.zeros(self.dim, dtype=np.int64)
        for q in qubits:
            if not 0 <= q < self.n_qubits:
                raise ExecutionError(f"qubit {q} out of range")
            parity ^= (indices >> q) & 1
        signs = 1.0 - 2.0 * parity
        return float(np.dot(probs, signs))

    def expectation(self, observable) -> float:
        """Exact expectation value of a Pauli operator (see :mod:`repro.operators`)."""
        from ..operators.pauli import PauliOperator, PauliTerm

        if isinstance(observable, PauliTerm):
            observable = PauliOperator([observable])
        if not isinstance(observable, PauliOperator):
            raise ExecutionError(
                f"expected a PauliOperator/PauliTerm, got {type(observable).__name__}"
            )
        total = 0.0
        for term in observable.terms:
            if term.is_identity:
                total += term.coefficient.real
                continue
            rotated = self.copy()
            rotated.apply_circuit(term.basis_rotation_circuit(self.n_qubits))
            total += term.coefficient.real * rotated.expectation_z(term.qubits)
        return float(total)

    def __repr__(self) -> str:
        return f"StateVector(n_qubits={self.n_qubits})"
